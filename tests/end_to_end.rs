//! End-to-end pipeline tests spanning every crate: generate → write to an
//! edge-list file → stream back in → decluster over a cluster → search —
//! the full life of a graph in MSSG.

use mssg::core::bfs::{bfs, BfsOptions};
use mssg::core::ingest::{ingest, DeclusterKind, IngestOptions};
use mssg::core::{BackendKind, BackendOptions, MssgCluster};
use mssg::graphgen::edgeio::{write_ascii, AsciiEdgeReader};
use mssg::graphgen::GraphPreset;
use mssg::prelude::*;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mssg-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Sequential in-memory BFS used as the ground-truth oracle.
fn oracle_bfs(edges: &[Edge], source: Gid, dest: Gid) -> Option<u32> {
    if source == dest {
        return Some(0);
    }
    let mut adj: HashMap<Gid, Vec<Gid>> = HashMap::new();
    for e in edges {
        adj.entry(e.src).or_default().push(e.dst);
        adj.entry(e.dst).or_default().push(e.src);
    }
    let mut dist: HashMap<Gid, u32> = HashMap::new();
    dist.insert(source, 0);
    let mut q = VecDeque::from([source]);
    while let Some(v) = q.pop_front() {
        let d = dist[&v];
        for &u in adj.get(&v).into_iter().flatten() {
            if u == dest {
                return Some(d + 1);
            }
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(u) {
                e.insert(d + 1);
                q.push_back(u);
            }
        }
    }
    None
}

#[test]
fn file_roundtrip_ingest_and_search() {
    let dir = tmpdir("file");
    // Generate a scaled PubMed-like graph and write it as ASCII — the
    // ingestion-side format of the thesis' experiments.
    let workload = GraphPreset::PubMedS.workload(8192, 11);
    let file = dir.join("pubmed.txt");
    let written = write_ascii(&file, workload.edge_stream()).unwrap();
    assert_eq!(written, workload.edges());

    // Stream the file into a 4-node grDB cluster.
    let mut cluster = MssgCluster::new(
        &dir.join("cluster"),
        4,
        BackendKind::Grdb,
        &BackendOptions::default(),
    )
    .unwrap();
    let reader = AsciiEdgeReader::open(&file)
        .unwrap()
        .map(|r| r.expect("valid edge"));
    let report = ingest(&mut cluster, reader, &IngestOptions::default()).unwrap();
    assert_eq!(report.edges, workload.edges());
    assert_eq!(cluster.total_entries(), 2 * workload.edges());

    // Search results agree with a sequential oracle.
    let edges = workload.collect_edges();
    for (s, d) in [(0u64, 7), (1, 99), (3, 500)] {
        let got = bfs(&cluster, Gid::new(s), Gid::new(d), &BfsOptions::default())
            .unwrap()
            .path_length;
        let want = oracle_bfs(&edges, Gid::new(s), Gid::new(d));
        assert_eq!(got, want, "query {s}->{d}");
    }
}

#[test]
fn all_backends_match_oracle_on_scale_free_graph() {
    let workload = GraphPreset::Syn2B.workload(65536, 5);
    let edges = workload.collect_edges();
    let queries: Vec<(u64, u64)> = vec![(0, 11), (1, 500), (2, 1000), (7, 3)];
    let expected: Vec<Option<u32>> = queries
        .iter()
        .map(|&(s, d)| oracle_bfs(&edges, Gid::new(s), Gid::new(d)))
        .collect();
    for kind in BackendKind::ALL {
        let dir = tmpdir(&format!("oracle-{}", kind.name()));
        let mut cluster = MssgCluster::new(&dir, 3, kind, &BackendOptions::default()).unwrap();
        ingest(
            &mut cluster,
            edges.clone().into_iter(),
            &IngestOptions::default(),
        )
        .unwrap();
        for (&(s, d), &want) in queries.iter().zip(&expected) {
            let got = bfs(&cluster, Gid::new(s), Gid::new(d), &BfsOptions::default())
                .unwrap()
                .path_length;
            assert_eq!(got, want, "{}: query {s}->{d}", kind.name());
        }
    }
}

#[test]
fn results_invariant_to_cluster_size_and_declustering() {
    let workload = GraphPreset::PubMedS.workload(16384, 9);
    let edges = workload.collect_edges();
    let queries = [(0u64, 50u64), (2, 900), (10, 11)];
    let mut reference: Option<Vec<Option<u32>>> = None;
    for nodes in [1usize, 2, 5, 8] {
        for decl in [
            DeclusterKind::VertexHash,
            DeclusterKind::VertexRoundRobin,
            DeclusterKind::EdgeRoundRobin,
        ] {
            let dir = tmpdir(&format!("inv-{nodes}-{decl:?}"));
            let mut cluster = MssgCluster::new(
                &dir,
                nodes,
                BackendKind::HashMap,
                &BackendOptions::default(),
            )
            .unwrap();
            ingest(
                &mut cluster,
                edges.clone().into_iter(),
                &IngestOptions {
                    declustering: decl,
                    ..Default::default()
                },
            )
            .unwrap();
            let got: Vec<Option<u32>> = queries
                .iter()
                .map(|&(s, d)| {
                    bfs(&cluster, Gid::new(s), Gid::new(d), &BfsOptions::default())
                        .unwrap()
                        .path_length
                })
                .collect();
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    assert_eq!(&got, want, "nodes={nodes} declustering={decl:?}")
                }
            }
        }
    }
}

#[test]
fn search_metrics_scale_with_path_length() {
    // Longer paths touch more of a scale-free graph — the effect that
    // motivates the whole thesis (some queries touch >80 % of edges).
    let workload = GraphPreset::PubMedS.workload(8192, 21);
    let dir = tmpdir("metrics");
    let mut cluster =
        MssgCluster::new(&dir, 4, BackendKind::HashMap, &BackendOptions::default()).unwrap();
    ingest(
        &mut cluster,
        workload.edge_stream(),
        &IngestOptions::default(),
    )
    .unwrap();
    let edges = workload.collect_edges();
    // Find a short and a long query pair via the oracle. Source from the
    // low-degree tail (high ids under Chung-Lu weights), where the
    // eccentricity is largest.
    let source = workload.vertices() - 1;
    let mut short = None;
    let mut long = None;
    for d in 0..workload.vertices() {
        match oracle_bfs(&edges, Gid::new(source), Gid::new(d)) {
            Some(1) if short.is_none() => short = Some(d),
            Some(l) if l >= 3 && long.is_none() => long = Some(d),
            _ => {}
        }
        if short.is_some() && long.is_some() {
            break;
        }
    }
    let (short, long) = (short.expect("1-hop target"), long.expect("3-hop target"));
    let m_short = bfs(
        &cluster,
        Gid::new(source),
        Gid::new(short),
        &BfsOptions::default(),
    )
    .unwrap();
    let m_long = bfs(
        &cluster,
        Gid::new(source),
        Gid::new(long),
        &BfsOptions::default(),
    )
    .unwrap();
    assert!(
        m_long.edges_scanned > m_short.edges_scanned,
        "long path must scan more: {} vs {}",
        m_long.edges_scanned,
        m_short.edges_scanned
    );
    assert!(m_long.rounds > m_short.rounds);
}

#[test]
fn reingest_into_reopened_cluster_accumulates() {
    // Streaming updates: a second ingestion adds edges to the same stores.
    let dir = tmpdir("accumulate");
    let mut cluster =
        MssgCluster::new(&dir, 2, BackendKind::Grdb, &BackendOptions::default()).unwrap();
    let first: Vec<Edge> = (0..10).map(|i| Edge::of(i, i + 1)).collect();
    ingest(&mut cluster, first.into_iter(), &IngestOptions::default()).unwrap();
    assert_eq!(
        bfs(&cluster, Gid::new(0), Gid::new(10), &BfsOptions::default())
            .unwrap()
            .path_length,
        Some(10)
    );
    // A shortcut arrives in a later stream window.
    let second = vec![Edge::of(0, 9)];
    ingest(&mut cluster, second.into_iter(), &IngestOptions::default()).unwrap();
    assert_eq!(
        bfs(&cluster, Gid::new(0), Gid::new(10), &BfsOptions::default())
            .unwrap()
            .path_length,
        Some(2),
        "new edge must shorten the path"
    );
}
