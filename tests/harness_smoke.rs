//! Smoke test over the whole figure-reproduction harness: every
//! experiment must run end to end at a tiny scale and produce a
//! well-formed, non-empty table. This guards the benchmark suite itself —
//! a broken experiment would otherwise only surface during a (long)
//! `cargo bench` or `figures all` run.

use mssg_bench::experiments::{self, ExpConfig};

fn smoke_cfg() -> ExpConfig {
    ExpConfig {
        scale: 32768,
        queries: 3,
        nodes: 2,
        seed: 7,
        root: std::env::temp_dir().join(format!("mssg-harness-smoke-{}", std::process::id())),
        telemetry: Default::default(),
    }
}

#[test]
fn every_experiment_runs_and_produces_rows() {
    let cfg = smoke_cfg();
    for (name, f) in experiments::all_experiments() {
        let table = f(&cfg).unwrap_or_else(|e| panic!("{name} failed: {e}"));
        assert!(!table.rows.is_empty(), "{name} produced no rows");
        assert!(!table.headers.is_empty(), "{name} has no headers");
        for row in &table.rows {
            assert_eq!(row.len(), table.headers.len(), "{name} row width");
        }
        // Both renderings must succeed.
        let text = table.to_string();
        let md = table.to_markdown();
        assert!(text.contains(&table.headers[0]), "{name} text rendering");
        assert!(md.starts_with("###"), "{name} markdown rendering");
    }
}

#[test]
fn experiment_registry_is_complete() {
    let names: Vec<&str> = experiments::all_experiments()
        .iter()
        .map(|(n, _)| *n)
        .collect();
    // The paper's one table and eight figure harnesses...
    for required in [
        "table5_1", "fig5_1", "fig5_2", "fig5_3", "fig5_4", "fig5_5", "fig5_6_7", "fig5_8_9",
    ] {
        assert!(names.contains(&required), "missing {required}");
    }
    // ...plus the ablations DESIGN.md commits to.
    for ablation in [
        "ablation_grdb_growth",
        "ablation_pipeline",
        "ablation_decluster",
        "ablation_cache_policy",
        "ablation_grdb_prefetch",
        "ablation_visited",
        "ablation_db_filter",
        "ablation_bulk_load",
        "ablation_grdb_geometry",
    ] {
        assert!(names.contains(&ablation), "missing {ablation}");
    }
}
