//! Reproducibility tests: everything derived from a seed must be
//! bit-identical across runs — the property the experiment harness
//! depends on to make figures comparable.

use mssg::core::bfs::{bfs, BfsOptions};
use mssg::core::ingest::{ingest, IngestOptions};
use mssg::core::{
    connected_components, BackendKind, BackendOptions, ComponentsOptions, MssgCluster,
};
use mssg::graphgen::generate::{BarabasiAlbert, Rmat};
use mssg::graphgen::{degree_stats, GraphPreset, Xoshiro256};
use mssg::prelude::*;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mssg-det-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn generators_are_bit_reproducible() {
    for seed in [0u64, 1, 0xdead_beef] {
        let a: Vec<Edge> = GraphPreset::PubMedS.workload(8192, seed).collect_edges();
        let b: Vec<Edge> = GraphPreset::PubMedS.workload(8192, seed).collect_edges();
        assert_eq!(a, b, "ChungLu seed {seed}");
        let a: Vec<Edge> = BarabasiAlbert::new(500, 3, seed).collect();
        let b: Vec<Edge> = BarabasiAlbert::new(500, 3, seed).collect();
        assert_eq!(a, b, "BA seed {seed}");
        let a: Vec<Edge> = Rmat::standard(9, 1000, seed).collect();
        let b: Vec<Edge> = Rmat::standard(9, 1000, seed).collect();
        assert_eq!(a, b, "RMAT seed {seed}");
    }
}

#[test]
fn rng_streams_are_stable_snapshot() {
    // Pin the first values so accidental algorithm edits are caught. These
    // constants were produced by this crate's own implementation; the test
    // guards against *unintentional* change, not external conformance.
    let mut r = Xoshiro256::seeded(42);
    let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
    let mut r2 = Xoshiro256::seeded(42);
    let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
    assert_eq!(first, again);
    // Distinct seeds diverge immediately.
    let mut r3 = Xoshiro256::seeded(43);
    assert_ne!(first[0], r3.next_u64());
}

#[test]
fn stats_are_deterministic() {
    let w = GraphPreset::Syn2B.workload(65536, 7);
    let a = degree_stats(w.edge_stream(), w.vertices());
    let b = degree_stats(w.edge_stream(), w.vertices());
    assert_eq!(a, b);
}

#[test]
fn search_results_identical_across_repeated_runs() {
    let w = GraphPreset::PubMedS.workload(16384, 3);
    let build = |tag: &str| {
        let dir = tmpdir(tag);
        let mut cluster =
            MssgCluster::new(&dir, 3, BackendKind::Grdb, &BackendOptions::default()).unwrap();
        ingest(&mut cluster, w.edge_stream(), &IngestOptions::default()).unwrap();
        cluster
    };
    let c1 = build("run1");
    let c2 = build("run2");
    for (s, d) in [(0u64, 9u64), (1, 77), (5, 200)] {
        let a = bfs(&c1, Gid::new(s), Gid::new(d), &BfsOptions::default()).unwrap();
        let b = bfs(&c2, Gid::new(s), Gid::new(d), &BfsOptions::default()).unwrap();
        assert_eq!(a.path_length, b.path_length, "query {s}->{d}");
        // Deterministic work metrics too (same graph, same partitioning):
        assert_eq!(a.edges_scanned, b.edges_scanned, "query {s}->{d}");
    }
}

#[test]
fn components_identical_across_runs_and_backends() {
    let w = GraphPreset::PubMedS.workload(32768, 5);
    let mut results = Vec::new();
    for kind in [
        BackendKind::HashMap,
        BackendKind::Grdb,
        BackendKind::BerkeleyDb,
    ] {
        let dir = tmpdir(&format!("cc-{}", kind.name()));
        let mut cluster = MssgCluster::new(&dir, 3, kind, &BackendOptions::default()).unwrap();
        ingest(&mut cluster, w.edge_stream(), &IngestOptions::default()).unwrap();
        let r = connected_components(&cluster, &ComponentsOptions::default()).unwrap();
        results.push((kind.name(), r.components, r.vertices, r.largest, r.sizes));
    }
    for w in results.windows(2) {
        assert_eq!(
            (&w[0].1, &w[0].2, &w[0].3, &w[0].4),
            (&w[1].1, &w[1].2, &w[1].3, &w[1].4),
            "{} vs {}",
            w[0].0,
            w[1].0
        );
    }
}
