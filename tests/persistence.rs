//! Durability tests: graphs ingested into the disk backends survive a full
//! shutdown and reopen — each engine's files are its source of truth.

use mssg::core::bfs::{bfs, BfsOptions};
use mssg::core::ingest::{ingest, IngestOptions};
use mssg::core::{BackendKind, BackendOptions, MssgCluster};
use mssg::graphdb::GraphDbExt;
use mssg::graphgen::GraphPreset;
use mssg::prelude::*;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mssg-persist-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Disk-backed engines that implement durable reopen. (StreamDB is also
/// durable; included. The in-memory engines are excluded by definition.)
const DURABLE: [BackendKind; 4] = [
    BackendKind::Grdb,
    BackendKind::BerkeleyDb,
    BackendKind::MySql,
    BackendKind::StreamDb,
];

#[test]
fn cluster_data_survives_reopen() {
    let workload = GraphPreset::PubMedS.workload(32768, 3);
    let edges = workload.collect_edges();
    for kind in DURABLE {
        let dir = tmpdir(&format!("reopen-{}", kind.name()));
        let degrees_before: Vec<usize>;
        {
            let mut cluster = MssgCluster::new(&dir, 3, kind, &BackendOptions::default()).unwrap();
            ingest(
                &mut cluster,
                edges.clone().into_iter(),
                &IngestOptions::default(),
            )
            .unwrap();
            cluster.flush_all().unwrap();
            degrees_before = (0..20u64)
                .map(|v| {
                    (0..3)
                        .map(|n| cluster.with_backend(n, |db| db.degree(Gid::new(v)).unwrap()))
                        .sum()
                })
                .collect();
        } // Cluster dropped: all handles closed.

        // Reopen over the same directories; the data must still be there.
        let cluster = MssgCluster::new(&dir, 3, kind, &BackendOptions::default()).unwrap();
        for (v, &want) in degrees_before.iter().enumerate() {
            let got: usize = (0..3)
                .map(|n| cluster.with_backend(n, |db| db.degree(Gid::new(v as u64)).unwrap()))
                .sum();
            assert_eq!(
                got,
                want,
                "{}: degree of {v} changed across reopen",
                kind.name()
            );
        }
    }
}

#[test]
fn searches_work_after_reopen() {
    let dir = tmpdir("search-reopen");
    let edges: Vec<Edge> = (0..30).map(|i| Edge::of(i, i + 1)).collect();
    {
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::Grdb, &BackendOptions::default()).unwrap();
        ingest(&mut cluster, edges.into_iter(), &IngestOptions::default()).unwrap();
        cluster.flush_all().unwrap();
    }
    let cluster = MssgCluster::new(&dir, 2, BackendKind::Grdb, &BackendOptions::default()).unwrap();
    let m = bfs(&cluster, Gid::new(0), Gid::new(30), &BfsOptions::default()).unwrap();
    assert_eq!(m.path_length, Some(30));
}

#[test]
fn corrupted_grdb_meta_detected_on_reopen() {
    let dir = tmpdir("corrupt");
    {
        let mut cluster =
            MssgCluster::new(&dir, 1, BackendKind::Grdb, &BackendOptions::default()).unwrap();
        ingest(
            &mut cluster,
            vec![Edge::of(0, 1)].into_iter(),
            &IngestOptions::default(),
        )
        .unwrap();
        cluster.flush_all().unwrap();
    }
    // Scribble over the metadata file.
    let meta = dir.join("node-0").join("grdb").join("grdb.meta");
    assert!(meta.exists());
    std::fs::write(&meta, b"not a grdb meta file").unwrap();
    let err = MssgCluster::new(&dir, 1, BackendKind::Grdb, &BackendOptions::default());
    assert!(
        err.is_err(),
        "corrupt metadata must be rejected, not silently reset"
    );
}

#[test]
fn stream_log_grows_across_sessions() {
    let dir = tmpdir("stream-sessions");
    for round in 0..3u64 {
        let mut cluster =
            MssgCluster::new(&dir, 1, BackendKind::StreamDb, &BackendOptions::default()).unwrap();
        let edges = vec![Edge::of(round, round + 100)];
        ingest(&mut cluster, edges.into_iter(), &IngestOptions::default()).unwrap();
        cluster.flush_all().unwrap();
        // Directed entries accumulate 2 per session (note: stored_entries
        // counts only what this session knows plus the log, which is the
        // durable truth).
        let log = dir.join("node-0").join("stream.log");
        let len = std::fs::metadata(&log).unwrap().len();
        assert_eq!(
            len,
            (round + 1) * 2 * 16,
            "log must accumulate across sessions"
        );
    }
}
