//! Model-checking regression corpus for the vendored bounded channel.
//!
//! Every test here runs a 2–3 thread channel scenario under
//! `mssg_modelcheck::check`, which explores **all** interleavings of the
//! threads' lock/wait/notify operations (plus every timeout-expiry
//! branch). Passing means the property holds on every schedule — these
//! are proofs for the scenario sizes, not samples. The properties are
//! exactly the ones PR 2's fault-tolerance layer silently depends on:
//! no lost wakeup (a blocked peer always sees a send/recv/disconnect),
//! every message delivered exactly once, and the timed/disconnect paths
//! always terminating.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, RecvError, RecvTimeoutError, SendTimeoutError, TryRecvError};
use mssg_modelcheck::shim::Mutex;
use mssg_modelcheck::{check, check_config, spawn, Config};

#[test]
fn spsc_fifo_through_a_full_buffer() {
    // cap-1 channel, two messages: the second send must block until the
    // consumer drains one. No schedule may lose the not_full wakeup.
    let report = check(|| {
        let (tx, rx) = bounded::<u32>(1);
        let t = spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join();
    });
    assert!(report.executions >= 2);
    assert_eq!(report.deadlocks, 0);
}

#[test]
fn mpsc_two_producers_deliver_everything() {
    let report = check(|| {
        let (tx, rx) = bounded::<u32>(1);
        let tx2 = tx.clone();
        let a = spawn(move || tx.send(10).unwrap());
        let b = spawn(move || tx2.send(20).unwrap());
        let x = rx.recv().unwrap();
        let y = rx.recv().unwrap();
        assert_eq!(x + y, 30, "both messages delivered, whatever the order");
        a.join();
        b.join();
    });
    assert!(report.executions >= 2);
}

#[test]
fn spmc_each_message_delivered_exactly_once() {
    // Two consumers share one queue. Exactly-once delivery is the
    // channel-level statement of "no double-free of a slot": no schedule
    // hands the same message to both consumers or drops one on the floor.
    let report = check(|| {
        let (tx, rx) = bounded::<u32>(2);
        let rx2 = rx.clone();
        let seen = Arc::new(Mutex::new(Vec::new()));
        let (s1, s2) = (Arc::clone(&seen), Arc::clone(&seen));
        let a = spawn(move || s1.lock().unwrap().push(rx.recv().unwrap()));
        let b = spawn(move || s2.lock().unwrap().push(rx2.recv().unwrap()));
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        a.join();
        b.join();
        let mut got = seen.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2], "each message exactly once");
    });
    assert!(report.executions >= 2);
}

#[test]
fn send_timeout_terminates_on_a_stuck_consumer() {
    // The receiver exists but never drains: send_timeout on the full
    // channel must return Timeout on every schedule — never hang, never
    // sneak the message in.
    check(|| {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        match tx.send_timeout(2, Duration::from_millis(5)) {
            Err(SendTimeoutError::Timeout(v)) => assert_eq!(v, 2),
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    });
}

#[test]
fn recv_timeout_always_terminates_against_a_racing_producer() {
    // Producer races the consumer's deadline. Depending on the schedule
    // the consumer is notified or expires — both must terminate, and an
    // expiry must leave the late message intact in the buffer.
    let report = check(|| {
        let (tx, rx) = bounded::<u32>(1);
        let t = spawn(move || {
            tx.send(7).unwrap();
        });
        match rx.recv_timeout(Duration::from_millis(5)) {
            Ok(v) => assert_eq!(v, 7),
            Err(RecvTimeoutError::Timeout) => {
                // The send may still be in flight; the message must not
                // be lost once it lands.
                t.join();
                assert_eq!(rx.try_recv(), Ok(7));
                return;
            }
            Err(e) => panic!("unexpected {e:?}"),
        }
        t.join();
    });
    assert!(
        report.executions >= 2,
        "both the notified and the expired branch must be explored"
    );
}

#[test]
fn disconnect_wakes_a_blocked_receiver() {
    // Consumer parks in an untimed recv(); the producer drops without
    // sending. Every schedule must observe RecvError — a lost disconnect
    // wakeup would deadlock and fail the check.
    check(|| {
        let (tx, rx) = bounded::<u32>(1);
        let t = spawn(move || {
            drop(tx);
        });
        assert_eq!(rx.recv(), Err(RecvError));
        t.join();
    });
}

#[test]
fn disconnect_wakes_a_blocked_sender() {
    // Producer parks in a blocking send() on a full channel; the
    // consumer drops without draining. Every schedule must observe
    // SendError.
    check(|| {
        let (tx, rx) = bounded::<u32>(1);
        tx.send(1).unwrap();
        let t = spawn(move || {
            drop(rx);
        });
        assert!(tx.send(2).is_err());
        t.join();
    });
}

#[test]
fn recv_timeout_observes_disconnect_or_expiry_but_never_hangs() {
    let report = check(|| {
        let (tx, rx) = bounded::<u32>(1);
        let t = spawn(move || {
            drop(tx);
        });
        match rx.recv_timeout(Duration::from_millis(5)) {
            Err(RecvTimeoutError::Disconnected) | Err(RecvTimeoutError::Timeout) => {}
            Ok(v) => panic!("nothing was sent, got {v}"),
        }
        t.join();
    });
    assert!(report.executions >= 2);
}

#[test]
fn cross_blocked_receivers_deadlock_negative_control() {
    // Sanity check that the checker still detects real channel
    // deadlocks: two threads each recv() on a channel only the *other*
    // could feed, while keeping their own sender alive (so no
    // disconnect rescue). Every schedule deadlocks.
    let report = check_config(
        Config {
            fail_on_deadlock: false,
            ..Config::default()
        },
        || {
            let (tx_a, rx_a) = bounded::<u32>(1);
            let (tx_b, rx_b) = bounded::<u32>(1);
            let t = spawn(move || {
                // Would send on A only after hearing from B.
                let v = rx_b.recv().unwrap();
                tx_a.send(v).unwrap();
            });
            // Would send on B only after hearing from A.
            let v = rx_a.recv().unwrap();
            tx_b.send(v).unwrap();
            t.join();
        },
    );
    assert!(
        report.deadlocks > 0,
        "the cross-blocked topology must deadlock"
    );
    assert_eq!(
        report.deadlocks, report.executions,
        "no schedule can rescue the cross-blocked topology"
    );
}
