//! Property-based tests over the core invariants, spanning crates.
//!
//! Strategy: generate random edge sets / operation sequences; check every
//! storage engine against the in-memory `HashMapDb` reference and the
//! parallel BFS against a sequential oracle.

use mssg::core::bfs::{bfs, BfsOptions};
use mssg::core::ingest::{ingest, IngestOptions};
use mssg::core::{BackendKind, BackendOptions, MssgCluster};
use mssg::graphdb::{chunk, GraphDb, GraphDbExt, HashMapDb};
use mssg::prelude::*;
use proptest::prelude::*;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "mssg-prop-{}-{tag}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn arb_edges(max_v: u64, max_e: usize) -> impl Strategy<Value = Vec<Edge>> {
    prop::collection::vec((0..max_v, 0..max_v), 1..max_e)
        .prop_map(|pairs| pairs.into_iter().map(|(a, b)| Edge::of(a, b)).collect())
}

fn oracle_bfs(edges: &[Edge], source: Gid, dest: Gid) -> Option<u32> {
    if source == dest {
        return Some(0);
    }
    let mut adj: HashMap<Gid, Vec<Gid>> = HashMap::new();
    for e in edges {
        adj.entry(e.src).or_default().push(e.dst);
        adj.entry(e.dst).or_default().push(e.src);
    }
    let mut dist: HashMap<Gid, u32> = HashMap::new();
    dist.insert(source, 0);
    let mut q = VecDeque::from([source]);
    while let Some(v) = q.pop_front() {
        let d = dist[&v];
        for &u in adj.get(&v).into_iter().flatten() {
            if u == dest {
                return Some(d + 1);
            }
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(u) {
                e.insert(d + 1);
                q.push_back(u);
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12 })]

    /// Every out-of-core engine returns exactly the adjacency lists the
    /// in-memory reference returns, for arbitrary edge batches.
    #[test]
    fn storage_engines_match_reference(edges in arb_edges(24, 300)) {
        let mut reference = HashMapDb::new();
        reference.store_edges(&edges).unwrap();
        for kind in [BackendKind::Grdb, BackendKind::BerkeleyDb, BackendKind::MySql,
                     BackendKind::StreamDb, BackendKind::Array] {
            let dir = tmpdir(&format!("engines-{}", kind.name()));
            let mut db = mssg::core::backend::open_backend(
                kind, &dir, &BackendOptions::default(), mssg::simio::IoStats::new(),
            ).unwrap();
            db.store_edges(&edges).unwrap();
            db.flush().unwrap();
            for v in 0..24u64 {
                let mut got = db.neighbors(Gid::new(v)).unwrap();
                let mut want = reference.neighbors(Gid::new(v)).unwrap();
                got.sort_unstable();
                want.sort_unstable();
                prop_assert_eq!(got, want, "{} vertex {}", kind.name(), v);
            }
        }
    }

    /// The distributed out-of-core BFS agrees with a sequential oracle on
    /// arbitrary graphs, cluster sizes, and query pairs.
    #[test]
    fn parallel_bfs_matches_oracle(
        edges in arb_edges(30, 200),
        nodes in 1usize..5,
        s in 0u64..30,
        d in 0u64..30,
    ) {
        let dir = tmpdir("bfs");
        let mut cluster = MssgCluster::new(
            &dir, nodes, BackendKind::HashMap, &BackendOptions::default(),
        ).unwrap();
        ingest(&mut cluster, edges.clone().into_iter(), &IngestOptions::default()).unwrap();
        let got = bfs(&cluster, Gid::new(s), Gid::new(d), &BfsOptions::default())
            .unwrap()
            .path_length;
        let want = oracle_bfs(&edges, Gid::new(s), Gid::new(d));
        prop_assert_eq!(got, want, "{} nodes, {}->{}", nodes, s, d);
    }

    /// Pipelined BFS (Algorithm 2) is equivalent to Algorithm 1 for any
    /// threshold.
    #[test]
    fn pipelined_bfs_equivalent(
        edges in arb_edges(25, 150),
        threshold in 1usize..64,
        s in 0u64..25,
        d in 0u64..25,
    ) {
        let dir = tmpdir("pipe");
        let mut cluster = MssgCluster::new(
            &dir, 3, BackendKind::HashMap, &BackendOptions::default(),
        ).unwrap();
        ingest(&mut cluster, edges.into_iter(), &IngestOptions::default()).unwrap();
        let a = bfs(&cluster, Gid::new(s), Gid::new(d), &BfsOptions::default())
            .unwrap().path_length;
        let b = bfs(&cluster, Gid::new(s), Gid::new(d), &BfsOptions {
            mode: mssg::core::BfsMode::Pipelined { threshold },
            ..Default::default()
        }).unwrap().path_length;
        prop_assert_eq!(a, b);
    }

    /// The adjacency chunk codec round-trips arbitrary lists at arbitrary
    /// chunk sizes.
    #[test]
    fn chunk_codec_roundtrip(
        raw in prop::collection::vec(0u64..1_000_000, 0..500),
        chunk_bytes in 12usize..256,
    ) {
        let gids: Vec<Gid> = raw.into_iter().map(Gid::new).collect();
        let chunks = chunk::encode(&gids, chunk_bytes);
        let back = chunk::decode_all(chunks.iter().map(|c| c.as_slice())).unwrap();
        prop_assert_eq!(back, gids.clone());
        // Every chunk except the last is exactly full.
        for c in chunks.iter().rev().skip(1) {
            prop_assert_eq!(
                chunk::chunk_len(c).unwrap(),
                chunk::capacity(chunk_bytes)
            );
        }
        let _ = gids;
    }

    /// grDB defragmentation never changes the stored adjacency data.
    #[test]
    fn grdb_defrag_preserves_data(edges in arb_edges(12, 250)) {
        use mssg::grdb::{GrdbConfig, GrdbGraphDb};
        let dir = tmpdir("defrag");
        let mut db = GrdbGraphDb::open(
            &dir, GrdbConfig::tiny(), mssg::simio::IoStats::new(),
        ).unwrap();
        db.store_edges(&edges).unwrap();
        let before: Vec<Vec<Gid>> = (0..12)
            .map(|v| db.neighbors(Gid::new(v)).unwrap())
            .collect();
        db.store().defragment_all().unwrap();
        for v in 0..12u64 {
            prop_assert_eq!(
                db.neighbors(Gid::new(v)).unwrap(),
                before[v as usize].clone(),
                "vertex {} changed after defragment", v
            );
        }
    }

    /// The declustering strategies never lose or duplicate a directed
    /// entry: the union over all nodes equals the input.
    #[test]
    fn declustering_is_a_partition(edges in arb_edges(20, 200), nodes in 1usize..6) {
        use mssg::core::decluster::Declustering;
        for mut strategy in [
            Declustering::vertex_hash(nodes),
            Declustering::vertex_round_robin(nodes),
            Declustering::edge_round_robin(nodes),
        ] {
            let mut all: Vec<(usize, Edge)> = Vec::new();
            for &e in &edges {
                all.extend(strategy.assign(e));
            }
            prop_assert_eq!(all.len(), edges.len() * 2);
            prop_assert!(all.iter().all(|&(n, _)| n < nodes));
            let mut got: Vec<Edge> = all.into_iter().map(|(_, e)| e).collect();
            let mut want: Vec<Edge> =
                edges.iter().flat_map(|e| [*e, e.reversed()]).collect();
            got.sort_unstable();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// kvdb behaves like a BTreeMap under arbitrary operation sequences.
    #[test]
    fn kvdb_matches_btreemap(
        ops in prop::collection::vec((0u16..200, 0usize..3, 0usize..40), 1..300),
    ) {
        use mssg::kvdb::KvStore;
        let dir = tmpdir("kv");
        let mut store = KvStore::open_default(&dir.join("p.db")).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for (key, op, len) in ops {
            let k = key.to_be_bytes();
            match op {
                0 => {
                    let v = vec![(key % 251) as u8; len];
                    store.put(&k, &v).unwrap();
                    model.insert(k.to_vec(), v);
                }
                1 => {
                    let got = store.delete(&k).unwrap();
                    prop_assert_eq!(got, model.remove(k.as_slice()).is_some());
                }
                _ => {
                    let got = store.get(&k).unwrap();
                    prop_assert_eq!(got.as_ref(), model.get(k.as_slice()));
                }
            }
        }
        prop_assert_eq!(store.len() as usize, model.len());
        let scanned = store.range_to_vec(None, None).unwrap();
        let expected: Vec<(Vec<u8>, Vec<u8>)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expected);
    }
}
