//! Mini-loom: exhaustive interleaving exploration for small concurrent
//! programs built on mutexes and condition variables.
//!
//! MSSG's runtime moves every buffer through the vendored bounded
//! channel; a lost wakeup or a non-terminating `recv_timeout` there
//! turns into a silent cluster-wide hang that chaos testing (PR 2) can
//! only catch per-seed. This crate *proves* those properties for 2–3
//! thread scenarios instead: [`check`] runs a closure under a
//! deterministic scheduler, records every scheduling choice, and
//! restarts the closure until the whole choice tree is explored. Any
//! assertion failure or deadlock in *any* interleaving panics with the
//! exact schedule that produced it.
//!
//! # How programs opt in
//!
//! Code under test uses [`shim::Mutex`], [`shim::Condvar`] and
//! [`shim::Instant`] instead of the `std` types. Outside [`check`] these
//! are the `std` primitives (one enum branch of overhead), so production
//! code pays nothing; inside [`check`] they become scheduler-controlled.
//! The vendored `crossbeam` channel is wired through the shim, which is
//! what makes the channel corpus in `tests/` possible.
//!
//! # Soundness and limits
//!
//! - Threads only interact through shim mutexes, so context switches at
//!   lock/wait/notify/join points cover all observable interleavings.
//!   Code that shares state through atomics or `UnsafeCell` outside a
//!   shim mutex is *not* modeled — unless it goes through
//!   [`race::TracedCell`] or the [`race`] refcount hooks, which add
//!   their own scheduling points and check every access against a
//!   vector-clock happens-before relation (the `clock-order` xtask lint
//!   polices the remaining raw-atomic uses statically).
//! - Exploration is exhaustive by default ([`Config::exhaustive`]);
//!   overflowing [`Config::max_executions`] fails the run. Scenarios
//!   whose schedule tree is out of exhaustive reach (3+ threads with
//!   many scheduling points) can opt into bounded exploration instead,
//!   where the run stops at the budget and [`Report::complete`] records
//!   that the result is "no violation found in the first N schedules",
//!   not a proof.
//! - `notify_one` with no waiters is lost, and which waiter wakes is a
//!   scheduler choice — lost-wakeup bugs are therefore findable.
//! - Timeouts are virtual: a timed wait always has an "expire" branch,
//!   and taking it advances the clock past the deadline. No test sleeps.
//! - Spurious wakeups are not generated; a program that *requires* them
//!   would pass here and misbehave on real hardware.
//!
//! # Example
//!
//! ```
//! use mssg_modelcheck::{check, shim::Mutex, spawn};
//! use std::sync::Arc;
//!
//! let report = check(|| {
//!     let n = Arc::new(Mutex::new(0u32));
//!     let n2 = Arc::clone(&n);
//!     let t = spawn(move || *n2.lock().unwrap() += 1);
//!     *n.lock().unwrap() += 1;
//!     t.join();
//!     assert_eq!(*n.lock().unwrap(), 2);
//! });
//! assert!(report.executions >= 2); // both acquisition orders explored
//! ```

#![warn(missing_docs)]

pub mod race;
mod sched;
pub mod shim;

pub use sched::{check, check_config, spawn, Config, JoinHandle, Report};
