//! The deterministic scheduler: runs a closure's threads one at a time,
//! choosing at every synchronization point which thread proceeds next, and
//! explores every such choice by depth-first search over schedules.
//!
//! ## Model
//!
//! A *model thread* is an OS thread whose every interaction with shared
//! state goes through the [`shim`](crate::shim) primitives. Exactly one
//! model thread holds the *token* (runs) at any moment; it surrenders the
//! token at each synchronization point (lock acquisition, condvar wait,
//! join, finish). Because the code under test shares state only through
//! its mutexes, interleaving at these points is equivalent to
//! interleaving at every instruction — which is what makes exhaustive
//! exploration of 2–3 thread programs both complete and tractable.
//!
//! Condition-variable semantics are modeled faithfully: `notify_one` on an
//! empty waiter set is *lost* (this is what makes lost-wakeup bugs
//! detectable), the waiter woken by `notify_one` is a scheduler choice,
//! and a timed wait may always fire its timeout instead of being
//! notified (time is virtual: firing a timeout advances the clock past
//! the deadline). Spurious wakeups are not generated; code relying on
//! them for progress would pass here and hang in production — see the
//! crate docs for the full soundness statement.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe, Location};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex};
use std::time::Duration;

/// Exploration limits and expectations for one [`check_config`] run.
#[derive(Clone, Debug)]
pub struct Config {
    /// Abort (panic) if the schedule space exceeds this many executions.
    pub max_executions: usize,
    /// Abort an execution that makes more scheduling steps than this
    /// (livelock guard).
    pub max_steps: usize,
    /// When `true` (the default), a deadlocked schedule fails the check
    /// with a counterexample trace. When `false`, deadlocks are counted
    /// in [`Report::deadlocks`] and exploration continues — used to
    /// assert that a negative control *does* deadlock.
    pub fail_on_deadlock: bool,
    /// When `true` (the default), exceeding [`Config::max_executions`]
    /// panics: the caller claimed the scenario was exhaustively
    /// checkable within the budget and it was not. When `false`, the
    /// exploration stops cleanly at the budget instead and reports
    /// [`Report::complete`] as `false` — bounded coverage of a schedule
    /// tree too deep for exhaustive DFS (e.g. three-node protocol
    /// scenarios), still checking every assertion on every schedule it
    /// does run.
    pub exhaustive: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_executions: 200_000,
            max_steps: 20_000,
            fail_on_deadlock: true,
            exhaustive: true,
        }
    }
}

/// Outcome of an exhaustive exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub executions: usize,
    /// Number of schedules that ended in deadlock (always 0 when
    /// [`Config::fail_on_deadlock`] is set — those panic instead).
    pub deadlocks: usize,
    /// Number of wakes (summed over all schedules) where a notify landed
    /// on a waiter whose virtual deadline had already passed and the
    /// scheduler resolved the race as "timed out". Greater than zero
    /// proves the notify-vs-expiry edge was actually explored.
    pub notified_expiries: usize,
    /// `true` when the DFS enumerated every schedule; `false` when a
    /// non-[`exhaustive`](Config::exhaustive) run stopped at its
    /// execution budget with alternatives still unexplored.
    pub complete: bool,
}

/// Panic payload used to unwind model threads when an execution aborts
/// (deadlock found, violation found, or exploration shutting down).
struct AbortPayload;

/// Why a waiting thread resumed, reported by `wait_timeout`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Wake {
    /// Not woken from a wait (initial state / plain lock).
    None,
    /// A `notify_one`/`notify_all` selected this thread.
    Notified,
    /// The virtual timeout fired.
    TimedOut,
}

#[derive(Clone, Debug)]
enum ThrState {
    /// Registered, waiting to be scheduled for the first time.
    Spawned,
    /// Holds the token.
    Running,
    /// Blocked until `lock` is free (covers both plain acquisition and
    /// re-acquisition after a condvar wake).
    WantsLock { lock: usize },
    /// Parked on condition variable `cond`, having released `lock`;
    /// `deadline` is the virtual-clock expiry of a timed wait.
    InCond {
        cond: usize,
        lock: usize,
        deadline: Option<u64>,
    },
    /// Blocked until `target` finishes.
    WantsJoin { target: usize },
    /// Surrendered the token at an always-enabled scheduling point (a
    /// traced memory access or refcount transition) — runnable as-is.
    Yielded,
    /// Ran to completion (or unwound during abort).
    Finished,
}

/// One recorded access to a traced cell: who, at which epoch of their own
/// clock, and from which source location.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Access {
    tid: usize,
    at: u64,
    site: &'static Location<'static>,
}

/// Happens-before bookkeeping for one [`race::TracedCell`](crate::race::TracedCell).
#[derive(Debug, Default)]
pub(crate) struct CellState {
    name: &'static str,
    last_write: Option<Access>,
    reads: Vec<Access>,
}

/// `dst := dst ⊔ src` (pointwise max), growing `dst` as needed.
fn vc_join(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src) {
        *d = (*d).max(*s);
    }
}

/// Advances `vc[tid]` (the thread's own epoch), growing as needed.
fn vc_tick(vc: &mut Vec<u64>, tid: usize) {
    if vc.len() <= tid {
        vc.resize(tid + 1, 0);
    }
    vc[tid] += 1;
}

#[derive(Debug)]
struct Thr {
    state: ThrState,
    wake: Wake,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Running,
    Done,
    Deadlock,
    Violation,
}

pub(crate) struct ExecState {
    threads: Vec<Thr>,
    /// `true` = held. Index = lock id.
    locks: Vec<bool>,
    /// Waiter thread ids per condvar, in arrival order.
    conds: Vec<Vec<usize>>,
    /// Virtual clock, nanoseconds. Advances only when a timeout fires.
    clock: u64,
    steps: usize,
    max_steps: usize,
    /// Schedule prefix to replay (from the previous execution's DFS step).
    forced: Vec<usize>,
    /// Choices made this execution: (chosen, alternatives). Only points
    /// with >1 alternative are recorded.
    recorded: Vec<(usize, usize)>,
    trace: Vec<String>,
    outcome: Outcome,
    /// Human-readable report for a deadlock/violation outcome.
    failure: Option<String>,
    /// Set when the execution is being torn down; parked threads unwind.
    aborted: bool,
    /// Thread currently granted the token (consumed by the grantee).
    granted: Option<usize>,
    /// Per-thread vector clocks (index = thread id). Every lock release,
    /// notify, spawn and join publishes clocks; acquires join them — the
    /// happens-before relation the race detector checks against.
    vclocks: Vec<Vec<u64>>,
    /// Per-lock release clocks: the clock of the thread that last
    /// released the lock (joined by the next acquirer).
    lock_vc: Vec<Vec<u64>>,
    /// Release clocks of refcounted objects (vendored `Bytes`, channel
    /// queues), keyed by allocation address. Entries die with the object
    /// so a reused address cannot leak a stale edge.
    obj_vc: HashMap<usize, Vec<u64>>,
    /// Traced-cell access history, index = cell id.
    cells: Vec<CellState>,
    /// Wakes resolved as "notify arrived after the deadline → report
    /// timeout" in this execution (see [`Report::notified_expiries`]).
    notified_expiries: usize,
}

pub(crate) struct ExecShared {
    st: OsMutex<ExecState>,
    cv: OsCondvar,
    handles: OsMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<ExecShared>, usize)>> = const { RefCell::new(None) };
}

/// The executing model thread's (scheduler, thread id), if any.
pub(crate) fn current() -> Option<(Arc<ExecShared>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn lock_state(exec: &ExecShared) -> std::sync::MutexGuard<'_, ExecState> {
    exec.st.lock().unwrap_or_else(|p| p.into_inner())
}

/// Installs (once) a panic hook that silences the expected
/// [`AbortPayload`] unwinds and assertion panics inside model threads;
/// violations are re-reported with their trace by [`check_config`].
fn silence_model_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if current().is_some() {
                return; // a model thread: reported via the checker
            }
            previous(info);
        }));
    });
}

impl ExecState {
    fn new(forced: Vec<usize>, max_steps: usize) -> ExecState {
        ExecState {
            threads: vec![Thr {
                state: ThrState::Spawned,
                wake: Wake::None,
            }],
            locks: Vec::new(),
            conds: Vec::new(),
            clock: 0,
            steps: 0,
            max_steps,
            forced,
            recorded: Vec::new(),
            trace: Vec::new(),
            outcome: Outcome::Running,
            failure: None,
            aborted: false,
            granted: None,
            vclocks: vec![vec![1]],
            lock_vc: Vec::new(),
            obj_vc: HashMap::new(),
            cells: Vec::new(),
            notified_expiries: 0,
        }
    }

    /// Makes (or replays) one scheduling decision among `n` alternatives.
    fn choose(&mut self, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let c = self.forced.get(self.recorded.len()).copied().unwrap_or(0);
        debug_assert!(c < n, "replayed schedule diverged");
        self.recorded.push((c, n));
        c
    }

    fn thread_summary(&self) -> String {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, t)| format!("  T{i}: {:?}", t.state))
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn failure_report(&self, kind: &str, detail: &str) -> String {
        format!(
            "{kind}: {detail}\nthreads:\n{}\nschedule trace:\n  {}",
            self.thread_summary(),
            self.trace.join("\n  ")
        )
    }
}

#[derive(Clone, Copy)]
enum Transition {
    /// Grant the token to the thread (acquiring its wanted lock, if any).
    Run(usize),
    /// Fire the virtual timeout of a thread parked in a timed wait.
    Timeout(usize),
}

/// Picks and applies scheduling transitions until a thread is granted the
/// token, the execution completes, or no transition is enabled
/// (deadlock). Called with the state lock held, by whichever thread just
/// reached a synchronization point.
fn dispatch(exec: &ExecShared, st: &mut ExecState) {
    loop {
        if st.aborted || st.outcome != Outcome::Running {
            return;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.outcome = Outcome::Violation;
            st.failure = Some(st.failure_report(
                "step bound exceeded",
                "execution did not terminate within the step budget (livelock?)",
            ));
            st.aborted = true;
            exec.cv.notify_all();
            return;
        }
        let mut enabled: Vec<Transition> = Vec::new();
        for (tid, t) in st.threads.iter().enumerate() {
            match &t.state {
                ThrState::Spawned => enabled.push(Transition::Run(tid)),
                ThrState::WantsLock { lock } if !st.locks[*lock] => {
                    enabled.push(Transition::Run(tid))
                }
                ThrState::WantsJoin { target }
                    if matches!(st.threads[*target].state, ThrState::Finished) =>
                {
                    enabled.push(Transition::Run(tid))
                }
                ThrState::Yielded => enabled.push(Transition::Run(tid)),
                ThrState::InCond {
                    deadline: Some(_), ..
                } => enabled.push(Transition::Timeout(tid)),
                _ => {}
            }
        }
        if enabled.is_empty() {
            if st
                .threads
                .iter()
                .all(|t| matches!(t.state, ThrState::Finished))
            {
                st.outcome = Outcome::Done;
            } else {
                st.outcome = Outcome::Deadlock;
                st.failure = Some(st.failure_report(
                    "deadlock",
                    "no thread can make progress and not all have finished",
                ));
                st.aborted = true;
            }
            exec.cv.notify_all();
            return;
        }
        let choice = st.choose(enabled.len());
        match enabled[choice] {
            Transition::Timeout(tid) => {
                let ThrState::InCond {
                    cond,
                    lock,
                    deadline: Some(deadline),
                } = st.threads[tid].state
                else {
                    unreachable!("timeout transition on a non-timed-wait thread")
                };
                st.clock = st.clock.max(deadline);
                st.conds[cond].retain(|&w| w != tid);
                st.threads[tid].wake = Wake::TimedOut;
                st.threads[tid].state = ThrState::WantsLock { lock };
                st.trace
                    .push(format!("T{tid}: timed wait on C{cond} expires"));
                // A timeout only *unparks* the thread; granting it the
                // token (after reacquiring the lock) is a further choice.
            }
            Transition::Run(tid) => {
                match st.threads[tid].state {
                    ThrState::Spawned => st.trace.push(format!("T{tid}: starts")),
                    ThrState::Yielded => st.trace.push(format!("T{tid}: resumes")),
                    ThrState::WantsLock { lock } => {
                        st.locks[lock] = true;
                        // Acquire edge: everything the last releaser did
                        // happens-before everything this thread does next.
                        let src = st.lock_vc[lock].clone();
                        vc_join(&mut st.vclocks[tid], &src);
                        st.trace.push(format!("T{tid}: acquires M{lock}"));
                    }
                    ThrState::WantsJoin { target } => {
                        // Join edge: the joined thread's whole history is
                        // visible to the joiner.
                        let src = st.vclocks[target].clone();
                        vc_join(&mut st.vclocks[tid], &src);
                        st.trace.push(format!("T{tid}: joins T{target}"))
                    }
                    _ => unreachable!("run transition on an unrunnable thread"),
                }
                st.threads[tid].state = ThrState::Running;
                st.granted = Some(tid);
                exec.cv.notify_all();
                return;
            }
        }
    }
}

/// Surrenders the token at a synchronization point (the caller must have
/// already moved itself out of `Running`) and blocks until re-granted.
/// Panics with [`AbortPayload`] if the execution is torn down meanwhile.
fn yield_to_scheduler(exec: &ExecShared, mut st: std::sync::MutexGuard<'_, ExecState>, me: usize) {
    dispatch(exec, &mut st);
    loop {
        if st.granted == Some(me) {
            st.granted = None;
            return;
        }
        if st.aborted {
            drop(st);
            std::panic::panic_any(AbortPayload);
        }
        st = exec.cv.wait(st).unwrap_or_else(|p| p.into_inner());
    }
}

// ---- operations invoked by the shim primitives ----------------------------

pub(crate) fn register_lock(exec: &ExecShared) -> usize {
    let mut st = lock_state(exec);
    st.locks.push(false);
    st.lock_vc.push(Vec::new());
    st.locks.len() - 1
}

pub(crate) fn register_cond(exec: &ExecShared) -> usize {
    let mut st = lock_state(exec);
    st.conds.push(Vec::new());
    st.conds.len() - 1
}

/// Blocking lock acquisition (a scheduling point even when free).
///
/// On a *panicking* thread (unwinding user code, or tearing down after
/// an abort) the scheduler must not be re-entered — a second panic would
/// abort the process — so locking degrades to plain OS-blocking mutual
/// exclusion: correct for the `Drop` impls that run during unwind, and
/// the model no longer needs the schedule once the execution is dead.
pub(crate) fn acquire(exec: &ExecShared, me: usize, lock: usize) {
    if std::thread::panicking() {
        let mut st = lock_state(exec);
        while st.locks[lock] {
            st = exec.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
        st.locks[lock] = true;
        return;
    }
    let mut st = lock_state(exec);
    st.threads[me].state = ThrState::WantsLock { lock };
    yield_to_scheduler(exec, st, me);
}

/// Lock release. Not a scheduling point: the next point the releasing
/// thread reaches lets every now-unblocked thread compete for the token.
pub(crate) fn release(exec: &ExecShared, me: usize, lock: usize) {
    let mut st = lock_state(exec);
    st.locks[lock] = false;
    if std::thread::panicking() {
        // Wake peers blocked in the teardown path of `acquire`.
        exec.cv.notify_all();
        return;
    }
    // Release edge: publish this thread's clock on the lock, then open a
    // new epoch so later unprotected accesses are *not* covered by it.
    st.lock_vc[lock] = st.vclocks[me].clone();
    vc_tick(&mut st.vclocks[me], me);
    st.trace.push(format!("T{me}: releases M{lock}"));
}

/// Atomically releases `lock`, parks on `cond` (with an optional virtual
/// timeout), and blocks until notified or expired *and* `lock` is
/// reacquired. Returns the wake reason.
pub(crate) fn cond_wait(
    exec: &ExecShared,
    me: usize,
    cond: usize,
    lock: usize,
    timeout: Option<Duration>,
) -> Wake {
    let mut st = lock_state(exec);
    st.locks[lock] = false;
    // Waiting releases the lock: same release edge as an unlock.
    st.lock_vc[lock] = st.vclocks[me].clone();
    vc_tick(&mut st.vclocks[me], me);
    st.conds[cond].push(me);
    let deadline = timeout.map(|d| {
        st.clock
            .saturating_add(d.as_nanos().min(u64::MAX as u128) as u64)
    });
    st.threads[me].wake = Wake::None;
    st.threads[me].state = ThrState::InCond {
        cond,
        lock,
        deadline,
    };
    st.trace.push(match timeout {
        Some(d) => format!("T{me}: waits on C{cond} (timeout {d:?})"),
        None => format!("T{me}: waits on C{cond}"),
    });
    yield_to_scheduler(exec, st, me);
    lock_state(exec).threads[me].wake
}

/// Wakes one waiter (scheduler's choice of which); lost if none wait.
pub(crate) fn notify_one(exec: &ExecShared, me: usize, cond: usize) {
    if std::thread::panicking() {
        // Teardown: parked waiters are woken by the abort broadcast, and
        // recording a choice on a dead execution would corrupt the DFS.
        return;
    }
    let mut st = lock_state(exec);
    if st.conds[cond].is_empty() {
        st.trace.push(format!("T{me}: notify_one C{cond} (lost)"));
        return;
    }
    let n = st.conds[cond].len();
    let k = st.choose(n);
    let tid = st.conds[cond].remove(k);
    wake_waiter(&mut st, me, tid);
    vc_tick(&mut st.vclocks[me], me);
    st.trace
        .push(format!("T{me}: notify_one C{cond} wakes T{tid}"));
}

/// Wakes every waiter.
pub(crate) fn notify_all(exec: &ExecShared, me: usize, cond: usize) {
    if std::thread::panicking() {
        return; // see notify_one
    }
    let mut st = lock_state(exec);
    let waiters = std::mem::take(&mut st.conds[cond]);
    if waiters.is_empty() {
        st.trace.push(format!("T{me}: notify_all C{cond} (lost)"));
        return;
    }
    for &tid in &waiters {
        wake_waiter(&mut st, me, tid);
    }
    vc_tick(&mut st.vclocks[me], me);
    st.trace
        .push(format!("T{me}: notify_all C{cond} wakes {waiters:?}"));
}

fn wake_waiter(st: &mut ExecState, me: usize, tid: usize) {
    let ThrState::InCond { lock, deadline, .. } = st.threads[tid].state else {
        unreachable!("woke a thread that was not waiting")
    };
    // A notify landing on (or after) the waiter's expiry tick is a real
    // OS race: the waiter may observe either the notification or its own
    // timeout. Explore both outcomes.
    let wake = match deadline {
        Some(d) if d <= st.clock && st.choose(2) == 1 => {
            st.notified_expiries += 1;
            st.trace.push(format!(
                "T{tid}: notify arrives after its deadline — resolved as timeout"
            ));
            Wake::TimedOut
        }
        _ => Wake::Notified,
    };
    if wake == Wake::Notified {
        // Signal edge: the notifier's history is visible to the waiter.
        // A wake reported as a timeout synchronizes only through the
        // mutex reacquisition, exactly like the real primitive.
        let src = st.vclocks[me].clone();
        vc_join(&mut st.vclocks[tid], &src);
    }
    st.threads[tid].wake = wake;
    st.threads[tid].state = ThrState::WantsLock { lock };
}

/// Current virtual clock (nanoseconds).
pub(crate) fn virtual_clock(exec: &ExecShared) -> u64 {
    lock_state(exec).clock
}

// ---- operations invoked by the race detector (crate::race) ----------------

/// An always-enabled scheduling point: surrenders the token so the
/// scheduler can interleave other threads before the caller's next
/// (unsynchronized) action. `what` goes into the schedule trace.
pub(crate) fn yield_point(exec: &ExecShared, me: usize, what: &str) {
    if std::thread::panicking() {
        return;
    }
    let mut st = lock_state(exec);
    st.trace.push(format!("T{me}: {what}"));
    st.threads[me].state = ThrState::Yielded;
    yield_to_scheduler(exec, st, me);
}

/// Registers a traced cell; returns its id.
pub(crate) fn register_cell(exec: &ExecShared, name: &'static str) -> usize {
    let mut st = lock_state(exec);
    st.cells.push(CellState {
        name,
        ..CellState::default()
    });
    st.cells.len() - 1
}

/// Checks one access to a traced cell against the recorded history and
/// the accessor's vector clock; records it. Returns a race report naming
/// both unordered sites if the access races with a previous one. Also a
/// scheduling point (so the DFS reaches every access interleaving).
pub(crate) fn traced_access(
    exec: &ExecShared,
    me: usize,
    cell: usize,
    is_write: bool,
    site: &'static Location<'static>,
) -> Option<String> {
    if std::thread::panicking() {
        return None;
    }
    let kind = if is_write { "write" } else { "read" };
    {
        let mut st = lock_state(exec);
        let name = st.cells[cell].name;
        st.trace.push(format!("T{me}: {kind}s `{name}` at {site}"));
        st.threads[me].state = ThrState::Yielded;
        yield_to_scheduler(exec, st, me);
    }
    let mut st = lock_state(exec);
    let my_vc = st.vclocks[me].clone();
    let epoch = my_vc.get(me).copied().unwrap_or(0);
    // `prev` happened-before this access iff our clock has caught up with
    // the epoch `prev` was made at (FastTrack's epoch comparison).
    let ordered = |a: &Access| my_vc.get(a.tid).copied().unwrap_or(0) >= a.at;
    let conflict = {
        let c = &st.cells[cell];
        let mut hit: Option<(&'static str, Access)> = None;
        if let Some(w) = &c.last_write {
            if w.tid != me && !ordered(w) {
                hit = Some(("write", *w));
            }
        }
        if hit.is_none() && is_write {
            hit = c
                .reads
                .iter()
                .find(|r| r.tid != me && !ordered(r))
                .map(|r| ("read", *r));
        }
        hit
    };
    let name = st.cells[cell].name;
    if let Some((prev_kind, prev)) = conflict {
        return Some(format!(
            "data race on `{name}`: {prev_kind} at {} (T{}) is unordered with {kind} at {site} (T{me})",
            prev.site, prev.tid,
        ));
    }
    let c = &mut st.cells[cell];
    let access = Access {
        tid: me,
        at: epoch,
        site,
    };
    if is_write {
        c.last_write = Some(access);
        c.reads.clear();
    } else {
        c.reads.retain(|a| a.tid != me);
        c.reads.push(access);
    }
    None
}

/// Marks `addr` as shared: a second handle now exists, so its later
/// refcount transitions are cross-thread-visible. Idempotent; the entry
/// is retired when the object dies or is consumed.
pub(crate) fn obj_mark_shared(exec: &ExecShared, addr: usize) {
    lock_state(exec).obj_vc.entry(addr).or_default();
}

/// `true` once `addr` has been marked shared (and not yet retired). A
/// never-cloned object is thread-local: its refcount operations cannot
/// order anything across threads, so the race hooks skip the scheduling
/// point — a sound partial-order reduction that keeps uniquely owned
/// buffers out of the schedule space.
pub(crate) fn obj_is_shared(exec: &ExecShared, addr: usize) -> bool {
    lock_state(exec).obj_vc.contains_key(&addr)
}

/// Release edge onto a refcounted object: joins the caller's clock into
/// the object's release clock (dropping a handle publishes every access
/// made through it). `dying` (refcount hitting zero) retires the entry so
/// a reused allocation address cannot inherit a stale edge.
pub(crate) fn obj_release(exec: &ExecShared, me: usize, addr: usize, dying: bool) {
    let mut st = lock_state(exec);
    let src = st.vclocks[me].clone();
    if dying {
        st.obj_vc.remove(&addr);
    } else {
        let vc = st.obj_vc.entry(addr).or_default();
        vc_join(vc, &src);
    }
    vc_tick(&mut st.vclocks[me], me);
}

/// Acquire edge from a refcounted object: joins the object's release
/// clock into the caller's (observing uniqueness — or receiving a message
/// — makes every publisher's history visible). `consume` retires the
/// entry (the object is gone, e.g. `try_into_vec` succeeded).
pub(crate) fn obj_acquire(exec: &ExecShared, me: usize, addr: usize, consume: bool) {
    let mut st = lock_state(exec);
    let vc = if consume {
        st.obj_vc.remove(&addr)
    } else {
        st.obj_vc.get(&addr).cloned()
    };
    if let Some(vc) = vc {
        vc_join(&mut st.vclocks[me], &vc);
    }
}

fn finish(exec: &ExecShared, me: usize) {
    let mut st = lock_state(exec);
    st.threads[me].state = ThrState::Finished;
    st.trace.push(format!("T{me}: finishes"));
    dispatch(exec, &mut st);
}

fn record_violation(exec: &ExecShared, me: usize, msg: String) {
    let mut st = lock_state(exec);
    st.threads[me].state = ThrState::Finished;
    if st.outcome == Outcome::Running {
        st.outcome = Outcome::Violation;
        let report = st.failure_report("violation", &format!("T{me} panicked: {msg}"));
        st.failure = Some(report);
    }
    st.aborted = true;
    exec.cv.notify_all();
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Body of every model OS thread: wait to be scheduled, run the closure,
/// then hand the token on (or report the violation that unwound us).
fn run_model_thread(exec: &Arc<ExecShared>, me: usize, f: impl FnOnce()) {
    // Initial grant: not inside user code, so abort just exits.
    {
        let mut st = lock_state(exec);
        loop {
            if st.granted == Some(me) {
                st.granted = None;
                break;
            }
            if st.aborted {
                return;
            }
            st = exec.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(()) => finish(exec, me),
        Err(payload) if payload.is::<AbortPayload>() => {}
        Err(payload) => record_violation(exec, me, panic_message(payload.as_ref())),
    }
}

/// Handle to a thread spawned with [`spawn`] inside a model execution.
pub struct JoinHandle {
    tid: usize,
}

impl JoinHandle {
    /// Blocks (as a scheduling point) until the thread finishes. A panic
    /// in the target thread fails the whole check with a trace, so there
    /// is no per-thread result to return.
    pub fn join(self) {
        let (exec, me) = current().expect("JoinHandle::join outside a model thread");
        let mut st = lock_state(&exec);
        st.threads[me].state = ThrState::WantsJoin { target: self.tid };
        yield_to_scheduler(&exec, st, me);
    }
}

/// Spawns a model thread running `f`. Must be called from inside a
/// [`check`] closure (or a thread transitively spawned by one).
pub fn spawn<F>(f: F) -> JoinHandle
where
    F: FnOnce() + Send + 'static,
{
    let (exec, me) = current().expect("modelcheck::spawn outside a model thread");
    let tid = {
        let mut st = lock_state(&exec);
        st.threads.push(Thr {
            state: ThrState::Spawned,
            wake: Wake::None,
        });
        let tid = st.threads.len() - 1;
        // Fork edge: the child starts with the parent's history, in a
        // fresh epoch of its own; the parent's later actions are not
        // ordered before the child's.
        let mut child = st.vclocks[me].clone();
        if child.len() <= tid {
            child.resize(tid + 1, 0);
        }
        child[tid] = 1;
        st.vclocks.push(child);
        vc_tick(&mut st.vclocks[me], me);
        tid
    };
    let exec2 = Arc::clone(&exec);
    let handle = std::thread::Builder::new()
        .name(format!("model-{tid}"))
        .spawn(move || {
            CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec2), tid)));
            run_model_thread(&exec2, tid, f);
        })
        .expect("spawn model thread");
    exec.handles
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push(handle);
    JoinHandle { tid }
}

/// Exhaustively explores every schedule of `f` with the default
/// [`Config`]. Panics with a counterexample trace on any deadlock or
/// assertion failure; returns the exploration [`Report`] otherwise.
pub fn check<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    check_config(Config::default(), f)
}

/// [`check`] with explicit limits / deadlock expectations.
pub fn check_config<F>(config: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    silence_model_panics();
    // Arm the vendor-side race hooks (Bytes, channel edges) for the
    // duration of the exploration; disarmed again on unwind.
    let _active = crate::race::ActiveGuard::new();
    let f = Arc::new(f);
    let mut forced: Vec<usize> = Vec::new();
    let mut executions = 0usize;
    let mut deadlocks = 0usize;
    let mut notified_expiries = 0usize;
    loop {
        if executions >= config.max_executions && !config.exhaustive {
            // Budget spent with alternatives left: bounded coverage.
            return Report {
                executions,
                deadlocks,
                notified_expiries,
                complete: false,
            };
        }
        executions += 1;
        assert!(
            executions <= config.max_executions,
            "model checker exceeded {} executions; reduce the scenario",
            config.max_executions
        );
        let exec = Arc::new(ExecShared {
            st: OsMutex::new(ExecState::new(
                std::mem::take(&mut forced),
                config.max_steps,
            )),
            cv: OsCondvar::new(),
            handles: OsMutex::new(Vec::new()),
        });
        // Thread 0 runs the closure itself.
        let exec2 = Arc::clone(&exec);
        let f2 = Arc::clone(&f);
        let t0 = std::thread::Builder::new()
            .name("model-0".to_string())
            .spawn(move || {
                CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec2), 0)));
                run_model_thread(&exec2, 0, move || f2());
            })
            .expect("spawn model thread 0");
        // Kick: schedule the first thread.
        {
            let mut st = lock_state(&exec);
            dispatch(&exec, &mut st);
        }
        // Wait for the execution to settle.
        {
            let mut st = lock_state(&exec);
            while st.outcome == Outcome::Running && !st.aborted {
                st = exec.cv.wait(st).unwrap_or_else(|p| p.into_inner());
            }
        }
        t0.join().ok();
        for h in exec
            .handles
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .drain(..)
        {
            h.join().ok();
        }
        let st = lock_state(&exec);
        notified_expiries += st.notified_expiries;
        match st.outcome {
            Outcome::Done => {}
            Outcome::Deadlock => {
                deadlocks += 1;
                if config.fail_on_deadlock {
                    let report = st.failure.clone().unwrap_or_default();
                    drop(st);
                    panic!(
                        "model checker found a counterexample (execution {executions}):\n{report}"
                    );
                }
            }
            Outcome::Violation => {
                let report = st.failure.clone().unwrap_or_default();
                drop(st);
                panic!("model checker found a counterexample (execution {executions}):\n{report}");
            }
            Outcome::Running => unreachable!("execution settled while still running"),
        }
        // DFS step: rewind to the deepest choice with an unexplored
        // alternative and take it.
        let recorded = st.recorded.clone();
        drop(st);
        let Some(i) = recorded.iter().rposition(|&(c, n)| c + 1 < n) else {
            return Report {
                executions,
                deadlocks,
                notified_expiries,
                complete: true,
            };
        };
        forced = recorded[..i].iter().map(|&(c, _)| c).collect();
        forced.push(recorded[i].0 + 1);
    }
}
