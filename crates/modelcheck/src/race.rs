//! Vector-clock happens-before race detection (a mini-TSan for model
//! executions).
//!
//! The scheduler (`sched`) already interleaves threads at every shim
//! mutex/condvar operation; this module adds the *memory* side: every
//! synchronization operation updates per-thread vector clocks, and a
//! [`TracedCell`] checks each of its reads/writes against that
//! happens-before relation. Two accesses to the same cell, at least one
//! a write, with neither ordered before the other, fail the check with a
//! counterexample naming **both** source sites and the exact schedule.
//!
//! # Clock edges
//!
//! | event                              | edge                              |
//! |------------------------------------|-----------------------------------|
//! | `shim::Mutex` release → acquire    | release/acquire through the lock  |
//! | `shim::Condvar` notify → wake      | notifier's clock joins the waiter |
//! | `spawn` / `JoinHandle::join`       | fork / join                       |
//! | channel send → recv (vendored)     | [`channel_send`]/[`channel_recv`] |
//! | `Bytes` drop → unique unwrap       | [`rc_release`]/[`rc_acquire`]     |
//!
//! The refcount hooks mirror real `Arc` semantics: cloning is a relaxed
//! increment (no edge, only a scheduling point), dropping a handle is a
//! release, and *observing uniqueness* (`Arc::try_unwrap` succeeding —
//! the buffer-pool recycle path) is the acquire that makes every former
//! holder's accesses visible. That is exactly the ordering reclamation
//! correctness depends on, so the detector proves it rather than assumes
//! it.
//!
//! # Outside a model execution
//!
//! All hooks are no-ops gated on one relaxed atomic load, and
//! [`TracedCell`] falls back to an `RwLock` — production code pays one
//! branch and stays sound.
//!
//! # Example: the detector fires on an unsynchronized counter
//!
//! ```should_panic
//! use mssg_modelcheck::{check, race::TracedCell, spawn};
//! use std::sync::Arc;
//!
//! check(|| {
//!     let c = Arc::new(TracedCell::new("counter", 0u64));
//!     let c2 = Arc::clone(&c);
//!     let t = spawn(move || c2.write(|v| *v += 1));
//!     c.write(|v| *v += 1); // no lock: racy — panics with both sites
//!     t.join();
//! });
//! ```

use std::cell::UnsafeCell;
use std::panic::Location;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use crate::sched::{self, ExecShared};

/// Number of live explorations in this process — the fast gate for the
/// vendor-side hooks: zero means "plain production process, return
/// before touching any thread-local".
// racecheck: gate counter only; readers ask "is any exploration live" and
// the thread-local lookup behind it re-validates on the slow path, so no
// ordering with other memory is needed.
static ACTIVE: AtomicUsize = AtomicUsize::new(0);

/// Arms the vendor-side hooks for one exploration (created by
/// `check_config`); disarms on drop, including during unwinds.
pub(crate) struct ActiveGuard(());

impl ActiveGuard {
    pub(crate) fn new() -> ActiveGuard {
        // racecheck: see ACTIVE — pure gate increment.
        ACTIVE.fetch_add(1, Ordering::Relaxed);
        ActiveGuard(())
    }
}

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        // racecheck: see ACTIVE — pure gate decrement.
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The calling thread's model execution, if the hooks should do anything
/// at all: some exploration is live, this thread belongs to one, and it
/// is not unwinding (a dead execution must not re-enter the scheduler).
fn model_ctx() -> Option<(Arc<ExecShared>, usize)> {
    // racecheck: see ACTIVE — gate load, re-validated via TLS below.
    if ACTIVE.load(Ordering::Relaxed) == 0 {
        return None;
    }
    if std::thread::panicking() {
        return None;
    }
    sched::current()
}

/// Hook for a refcount *clone* of the shared object at allocation
/// address `addr`. A real `Arc` clone is a relaxed increment — it
/// creates no happens-before edge — so this only inserts a scheduling
/// point, letting the DFS interleave other threads around the clone.
pub fn rc_clone(addr: usize) {
    if let Some((exec, me)) = model_ctx() {
        sched::obj_mark_shared(&exec, addr);
        sched::yield_point(&exec, me, &format!("clones shared object @{addr:#x}"));
    }
}

/// Hook for a refcount *decrement* (handle drop): a release edge — every
/// access the dropping thread made through the handle is published to
/// whoever later observes the object unique. `last` means the refcount
/// hit zero (the allocation dies; its clock entry is retired so a reused
/// address cannot inherit it). Dropping a handle that was never cloned
/// is thread-local and skips the hook entirely (see
/// `sched::obj_is_shared`).
pub fn rc_release(addr: usize, last: bool) {
    if let Some((exec, me)) = model_ctx() {
        if !sched::obj_is_shared(&exec, addr) {
            return;
        }
        sched::yield_point(&exec, me, &format!("drops shared object @{addr:#x}"));
        sched::obj_release(&exec, me, addr, last);
    }
}

/// Hook for a refcount *inspection* (`Arc::try_unwrap` about to read the
/// strong count): a scheduling point with no clock edge. Without it the
/// observing thread could run from its previous yield straight into the
/// count read, and the DFS could never interleave the drop that makes
/// the object unique.
pub fn rc_observe(addr: usize) {
    if let Some((exec, me)) = model_ctx() {
        if !sched::obj_is_shared(&exec, addr) {
            return;
        }
        sched::yield_point(&exec, me, &format!("inspects shared object @{addr:#x}"));
    }
}

/// Hook for *observing uniqueness* (`Arc::try_unwrap` succeeding — the
/// pool-recycle path): an acquire edge consuming the object's release
/// clock, making every former holder's history visible to the caller.
pub fn rc_acquire(addr: usize) {
    if let Some((exec, me)) = model_ctx() {
        if !sched::obj_is_shared(&exec, addr) {
            return;
        }
        sched::yield_point(&exec, me, &format!("unwraps shared object @{addr:#x}"));
        sched::obj_acquire(&exec, me, addr, true);
    }
}

/// Message-passing release edge of a channel send: the sender's history
/// is published on the queue at `addr`. Not a scheduling point — the
/// channel's own shim mutex already provides one, so this adds clock
/// precision without growing the schedule space.
pub fn channel_send(addr: usize) {
    if let Some((exec, me)) = model_ctx() {
        sched::obj_release(&exec, me, addr, false);
    }
}

/// Message-passing acquire edge of a channel receive: joins the queue's
/// release clock into the receiver. See [`channel_send`].
pub fn channel_recv(addr: usize) {
    if let Some((exec, me)) = model_ctx() {
        sched::obj_acquire(&exec, me, addr, false);
    }
}

enum CellInner<T> {
    /// Outside a model execution: a real lock, so the fallback stays
    /// sound (merely serializing) even if production code ever holds one.
    Std(RwLock<T>),
    /// Inside a model execution: raw storage plus a registered cell id.
    /// Exclusive physical access is guaranteed by the scheduler token;
    /// *logical* races are what `traced_access` reports.
    Model {
        exec: Arc<ExecShared>,
        id: usize,
        cell: UnsafeCell<T>,
    },
}

/// A shared memory cell whose every access is race-checked under the
/// model scheduler.
///
/// [`read`](TracedCell::read) and [`write`](TracedCell::write) are
/// `#[track_caller]`, so when two unordered accesses collide the failure
/// names both source locations. Accesses are also scheduling points:
/// the DFS drives every pair of accesses into both orders, which is what
/// makes "no schedule raced" an exhaustive statement.
///
/// The closures must not access the same cell re-entrantly (`write`
/// hands out `&mut`; a nested access would alias it).
pub struct TracedCell<T> {
    inner: CellInner<T>,
}

// Safety: in Std mode the RwLock provides real exclusion; in Model mode
// the scheduler grants the token to one thread at a time, so the
// UnsafeCell is never physically accessed concurrently (races are
// *detected*, not executed).
unsafe impl<T: Send> Send for TracedCell<T> {}
unsafe impl<T: Send + Sync> Sync for TracedCell<T> {}

impl<T> TracedCell<T> {
    /// Creates a cell named `name` (used in race reports and traces);
    /// model-backed iff called on a model thread.
    pub fn new(name: &'static str, value: T) -> TracedCell<T> {
        match sched::current() {
            None => TracedCell {
                inner: CellInner::Std(RwLock::new(value)),
            },
            Some((exec, _)) => {
                let id = sched::register_cell(&exec, name);
                TracedCell {
                    inner: CellInner::Model {
                        exec,
                        id,
                        cell: UnsafeCell::new(value),
                    },
                }
            }
        }
    }

    /// Runs `f` on a shared view of the value, reporting the access to
    /// the detector. Panics (failing the check with both sites) if it
    /// races with an unordered write.
    #[track_caller]
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        match &self.inner {
            CellInner::Std(l) => f(&l.read().unwrap_or_else(|p| p.into_inner())),
            CellInner::Model { exec, id, cell } => {
                model_access(exec, *id, false, Location::caller());
                // Safety: see the Sync impl — we hold the token.
                f(unsafe { &*cell.get() })
            }
        }
    }

    /// Runs `f` on an exclusive view of the value, reporting the access
    /// to the detector. Panics (failing the check with both sites) if it
    /// races with any unordered access.
    #[track_caller]
    pub fn write<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        match &self.inner {
            CellInner::Std(l) => f(&mut l.write().unwrap_or_else(|p| p.into_inner())),
            CellInner::Model { exec, id, cell } => {
                model_access(exec, *id, true, Location::caller());
                // Safety: see the Sync impl — we hold the token.
                f(unsafe { &mut *cell.get() })
            }
        }
    }

    /// Consumes the cell, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner {
            CellInner::Std(l) => l.into_inner().unwrap_or_else(|p| p.into_inner()),
            CellInner::Model { cell, .. } => cell.into_inner(),
        }
    }
}

fn model_access(
    exec: &Arc<ExecShared>,
    id: usize,
    is_write: bool,
    site: &'static Location<'static>,
) {
    if std::thread::panicking() {
        return;
    }
    let (cur, me) = sched::current().expect("TracedCell accessed outside a model execution");
    debug_assert!(
        Arc::ptr_eq(&cur, exec),
        "TracedCell crossed into a different execution"
    );
    if let Some(report) = sched::traced_access(exec, me, id, is_write, site) {
        panic!("{report}");
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for TracedCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Reading through `read` keeps the Debug impl honest with the
        // detector (a formatting access is still an access).
        self.read(|v| f.debug_tuple("TracedCell").field(v).finish())
    }
}
