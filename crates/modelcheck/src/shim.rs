//! Drop-in replacements for `std::sync::{Mutex, Condvar}` and
//! `std::time::Instant` that dispatch at **construction time**: outside a
//! model execution they are thin wrappers over the std primitives (zero
//! behavioural change for production builds), while inside a
//! [`check`](crate::check) closure they route every operation through the
//! deterministic scheduler.
//!
//! Runtime dispatch — rather than a cargo feature — is deliberate:
//! feature unification would silently flip *every* workspace build onto
//! the model implementation the moment one test enabled it. With an enum
//! the production path costs one branch per operation and the vendored
//! channel needs no `cfg` at all: it just imports these types.
//!
//! The API mirrors the `std` signatures the vendored channel uses
//! (`lock().unwrap()`, `wait(st).unwrap()`, `wait_timeout(st, d).unwrap()`
//! returning `(guard, result)`, `Instant::now() + d`,
//! `checked_duration_since`), so swapping the imports is the entire
//! integration.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Add, Deref, DerefMut};
use std::sync::Arc;
use std::time::Duration;

use crate::sched::{self, ExecShared, Wake};

/// Result of a lock/wait operation, mirroring `std::sync::LockResult`.
/// The model variants never poison, so the `Err` arm only ever carries
/// std poisoning through.
pub type LockResult<G> = Result<G, PoisonError<G>>;

/// Mirror of `std::sync::PoisonError`: holds the guard so callers can
/// `unwrap_or_else(|e| e.into_inner())`.
pub struct PoisonError<G>(G);

impl<G> PoisonError<G> {
    /// Recovers the guard from a poisoned lock.
    pub fn into_inner(self) -> G {
        self.0
    }
}

impl<G> fmt::Debug for PoisonError<G> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("PoisonError { .. }")
    }
}

impl<G> fmt::Display for PoisonError<G> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("poisoned lock: another task failed inside")
    }
}

enum MutexInner<T> {
    Std(std::sync::Mutex<T>),
    Model {
        exec: Arc<ExecShared>,
        id: usize,
        cell: UnsafeCell<T>,
    },
}

/// Mutex that is `std::sync::Mutex` outside model executions and a
/// scheduler-controlled lock inside them.
pub struct Mutex<T> {
    inner: MutexInner<T>,
}

// Safety: the Model variant's UnsafeCell is only ever accessed by the
// single thread holding the model lock — the scheduler grants the lock
// to at most one thread at a time, exactly like a real mutex.
unsafe impl<T: Send> Send for Mutex<T> {}
unsafe impl<T: Send> Sync for Mutex<T> {}

impl<T> Mutex<T> {
    /// Creates a mutex; model-backed iff called on a model thread.
    pub fn new(value: T) -> Mutex<T> {
        match sched::current() {
            None => Mutex {
                inner: MutexInner::Std(std::sync::Mutex::new(value)),
            },
            Some((exec, _)) => {
                let id = sched::register_lock(&exec);
                Mutex {
                    inner: MutexInner::Model {
                        exec,
                        id,
                        cell: UnsafeCell::new(value),
                    },
                }
            }
        }
    }

    /// Acquires the mutex, blocking (a scheduling point in model mode).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match &self.inner {
            MutexInner::Std(m) => match m.lock() {
                Ok(g) => Ok(MutexGuard {
                    inner: GuardInner::Std(g),
                }),
                Err(p) => Err(PoisonError(MutexGuard {
                    inner: GuardInner::Std(p.into_inner()),
                })),
            },
            MutexInner::Model { exec, id, .. } => {
                let (cur, me) =
                    sched::current().expect("model-mode mutex locked outside a model execution");
                debug_assert!(
                    Arc::ptr_eq(&cur, exec),
                    "model-mode mutex crossed into a different execution"
                );
                sched::acquire(exec, me, *id);
                Ok(MutexGuard {
                    inner: GuardInner::Model { mutex: self },
                })
            }
        }
    }
}

enum GuardInner<'a, T> {
    Std(std::sync::MutexGuard<'a, T>),
    Model { mutex: &'a Mutex<T> },
}

/// RAII guard for [`Mutex`]; releases on drop.
pub struct MutexGuard<'a, T> {
    inner: GuardInner<'a, T>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            GuardInner::Std(g) => g,
            GuardInner::Model { mutex } => match &mutex.inner {
                // Safety: we hold the model lock (see Mutex safety note).
                MutexInner::Model { cell, .. } => unsafe { &*cell.get() },
                MutexInner::Std(_) => unreachable!("model guard over std mutex"),
            },
        }
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            GuardInner::Std(g) => g,
            GuardInner::Model { mutex } => match &mutex.inner {
                // Safety: we hold the model lock (see Mutex safety note).
                MutexInner::Model { cell, .. } => unsafe { &mut *cell.get() },
                MutexInner::Std(_) => unreachable!("model guard over std mutex"),
            },
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let GuardInner::Model { mutex } = &self.inner {
            if let MutexInner::Model { exec, id, .. } = &mutex.inner {
                if let Some((_, me)) = sched::current() {
                    sched::release(exec, me, *id);
                }
            }
        }
    }
}

enum CondInner {
    Std(std::sync::Condvar),
    Model { exec: Arc<ExecShared>, id: usize },
}

/// Condition variable pairing with [`Mutex`]; model-backed iff created
/// on a model thread. Mixing a model condvar with a std mutex (or vice
/// versa) panics — it would mean the program under test escaped the
/// model.
pub struct Condvar {
    inner: CondInner,
}

/// Mirror of `std::sync::WaitTimeoutResult`.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// Creates a condvar; model-backed iff called on a model thread.
    pub fn new() -> Condvar {
        match sched::current() {
            None => Condvar {
                inner: CondInner::Std(std::sync::Condvar::new()),
            },
            Some((exec, _)) => {
                let id = sched::register_cond(&exec);
                Condvar {
                    inner: CondInner::Model { exec, id },
                }
            }
        }
    }

    /// Releases the guard's mutex and blocks until notified.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match &self.inner {
            CondInner::Std(cv) => {
                let GuardInner::Std(std_guard) = into_guard_inner(guard) else {
                    panic!("std condvar waited on a model mutex guard")
                };
                match cv.wait(std_guard) {
                    Ok(g) => Ok(MutexGuard {
                        inner: GuardInner::Std(g),
                    }),
                    Err(p) => Err(PoisonError(MutexGuard {
                        inner: GuardInner::Std(p.into_inner()),
                    })),
                }
            }
            CondInner::Model { exec, id } => {
                let mutex = model_mutex_of(guard);
                let (_, me) =
                    sched::current().expect("model condvar waited outside a model execution");
                let lock_id = model_lock_id(mutex);
                sched::cond_wait(exec, me, *id, lock_id, None);
                Ok(MutexGuard {
                    inner: GuardInner::Model { mutex },
                })
            }
        }
    }

    /// Releases the guard's mutex and blocks until notified or `timeout`
    /// elapses (virtual time in model mode: the scheduler explores both
    /// the notified and the expired branch).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match &self.inner {
            CondInner::Std(cv) => {
                let GuardInner::Std(std_guard) = into_guard_inner(guard) else {
                    panic!("std condvar waited on a model mutex guard")
                };
                match cv.wait_timeout(std_guard, timeout) {
                    Ok((g, r)) => Ok((
                        MutexGuard {
                            inner: GuardInner::Std(g),
                        },
                        WaitTimeoutResult(r.timed_out()),
                    )),
                    Err(p) => {
                        let (g, r) = p.into_inner();
                        Err(PoisonError((
                            MutexGuard {
                                inner: GuardInner::Std(g),
                            },
                            WaitTimeoutResult(r.timed_out()),
                        )))
                    }
                }
            }
            CondInner::Model { exec, id } => {
                let mutex = model_mutex_of(guard);
                let (_, me) =
                    sched::current().expect("model condvar waited outside a model execution");
                let lock_id = model_lock_id(mutex);
                let wake = sched::cond_wait(exec, me, *id, lock_id, Some(timeout));
                Ok((
                    MutexGuard {
                        inner: GuardInner::Model { mutex },
                    },
                    WaitTimeoutResult(wake == Wake::TimedOut),
                ))
            }
        }
    }

    /// Wakes one waiter (the scheduler chooses which, in model mode).
    /// Lost if no thread is waiting — exactly like the real primitive.
    pub fn notify_one(&self) {
        match &self.inner {
            CondInner::Std(cv) => cv.notify_one(),
            CondInner::Model { exec, id } => {
                let (_, me) =
                    sched::current().expect("model condvar notified outside a model execution");
                sched::notify_one(exec, me, *id);
            }
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        match &self.inner {
            CondInner::Std(cv) => cv.notify_all(),
            CondInner::Model { exec, id } => {
                let (_, me) =
                    sched::current().expect("model condvar notified outside a model execution");
                sched::notify_all(exec, me, *id);
            }
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Extracts the guard's inner enum without running its `Drop` (which
/// would release the model lock we are about to hand to the scheduler).
fn into_guard_inner<T>(guard: MutexGuard<'_, T>) -> GuardInner<'_, T> {
    // Safety: `guard` is forgotten immediately after the read, so the
    // inner value is moved exactly once and no Drop runs twice.
    let inner = unsafe { std::ptr::read(&guard.inner) };
    std::mem::forget(guard);
    inner
}

fn model_mutex_of<T>(guard: MutexGuard<'_, T>) -> &Mutex<T> {
    match into_guard_inner(guard) {
        GuardInner::Model { mutex } => mutex,
        GuardInner::Std(_) => panic!("model condvar waited on a std mutex guard"),
    }
}

fn model_lock_id<T>(mutex: &Mutex<T>) -> usize {
    match &mutex.inner {
        MutexInner::Model { id, .. } => *id,
        MutexInner::Std(_) => unreachable!("model guard over std mutex"),
    }
}

/// Monotonic clock that is `std::time::Instant` outside model executions
/// and a scheduler-driven virtual clock inside them. The virtual clock
/// advances only when a timed wait's timeout fires — which is what lets
/// the checker explore "the timeout expired" without sleeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Instant {
    /// Wall-clock instant (production path).
    Real(std::time::Instant),
    /// Virtual nanoseconds since the start of the model execution.
    Virtual(u64),
}

impl Instant {
    /// Current time on whichever clock governs this thread.
    pub fn now() -> Instant {
        match sched::current() {
            None => Instant::Real(std::time::Instant::now()),
            Some((exec, _)) => Instant::Virtual(sched::virtual_clock(&exec)),
        }
    }

    /// `self - earlier`, or `None` if `self` is earlier. Mirrors
    /// `std::time::Instant::checked_duration_since`.
    pub fn checked_duration_since(&self, earlier: Instant) -> Option<Duration> {
        match (self, earlier) {
            (Instant::Real(a), Instant::Real(b)) => a.checked_duration_since(b),
            (Instant::Virtual(a), Instant::Virtual(b)) => {
                a.checked_sub(b).map(Duration::from_nanos)
            }
            _ => panic!("compared a virtual Instant with a real one"),
        }
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        match self {
            Instant::Real(t) => Instant::Real(t + rhs),
            Instant::Virtual(n) => {
                Instant::Virtual(n.saturating_add(rhs.as_nanos().min(u64::MAX as u128) as u64))
            }
        }
    }
}
