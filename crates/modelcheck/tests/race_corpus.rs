//! The racecheck corpus: programs the vector-clock detector must accept
//! (every schedule race-free) and deliberately racy negative controls it
//! must reject — with both access sites named in the counterexample.
//!
//! The `Bytes` scenarios are the point of the exercise: they prove the
//! unique-ownership reclamation discipline (`try_into_vec` gating any
//! unsynchronized reuse, the buffer-pool recycle path) is race-free
//! *because of* the refcount release/acquire edges, not by luck.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::bounded;
use mssg_modelcheck::race::TracedCell;
use mssg_modelcheck::shim::Mutex;
use mssg_modelcheck::{check, spawn};

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Positive control: a seeded write/write race is detected, and the
/// counterexample names both stack-tagged sites (two distinct lines of
/// this file).
#[test]
fn seeded_race_names_both_sites() {
    let result = std::panic::catch_unwind(|| {
        check(|| {
            let c = Arc::new(TracedCell::new("counter", 0u64));
            let c2 = Arc::clone(&c);
            let t = spawn(move || {
                c2.write(|v| *v += 1); // racy site A
            });
            c.write(|v| *v += 1); // racy site B
            t.join();
        })
    });
    let err = result.expect_err("the seeded race must be detected");
    let msg = panic_message(err.as_ref());
    assert!(
        msg.contains("data race on `counter`"),
        "expected a race report, got: {msg}"
    );
    let sites: Vec<&str> = msg
        .match_indices("race_corpus.rs")
        .map(|(_, s)| s)
        .collect();
    assert!(
        sites.len() >= 2,
        "both access sites must be named, got: {msg}"
    );
}

/// A read racing with a write is also caught (not just write/write).
#[test]
fn read_write_race_is_detected() {
    let result = std::panic::catch_unwind(|| {
        check(|| {
            let c = Arc::new(TracedCell::new("flag", false));
            let c2 = Arc::clone(&c);
            let t = spawn(move || {
                c2.read(|v| *v);
            });
            c.write(|v| *v = true);
            t.join();
        })
    });
    let msg = panic_message(result.expect_err("read/write race must fire").as_ref());
    assert!(msg.contains("data race on `flag`"), "got: {msg}");
}

/// Lock discipline makes the same program race-free in every schedule:
/// the release/acquire edges through the shim mutex order the accesses.
#[test]
fn mutex_protected_counter_is_race_free() {
    let report = check(|| {
        let lock = Arc::new(Mutex::new(()));
        let c = Arc::new(TracedCell::new("guarded", 0u64));
        let (l2, c2) = (Arc::clone(&lock), Arc::clone(&c));
        let t = spawn(move || {
            let _g = l2.lock().unwrap();
            c2.write(|v| *v += 1);
        });
        {
            let _g = lock.lock().unwrap();
            c.write(|v| *v += 1);
        }
        t.join();
        let _g = lock.lock().unwrap();
        c.read(|v| assert_eq!(*v, 2));
    });
    assert!(
        report.executions >= 2,
        "lock orders must be explored: {report:?}"
    );
    println!(
        "mutex_protected_counter: {} schedules, all race-free",
        report.executions
    );
}

/// Message passing orders accesses: the channel send/recv edge makes the
/// producer's write visible to the receiving consumer in every schedule.
#[test]
fn channel_transfer_orders_accesses() {
    let report = check(|| {
        let (tx, rx) = bounded::<u8>(1);
        let c = Arc::new(TracedCell::new("handoff", 0u64));
        let c2 = Arc::clone(&c);
        let t = spawn(move || {
            rx.recv().unwrap();
            c2.write(|v| *v += 1); // ordered after the producer's write
        });
        c.write(|v| *v = 41);
        tx.send(1).unwrap();
        t.join();
    });
    println!(
        "channel_transfer: {} schedules, all race-free",
        report.executions
    );
}

/// Negative control for the channel edge: a consumer that reads the cell
/// *without* receiving first has no ordering edge — the detector fires.
#[test]
fn unsynchronized_reader_races_with_producer() {
    let result = std::panic::catch_unwind(|| {
        check(|| {
            let (tx, rx) = bounded::<u8>(1);
            let c = Arc::new(TracedCell::new("handoff", 0u64));
            let c2 = Arc::clone(&c);
            let t = spawn(move || {
                c2.read(|v| *v); // reads before (or without) the recv
                rx.recv().unwrap();
            });
            c.write(|v| *v = 41);
            tx.send(1).unwrap();
            t.join();
        })
    });
    let msg = panic_message(result.expect_err("unordered read must race").as_ref());
    assert!(msg.contains("data race on `handoff`"), "got: {msg}");
}

/// The reclamation theorem: a thread that observes a `Bytes` unique via
/// `try_into_vec` may touch the (shadowed) payload unsynchronized,
/// because the refcount release/acquire edges order it after every
/// former holder's accesses — in every schedule where the unwrap
/// succeeds.
#[test]
fn bytes_unique_unwrap_orders_reclamation() {
    let unwrapped = Arc::new(AtomicUsize::new(0));
    let unwrapped2 = Arc::clone(&unwrapped);
    let report = check(move || {
        let (tx, rx) = bounded::<Bytes>(1);
        // Shadow of the payload allocation: accesses to it model accesses
        // to the recycled buffer's memory.
        let shadow = Arc::new(TracedCell::new("payload", 0u64));
        let shadow2 = Arc::clone(&shadow);
        let unwrapped3 = Arc::clone(&unwrapped2);
        let t = spawn(move || {
            // The recycling consumer: receives the buffer and reclaims it
            // only if it proves unique (the pool-recycle pattern).
            let b = rx.recv().unwrap();
            match b.try_into_vec() {
                Ok(v) => {
                    // Acquire edge fired: every former holder's accesses
                    // are visible, so this unsynchronized access is
                    // ordered in every schedule that reaches it.
                    shadow2.write(|s| *s += v.len() as u64);
                    unwrapped3.fetch_add(1, Ordering::Relaxed);
                }
                Err(still_shared) => drop(still_shared),
            }
        });
        let b = Bytes::from(vec![1u8, 2, 3]);
        tx.send(b.clone()).unwrap();
        // Touch the payload through the retained handle *after* the send:
        // the channel edge does not cover this write — only the drop
        // (release) → try_into_vec (acquire) edge orders it.
        shadow.write(|v| *v += 1);
        drop(b);
        t.join();
    });
    assert!(
        unwrapped.load(Ordering::Relaxed) > 0,
        "some schedule must observe the buffer unique"
    );
    println!(
        "bytes_unique_unwrap: {} schedules ({} with a successful unwrap), all race-free",
        report.executions,
        unwrapped.load(Ordering::Relaxed)
    );
}

/// Negative control for the reclamation theorem: touching the payload
/// *without* the `try_into_vec` gate races with the consumer.
#[test]
fn bytes_reuse_without_unwrap_gate_races() {
    let result = std::panic::catch_unwind(|| {
        check(|| {
            let (tx, rx) = bounded::<Bytes>(1);
            let shadow = Arc::new(TracedCell::new("payload", 0u64));
            let shadow2 = Arc::clone(&shadow);
            let t = spawn(move || {
                let b = rx.recv().unwrap();
                shadow2.write(|v| *v += b.len() as u64);
                drop(b);
            });
            let b = Bytes::from(vec![1u8, 2, 3]);
            tx.send(b.clone()).unwrap();
            drop(b); // drops its handle but never *observes* uniqueness…
            shadow.write(|s| *s += 1); // …so this access is unordered
            t.join();
        })
    });
    let msg = panic_message(result.expect_err("ungated reuse must race").as_ref());
    assert!(msg.contains("data race on `payload`"), "got: {msg}");
}
