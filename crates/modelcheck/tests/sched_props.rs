//! Self-tests for the mini-loom scheduler itself: known-good programs
//! must pass every interleaving, and known-bad programs (ABBA deadlock,
//! lost wakeup) must be caught with a counterexample.

use std::sync::Arc;
use std::time::Duration;

use mssg_modelcheck::shim::{Condvar, Mutex};
use mssg_modelcheck::{check, check_config, spawn, Config};

#[test]
fn counter_race_explores_multiple_schedules() {
    let report = check(|| {
        let n = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let n2 = Arc::clone(&n);
            handles.push(spawn(move || {
                let mut g = n2.lock().unwrap();
                *g += 1;
            }));
        }
        for h in handles {
            h.join();
        }
        assert_eq!(*n.lock().unwrap(), 2);
    });
    assert!(
        report.executions >= 2,
        "two racing increments must yield at least two schedules, got {}",
        report.executions
    );
    assert_eq!(report.deadlocks, 0);
}

#[test]
fn abba_lock_order_deadlocks() {
    let report = check_config(
        Config {
            fail_on_deadlock: false,
            ..Config::default()
        },
        || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            let _gb = b.lock().unwrap();
            let _ga = a.lock().unwrap();
            drop(_ga);
            drop(_gb);
            t.join();
        },
    );
    assert!(
        report.deadlocks > 0,
        "ABBA ordering must deadlock in some schedule"
    );
}

#[test]
fn check_and_wait_without_lock_loses_wakeup() {
    // Broken protocol: the waiter checks the flag, *releases the lock*,
    // then re-locks and waits. If the signaler runs in the gap, the
    // notify is lost and the waiter parks forever. The checker must find
    // that schedule as a deadlock.
    let report = check_config(
        Config {
            fail_on_deadlock: false,
            ..Config::default()
        },
        || {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s2 = Arc::clone(&state);
            let t = spawn(move || {
                let (flag, cv) = &*s2;
                let mut g = flag.lock().unwrap();
                *g = true;
                cv.notify_one();
                drop(g);
            });
            let (flag, cv) = &*state;
            let ready = *flag.lock().unwrap(); // check...
            if !ready {
                let g = flag.lock().unwrap(); // ...then re-lock: race window
                let _g = cv.wait(g).unwrap();
            }
            t.join();
        },
    );
    assert!(
        report.deadlocks > 0,
        "the check-then-wait race must lose a wakeup in some schedule"
    );
}

#[test]
fn correct_wait_loop_never_hangs() {
    // The fixed protocol: check and wait under one continuous critical
    // section, with a timed wait re-checked in a loop. No interleaving
    // deadlocks or times out incorrectly.
    let report = check(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = spawn(move || {
            let (flag, cv) = &*s2;
            *flag.lock().unwrap() = true;
            cv.notify_one();
        });
        let (flag, cv) = &*state;
        let mut g = flag.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        drop(g);
        t.join();
    });
    assert_eq!(report.deadlocks, 0);
    assert!(report.executions >= 2);
}

#[test]
fn timed_wait_explores_both_branches() {
    // A deadline-bounded wait racing a signaler: some schedules are
    // notified, some expire. Like the vendored channel's `recv_timeout`,
    // the loop recomputes the *remaining* time from an absolute
    // deadline, so once the virtual timeout fires it cannot re-arm —
    // every schedule terminates, notified or not.
    use mssg_modelcheck::shim::Instant;
    let report = check(|| {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&state);
        let t = spawn(move || {
            let (flag, cv) = &*s2;
            *flag.lock().unwrap() = true;
            cv.notify_one();
        });
        let (flag, cv) = &*state;
        let deadline = Instant::now() + Duration::from_millis(10);
        let mut g = flag.lock().unwrap();
        while !*g {
            let Some(left) = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
            else {
                break; // gave up: the signaler may not have run yet
            };
            let (g2, _res) = cv.wait_timeout(g, left).unwrap();
            g = g2;
        }
        drop(g);
        t.join();
    });
    assert_eq!(report.deadlocks, 0);
    assert!(report.executions >= 2);
}

#[test]
#[should_panic(expected = "counterexample")]
fn assertion_failures_are_reported_with_a_schedule() {
    check(|| {
        let n = Arc::new(Mutex::new(0u32));
        let n2 = Arc::clone(&n);
        let t = spawn(move || *n2.lock().unwrap() += 1);
        // Buggy: reads before the join, so some schedule sees 0.
        let seen = *n.lock().unwrap();
        t.join();
        assert_eq!(seen, 1, "read raced the increment");
    });
}

/// Regression (virtual-clock timeout edge): a `notify` that lands after a
/// waiter's deadline has already passed on the virtual clock is a real OS
/// race — the waiter may report *either* "notified" or "timed out". Both
/// outcomes must be explored, and the scheduler counts the resolved-as-
/// timeout branch in `Report::notified_expiries`.
#[test]
fn notify_on_expired_deadline_explores_both_outcomes() {
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    let outcomes = Arc::new(StdMutex::new(HashSet::new()));
    let seen = Arc::clone(&outcomes);
    let report = check(move || {
        let pair = Arc::new((Mutex::new(()), Condvar::new()));
        let aux = Arc::new((Mutex::new(()), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let seen2 = Arc::clone(&seen);
        let t = spawn(move || {
            let g = p2.0.lock().unwrap();
            let (_g, r) = p2.1.wait_timeout(g, Duration::from_nanos(10)).unwrap();
            seen2.lock().unwrap().insert(r.timed_out());
        });
        {
            // Advance the virtual clock past T1's deadline: nobody ever
            // notifies `aux`, so this wait can only expire (clock := 50),
            // making the notify below land on an already-expired waiter
            // in the schedules where T1 parked first.
            let g = aux.0.lock().unwrap();
            let (_g, r) = aux.1.wait_timeout(g, Duration::from_nanos(50)).unwrap();
            assert!(r.timed_out());
        }
        pair.1.notify_one();
        t.join();
    });
    let seen = outcomes.lock().unwrap();
    assert!(
        seen.contains(&true) && seen.contains(&false),
        "both wake reasons must be observed across schedules: {seen:?}"
    );
    assert!(
        report.notified_expiries > 0,
        "the notify-after-deadline branch must be explored: {report:?}"
    );
}
