//! Walker alias method for O(1) sampling from a discrete distribution.
//!
//! The Chung–Lu generator draws both endpoints of every edge from the
//! vertex-weight distribution; with hundreds of millions of edges that draw
//! must be constant-time. The alias method precomputes, for each of `n`
//! equal-probability columns, a threshold and an alias index; a sample is
//! one uniform draw plus one comparison.

use crate::rng::Xoshiro256;

/// A prepared alias table over indices `0..n`.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table from non-negative weights. Weights need not be
    /// normalised.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, sums to zero, or has more than `u32::MAX` entries.
    pub fn new(weights: &[f64]) -> AliasTable {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(weights.len() <= u32::MAX as usize, "too many weights");
        let total: f64 = weights.iter().sum();
        assert!(
            total.is_finite() && total > 0.0,
            "weights must be finite, non-negative, and not all zero"
        );
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights
            .iter()
            .map(|&w| {
                assert!(
                    w >= 0.0 && w.is_finite(),
                    "negative or non-finite weight {w}"
                );
                w * scale
            })
            .collect();
        let mut alias = vec![0u32; n];
        // Partition columns into under- and over-full.
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // Donate the overfull column's mass to fill column s.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: any column still queued is exactly full.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` if the table has no outcomes (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index according to the weight distribution.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let col = rng.next_below(self.prob.len() as u64) as usize;
        if rng.next_f64() < self.prob[col] {
            col
        } else {
            self.alias[col] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[3.0]);
        let mut r = Xoshiro256::seeded(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut r), 0);
        }
    }

    #[test]
    fn zero_weight_never_sampled() {
        let t = AliasTable::new(&[1.0, 0.0, 1.0]);
        let mut r = Xoshiro256::seeded(2);
        for _ in 0..10_000 {
            assert_ne!(t.sample(&mut r), 1);
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights);
        let mut r = Xoshiro256::seeded(3);
        let mut counts = [0u64; 4];
        let n = 400_000;
        for _ in 0..n {
            counts[t.sample(&mut r)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expected = n as f64 * w / total;
            let got = counts[i] as f64;
            assert!(
                (got - expected).abs() < expected * 0.03,
                "outcome {i}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn heavily_skewed_distribution() {
        // Power-law-ish: one huge hub plus a tail, the regime the graph
        // generator uses the table in.
        let mut weights = vec![1000.0];
        weights.extend(std::iter::repeat_n(1.0, 999));
        let t = AliasTable::new(&weights);
        let mut r = Xoshiro256::seeded(4);
        let n = 200_000;
        let hub_hits = (0..n).filter(|_| t.sample(&mut r) == 0).count();
        let expected = n as f64 * 1000.0 / 1999.0;
        assert!(
            (hub_hits as f64 - expected).abs() < expected * 0.05,
            "hub sampled {hub_hits} times, expected ~{expected}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn empty_rejected() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all zero")]
    fn all_zero_rejected() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "negative or non-finite")]
    fn negative_rejected() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    fn uniform_weights_cover_all() {
        let t = AliasTable::new(&[1.0; 64]);
        let mut r = Xoshiro256::seeded(5);
        let mut seen = [false; 64];
        for _ in 0..20_000 {
            seen[t.sample(&mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
