//! Workload presets calibrated to the thesis' Table 5.1.
//!
//! | Graph    | Vertices    | Und. edges  | Min | Max       | Avg   |
//! |----------|-------------|-------------|-----|-----------|-------|
//! | PubMed-S | 3,751,921   | 27,841,339  | 1   | 722,692   | 14.84 |
//! | PubMed-L | 26,676,177  | 259,815,339 | 1   | 6,114,328 | 19.48 |
//! | Syn-2B   | 100,000,000 | 999,999,820 | 1   | 42,964    | 20.00 |
//!
//! The real PubMed graphs are unavailable, so each preset is a Chung–Lu
//! configuration whose vertex count, edge count, and *expected* hub degree
//! scale down from the published numbers by a common factor. Scaling keeps
//! the hub-to-graph-size ratio — PubMed-S's biggest hub touches ~19 % of
//! all vertices, Syn-2B's only ~0.04 % — which is what differentiates the
//! experiments' behaviour across the three graphs.

use crate::generate::{solve_exponent, ChungLu, ChungLuConfig};
use mssg_types::Edge;

/// One of the paper's three experimental graphs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum GraphPreset {
    /// The small PubMed extraction.
    PubMedS,
    /// The large PubMed extraction.
    PubMedL,
    /// The 2-billion-endpoint synthetic graph.
    Syn2B,
}

impl GraphPreset {
    /// Published full-size statistics: `(vertices, edges, max_degree)`.
    pub fn paper_size(self) -> (u64, u64, u64) {
        match self {
            GraphPreset::PubMedS => (3_751_921, 27_841_339, 722_692),
            GraphPreset::PubMedL => (26_676_177, 259_815_339, 6_114_328),
            GraphPreset::Syn2B => (100_000_000, 999_999_820, 42_964),
        }
    }

    /// Published average degree, for reporting alongside measurements.
    pub fn paper_avg_degree(self) -> f64 {
        match self {
            GraphPreset::PubMedS => 14.84,
            GraphPreset::PubMedL => 19.48,
            GraphPreset::Syn2B => 20.00,
        }
    }

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            GraphPreset::PubMedS => "PubMed-S",
            GraphPreset::PubMedL => "PubMed-L",
            GraphPreset::Syn2B => "Syn-2B",
        }
    }

    /// Builds a workload scaled down by `1/scale_div` (1 = full size).
    pub fn workload(self, scale_div: u64, seed: u64) -> Workload {
        assert!(scale_div >= 1, "scale divisor must be at least 1");
        let (v, e, max_d) = self.paper_size();
        let vertices = (v / scale_div).max(64);
        let edges = (e / scale_div).max(vertices);
        // Keep the hub fraction: hub touches the same share of vertices.
        let hub_fraction = max_d as f64 / v as f64;
        let target_max = (hub_fraction * vertices as f64).max(8.0);
        let exponent = solve_exponent(vertices, edges, target_max);
        Workload {
            preset: self,
            config: ChungLuConfig {
                vertices,
                edges,
                exponent,
                seed,
            },
        }
    }
}

/// A concrete, scaled workload: preset identity plus generator parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// Which paper graph this stands in for.
    pub preset: GraphPreset,
    /// The calibrated generator configuration.
    pub config: ChungLuConfig,
}

impl Workload {
    /// Number of vertices in the scaled graph.
    pub fn vertices(&self) -> u64 {
        self.config.vertices
    }

    /// Number of undirected edges the stream will carry.
    pub fn edges(&self) -> u64 {
        self.config.edges
    }

    /// Instantiates the edge stream.
    pub fn edge_stream(&self) -> ChungLu {
        ChungLu::new(&self.config)
    }

    /// Materialises all edges (for in-memory experiment phases).
    pub fn collect_edges(&self) -> Vec<Edge> {
        self.edge_stream().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn presets_have_paper_sizes() {
        let (v, e, _) = GraphPreset::PubMedS.paper_size();
        assert_eq!(v, 3_751_921);
        assert_eq!(e, 27_841_339);
        assert!((GraphPreset::Syn2B.paper_avg_degree() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_workload_preserves_avg_degree() {
        for preset in [
            GraphPreset::PubMedS,
            GraphPreset::PubMedL,
            GraphPreset::Syn2B,
        ] {
            let w = preset.workload(1024, 1);
            let got = w.config.avg_degree();
            let want = preset.paper_avg_degree();
            assert!(
                (got - want).abs() < want * 0.15,
                "{}: avg degree {got} vs paper {want}",
                preset.name()
            );
        }
    }

    #[test]
    fn scaled_workload_preserves_hub_fraction() {
        let w = GraphPreset::PubMedS.workload(256, 2);
        let (v_full, _, max_full) = GraphPreset::PubMedS.paper_size();
        let paper_fraction = max_full as f64 / v_full as f64;
        let expected_hub = w.config.expected_max_degree();
        let got_fraction = expected_hub / w.vertices() as f64;
        assert!(
            (got_fraction - paper_fraction).abs() < paper_fraction * 0.2,
            "hub fraction {got_fraction} vs paper {paper_fraction}"
        );
    }

    #[test]
    fn pubmed_hubbier_than_syn() {
        // PubMed's hub fraction (~19 %) dwarfs Syn-2B's (~0.04 %); scaled
        // workloads must keep that ordering — it drives Figures 5.8/5.9.
        let pm = GraphPreset::PubMedS.workload(512, 3);
        let syn = GraphPreset::Syn2B.workload(8192, 3);
        let pm_frac = pm.config.expected_max_degree() / pm.vertices() as f64;
        let syn_frac = syn.config.expected_max_degree() / syn.vertices() as f64;
        assert!(
            pm_frac > 10.0 * syn_frac,
            "PubMed-S hub fraction {pm_frac} not ≫ Syn-2B {syn_frac}"
        );
    }

    #[test]
    fn workload_stream_matches_stats() {
        let w = GraphPreset::PubMedS.workload(2048, 4);
        let stats = degree_stats(w.edge_stream(), w.vertices());
        assert_eq!(stats.und_edges, w.edges());
        assert!(stats.min_degree >= 1);
        assert!(
            (stats.avg_degree - w.config.avg_degree()).abs() < w.config.avg_degree() * 0.5,
            "avg {} vs configured {}",
            stats.avg_degree,
            w.config.avg_degree()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = GraphPreset::Syn2B.workload(16384, 5).collect_edges();
        let b = GraphPreset::Syn2B.workload(16384, 5).collect_edges();
        assert_eq!(a, b);
        let c = GraphPreset::Syn2B.workload(16384, 6).collect_edges();
        assert_ne!(a, c);
    }

    #[test]
    fn scale_one_keeps_paper_counts() {
        // Full-size workloads must report the paper's exact V and E without
        // actually generating anything.
        let w = GraphPreset::PubMedL.workload(1, 0);
        assert_eq!(w.vertices(), 26_676_177);
        assert_eq!(w.edges(), 259_815_339);
    }
}
