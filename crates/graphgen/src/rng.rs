//! Seeded pseudo-random number generation.
//!
//! Experiments must be bit-reproducible from a seed and independent of
//! external crate version churn, so the workspace carries its own small
//! generator: **xoshiro256++** (Blackman & Vigna) seeded through
//! **SplitMix64**, the combination the reference implementation recommends.
//! Parallel workers fork statistically independent streams with
//! [`Xoshiro256::fork`], which applies the generator's `jump()` function
//! (equivalent to 2^128 sequential draws).

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The xoshiro256++ generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seeded(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift method
    /// with rejection, avoiding modulo bias.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Forks a statistically independent generator by copying the state and
    /// jumping the child ahead by 2^128 draws. The parent stream is
    /// unaffected.
    pub fn fork(&self) -> Xoshiro256 {
        let mut child = self.clone();
        child.jump();
        child
    }

    /// The xoshiro256++ jump function: advances by 2^128 steps.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180ec6d33cfd0aba,
            0xd5a61266f0c9392c,
            0xa9582618e03fc9aa,
            0x39abdc4529b1661c,
        ];
        let mut s = [0u64; 4];
        for j in JUMP {
            for b in 0..64 {
                if (j & (1u64 << b)) != 0 {
                    s[0] ^= self.s[0];
                    s[1] ^= self.s[1];
                    s[2] ^= self.s[2];
                    s[3] ^= self.s[3];
                }
                self.next_u64();
            }
        }
        self.s = s;
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "cannot choose from an empty slice");
        &items[self.next_below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Xoshiro256::seeded(42);
        let mut b = Xoshiro256::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seeded(1);
        let mut b = Xoshiro256::seeded(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Xoshiro256::seeded(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_roughly_uniform() {
        let mut r = Xoshiro256::seeded(11);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.next_below(10) as usize] += 1;
        }
        for &c in &counts {
            let expected = n as f64 / 10.0;
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn next_range_inclusive() {
        let mut r = Xoshiro256::seeded(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.next_range(5, 8);
            assert!((5..=8).contains(&v));
            seen_lo |= v == 5;
            seen_hi |= v == 8;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256::seeded(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn fork_streams_are_disjoint() {
        let parent = Xoshiro256::seeded(5);
        let mut a = parent.clone();
        let mut b = parent.fork();
        // Forked stream must not replay the parent's sequence.
        let collisions = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn fork_does_not_disturb_parent() {
        let mut a = Xoshiro256::seeded(5);
        let mut b = Xoshiro256::seeded(5);
        let _ = b.fork();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seeded(21);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn known_reference_vector() {
        // Reference: seeding xoshiro256++ with SplitMix64(0) must reproduce
        // the same sequence everywhere (pin against accidental edits).
        let mut r = Xoshiro256::seeded(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Xoshiro256::seeded(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        assert!(first.windows(2).any(|w| w[0] != w[1]));
    }
}
