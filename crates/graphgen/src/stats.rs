//! Degree statistics — the columns of the thesis' Table 5.1, plus a
//! power-law exponent fit used to verify that generated graphs are in fact
//! scale-free.

use mssg_types::Edge;

/// Statistics over an undirected edge stream, matching Table 5.1.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeStats {
    /// Vertices with at least one incident edge.
    pub vertices: u64,
    /// Number of undirected edges consumed (parallel edges counted as
    /// given, exactly as an ingestion stream would deliver them).
    pub und_edges: u64,
    /// Minimum degree among non-isolated vertices.
    pub min_degree: u64,
    /// Maximum degree.
    pub max_degree: u64,
    /// Average degree among non-isolated vertices (`2E / V`).
    pub avg_degree: f64,
}

/// Computes [`DegreeStats`] over an edge stream. `n` bounds the vertex id
/// space (ids must be `< n`).
pub fn degree_stats(edges: impl Iterator<Item = Edge>, n: u64) -> DegreeStats {
    let mut deg = vec![0u64; n as usize];
    let mut und_edges = 0u64;
    for e in edges {
        deg[e.src.index()] += 1;
        deg[e.dst.index()] += 1;
        und_edges += 1;
    }
    let mut vertices = 0u64;
    let mut min_degree = u64::MAX;
    let mut max_degree = 0u64;
    let mut total = 0u64;
    for &d in &deg {
        if d > 0 {
            vertices += 1;
            min_degree = min_degree.min(d);
            max_degree = max_degree.max(d);
            total += d;
        }
    }
    if vertices == 0 {
        min_degree = 0;
    }
    DegreeStats {
        vertices,
        und_edges,
        min_degree,
        max_degree,
        avg_degree: if vertices == 0 {
            0.0
        } else {
            total as f64 / vertices as f64
        },
    }
}

/// A degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(edges: impl Iterator<Item = Edge>, n: u64) -> Vec<u64> {
    let mut deg = vec![0u64; n as usize];
    for e in edges {
        deg[e.src.index()] += 1;
        deg[e.dst.index()] += 1;
    }
    let max = deg.iter().copied().max().unwrap_or(0) as usize;
    let mut hist = vec![0u64; max + 1];
    for &d in &deg {
        hist[d as usize] += 1;
    }
    hist
}

/// Fits `count(degree) ∝ degree^{-β}` by least squares on the log-log
/// histogram (degrees ≥ 1 with non-zero counts). Returns the estimated `β`,
/// or `None` if fewer than three histogram points exist.
///
/// Scale-free graphs give `β` roughly in `[1.5, 3.5]`; ER graphs produce
/// poor fits with much steeper tails, which tests exploit.
pub fn powerlaw_exponent(hist: &[u64]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = hist
        .iter()
        .enumerate()
        .skip(1)
        .filter(|&(_, &c)| c > 0)
        .map(|(d, &c)| ((d as f64).ln(), (c as f64).ln()))
        .collect();
    if pts.len() < 3 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let slope = (n * sxy - sx * sy) / denom;
    Some(-slope)
}

impl std::fmt::Display for DegreeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "V={} E={} deg[min={} max={} avg={:.2}]",
            self.vertices, self.und_edges, self.min_degree, self.max_degree, self.avg_degree
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u64) -> Vec<Edge> {
        (0..n - 1).map(|i| Edge::of(i, i + 1)).collect()
    }

    #[test]
    fn path_stats() {
        let s = degree_stats(path_graph(5).into_iter(), 5);
        assert_eq!(s.vertices, 5);
        assert_eq!(s.und_edges, 4);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 8.0 / 5.0).abs() < 1e-9);
    }

    #[test]
    fn star_stats() {
        let edges: Vec<Edge> = (1..=6).map(|i| Edge::of(0, i)).collect();
        let s = degree_stats(edges.into_iter(), 7);
        assert_eq!(s.max_degree, 6);
        assert_eq!(s.min_degree, 1);
        assert_eq!(s.vertices, 7);
    }

    #[test]
    fn isolated_vertices_excluded() {
        let s = degree_stats(vec![Edge::of(0, 1)].into_iter(), 100);
        assert_eq!(s.vertices, 2);
        assert_eq!(s.min_degree, 1);
    }

    #[test]
    fn empty_stream() {
        let s = degree_stats(std::iter::empty(), 10);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.und_edges, 0);
        assert_eq!(s.min_degree, 0);
        assert_eq!(s.avg_degree, 0.0);
    }

    #[test]
    fn parallel_edges_counted() {
        let edges = vec![Edge::of(0, 1), Edge::of(0, 1)];
        let s = degree_stats(edges.into_iter(), 2);
        assert_eq!(s.und_edges, 2);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn histogram_shape() {
        let h = degree_histogram(path_graph(4).into_iter(), 4);
        // Degrees: 1,2,2,1 → hist[1]=2, hist[2]=2.
        assert_eq!(h[1], 2);
        assert_eq!(h[2], 2);
    }

    #[test]
    fn powerlaw_fit_on_exact_powerlaw() {
        // Build a histogram that is exactly count(d) = 1000 * d^-2.
        let hist: Vec<u64> = (0..50)
            .map(|d| {
                if d == 0 {
                    0
                } else {
                    (1000.0 / (d * d) as f64) as u64
                }
            })
            .collect();
        let beta = powerlaw_exponent(&hist).unwrap();
        assert!((beta - 2.0).abs() < 0.2, "fit {beta}");
    }

    #[test]
    fn powerlaw_fit_needs_points() {
        assert_eq!(powerlaw_exponent(&[0, 5]), None);
        assert_eq!(powerlaw_exponent(&[]), None);
    }

    #[test]
    fn generated_scale_free_fits_powerlaw() {
        use crate::generate::{ChungLu, ChungLuConfig};
        let cfg = ChungLuConfig {
            vertices: 5000,
            edges: 50_000,
            exponent: 0.75,
            seed: 2,
        };
        let edges: Vec<Edge> = ChungLu::new(&cfg).collect();
        let hist = degree_histogram(edges.into_iter(), 5000);
        let beta = powerlaw_exponent(&hist).unwrap();
        assert!(
            beta > 0.8 && beta < 4.0,
            "implausible power-law exponent {beta}"
        );
    }
}
