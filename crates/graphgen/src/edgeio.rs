//! Edge-list file formats.
//!
//! The thesis' ingestion experiments stream ASCII edge lists in and note
//! that the back-end output format is binary ("the output format is more
//! efficient than the ingestion node format … the output format is binary,
//! while the input data is ASCII", Figure 5.5 discussion). Both formats are
//! implemented so the harness can reproduce that asymmetry:
//!
//! - **ASCII**: one `src dst\n` pair per line, `#`-prefixed comment lines
//!   ignored.
//! - **Binary**: 16-byte little-endian records (see [`Edge::to_bytes`]).

use mssg_types::{Edge, Gid, GraphStorageError, Result};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes an edge stream as ASCII, returning the number of edges written.
pub fn write_ascii(path: &Path, edges: impl Iterator<Item = Edge>) -> Result<u64> {
    let mut w = BufWriter::new(File::create(path)?);
    let mut count = 0u64;
    for e in edges {
        writeln!(w, "{} {}", e.src.raw(), e.dst.raw())?;
        count += 1;
    }
    w.flush()?;
    Ok(count)
}

/// Streaming reader for ASCII edge lists.
pub struct AsciiEdgeReader<R: BufRead> {
    lines: std::io::Lines<R>,
    line_no: u64,
}

impl AsciiEdgeReader<BufReader<File>> {
    /// Opens an ASCII edge-list file.
    pub fn open(path: &Path) -> Result<Self> {
        Ok(AsciiEdgeReader {
            lines: BufReader::new(File::open(path)?).lines(),
            line_no: 0,
        })
    }
}

impl<R: BufRead> AsciiEdgeReader<R> {
    /// Wraps any buffered reader.
    pub fn new(reader: R) -> Self {
        AsciiEdgeReader {
            lines: reader.lines(),
            line_no: 0,
        }
    }

    fn parse(&self, line: &str) -> Result<Option<Edge>> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(None);
        }
        let mut it = line.split_ascii_whitespace();
        let bad = |what: &str| {
            GraphStorageError::corrupt(format!(
                "ASCII edge list line {}: {what}: {line:?}",
                self.line_no
            ))
        };
        let src: u64 = it
            .next()
            .ok_or_else(|| bad("missing src"))?
            .parse()
            .map_err(|_| bad("bad src"))?;
        let dst: u64 = it
            .next()
            .ok_or_else(|| bad("missing dst"))?
            .parse()
            .map_err(|_| bad("bad dst"))?;
        if it.next().is_some() {
            return Err(bad("trailing tokens"));
        }
        let src = Gid::try_new(src).ok_or_else(|| bad("src overflows 61 bits"))?;
        let dst = Gid::try_new(dst).ok_or_else(|| bad("dst overflows 61 bits"))?;
        Ok(Some(Edge::new(src, dst)))
    }
}

impl<R: BufRead> Iterator for AsciiEdgeReader<R> {
    type Item = Result<Edge>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => return Some(Err(e.into())),
            };
            self.line_no += 1;
            match self.parse(&line) {
                Ok(Some(edge)) => return Some(Ok(edge)),
                Ok(None) => continue,
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// Writes an edge stream as 16-byte binary records.
pub fn write_binary(path: &Path, edges: impl Iterator<Item = Edge>) -> Result<u64> {
    let mut w = BufWriter::new(File::create(path)?);
    let mut count = 0u64;
    for e in edges {
        w.write_all(&e.to_bytes())?;
        count += 1;
    }
    w.flush()?;
    Ok(count)
}

/// Streaming reader for binary edge lists.
pub struct BinaryEdgeReader<R: Read> {
    reader: R,
}

impl BinaryEdgeReader<BufReader<File>> {
    /// Opens a binary edge-list file.
    pub fn open(path: &Path) -> Result<Self> {
        Ok(BinaryEdgeReader {
            reader: BufReader::new(File::open(path)?),
        })
    }
}

impl<R: Read> BinaryEdgeReader<R> {
    /// Wraps any reader.
    pub fn new(reader: R) -> Self {
        BinaryEdgeReader { reader }
    }
}

impl<R: Read> Iterator for BinaryEdgeReader<R> {
    type Item = Result<Edge>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut buf = [0u8; 16];
        let mut filled = 0;
        while filled < 16 {
            match self.reader.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 => return None,
                Ok(0) => {
                    return Some(Err(GraphStorageError::corrupt(
                        "binary edge file truncated mid-record",
                    )))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Some(Err(e.into())),
            }
        }
        Some(Ok(Edge::from_bytes(&buf)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("graphgen-io-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d.join(tag)
    }

    fn sample_edges() -> Vec<Edge> {
        vec![Edge::of(0, 1), Edge::of(1, 2), Edge::of(1_000_000, 7)]
    }

    #[test]
    fn ascii_roundtrip() {
        let p = tmpfile("a.txt");
        let edges = sample_edges();
        let n = write_ascii(&p, edges.iter().copied()).unwrap();
        assert_eq!(n, 3);
        let back: Vec<Edge> = AsciiEdgeReader::open(&p)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(back, edges);
    }

    #[test]
    fn binary_roundtrip() {
        let p = tmpfile("b.bin");
        let edges = sample_edges();
        write_binary(&p, edges.iter().copied()).unwrap();
        let back: Vec<Edge> = BinaryEdgeReader::open(&p)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(back, edges);
        // Binary is exactly 16 bytes per edge — the efficiency the thesis
        // credits StreamDB's output format with.
        assert_eq!(std::fs::metadata(&p).unwrap().len(), 48);
    }

    #[test]
    fn ascii_skips_comments_and_blanks() {
        let text = "# comment\n\n0 1\n  # indented comment\n2 3\n";
        let edges: Vec<Edge> = AsciiEdgeReader::new(Cursor::new(text))
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(edges, vec![Edge::of(0, 1), Edge::of(2, 3)]);
    }

    #[test]
    fn ascii_rejects_garbage() {
        let cases = ["0\n", "a b\n", "1 2 3\n", "99999999999999999999 1\n"];
        for c in cases {
            let r: Result<Vec<Edge>> = AsciiEdgeReader::new(Cursor::new(c)).collect();
            assert!(r.is_err(), "{c:?} should fail");
        }
    }

    #[test]
    fn ascii_error_mentions_line_number() {
        let text = "0 1\nbroken\n";
        let err = AsciiEdgeReader::new(Cursor::new(text))
            .collect::<Result<Vec<_>>>()
            .unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn binary_detects_truncation() {
        let mut bytes = Edge::of(1, 2).to_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 7]); // half a record
        let r: Result<Vec<Edge>> = BinaryEdgeReader::new(Cursor::new(bytes)).collect();
        assert!(r.is_err());
    }

    #[test]
    fn empty_files() {
        let p = tmpfile("empty.txt");
        write_ascii(&p, std::iter::empty()).unwrap();
        assert_eq!(AsciiEdgeReader::open(&p).unwrap().count(), 0);
        let q = tmpfile("empty.bin");
        write_binary(&q, std::iter::empty()).unwrap();
        assert_eq!(BinaryEdgeReader::open(&q).unwrap().count(), 0);
    }

    #[test]
    fn ascii_larger_than_binary() {
        // Sanity check of the format-size asymmetry the thesis mentions.
        let edges: Vec<Edge> = (0..1000)
            .map(|i| Edge::of(i + 1_000_000_000, i + 2_000_000_000))
            .collect();
        let pa = tmpfile("size.txt");
        let pb = tmpfile("size.bin");
        write_ascii(&pa, edges.iter().copied()).unwrap();
        write_binary(&pb, edges.iter().copied()).unwrap();
        assert!(std::fs::metadata(&pa).unwrap().len() > std::fs::metadata(&pb).unwrap().len());
    }
}
