//! External merge sort for edge streams.
//!
//! "The field of external-memory algorithms began with techniques for
//! sorting and permuting records which do not fit into the main memory of
//! a single machine" (thesis chapter 2, citing Floyd and the TPIE line of
//! work). This module provides that classic substrate for edge streams:
//! runs of a bounded in-memory size are sorted and spilled to binary run
//! files, then merged with a k-way heap.
//!
//! Its practical use here: **bulk-loading grDB**. A stream sorted by
//! source vertex turns grDB's random level-0 sub-block writes into a
//! sequential sweep — the ingestion-side analogue of the thesis' proposal
//! to sort disk accesses by file offset.

use crate::edgeio::{write_binary, BinaryEdgeReader};
use mssg_types::{Edge, Result};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

/// Sort key: by source, then destination — the order that groups
/// adjacency lists together.
fn key(e: &Edge) -> (u64, u64) {
    (e.src.raw(), e.dst.raw())
}

/// Externally sorts an edge stream using at most `mem_edges` edges of
/// memory at a time (plus merge buffers). Run files are created under
/// `scratch` and deleted when the returned iterator is dropped.
pub fn external_sort_edges(
    input: impl Iterator<Item = Edge>,
    scratch: &Path,
    mem_edges: usize,
) -> Result<SortedEdges> {
    assert!(mem_edges > 0, "memory budget must hold at least one edge");
    std::fs::create_dir_all(scratch)?;
    // Phase 1: sorted runs.
    let mut run_paths: Vec<PathBuf> = Vec::new();
    let mut buf: Vec<Edge> = Vec::with_capacity(mem_edges.min(1 << 20));
    let mut input = input.peekable();
    while input.peek().is_some() {
        buf.clear();
        buf.extend(input.by_ref().take(mem_edges));
        buf.sort_unstable_by_key(key);
        let path = scratch.join(format!("run-{:06}.bin", run_paths.len()));
        write_binary(&path, buf.iter().copied())?;
        run_paths.push(path);
    }
    // Phase 2: open a reader per run and prime the merge heap.
    let mut readers = Vec::with_capacity(run_paths.len());
    let mut heap = BinaryHeap::new();
    for (i, path) in run_paths.iter().enumerate() {
        let mut r = BinaryEdgeReader::open(path)?;
        if let Some(first) = r.next().transpose()? {
            heap.push(Reverse((key(&first), i, first)));
        }
        readers.push(r);
    }
    Ok(SortedEdges {
        readers,
        heap,
        run_paths,
    })
}

/// Heap entry for the k-way merge: sort key, run index, edge.
type MergeEntry = Reverse<((u64, u64), usize, Edge)>;

/// The merged, globally sorted edge stream.
pub struct SortedEdges {
    readers: Vec<BinaryEdgeReader<BufReader<File>>>,
    heap: BinaryHeap<MergeEntry>,
    run_paths: Vec<PathBuf>,
}

impl SortedEdges {
    /// Number of run files the sort produced.
    pub fn runs(&self) -> usize {
        self.run_paths.len()
    }
}

impl Iterator for SortedEdges {
    type Item = Result<Edge>;

    fn next(&mut self) -> Option<Self::Item> {
        let Reverse((_, run, edge)) = self.heap.pop()?;
        match self.readers[run].next() {
            Some(Ok(next)) => self.heap.push(Reverse((key(&next), run, next))),
            Some(Err(e)) => return Some(Err(e)),
            None => {}
        }
        Some(Ok(edge))
    }
}

impl Drop for SortedEdges {
    fn drop(&mut self) {
        for p in &self.run_paths {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn scratch(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("graphgen-extsort-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn random_edges(n: usize, seed: u64) -> Vec<Edge> {
        let mut rng = Xoshiro256::seeded(seed);
        (0..n)
            .map(|_| Edge::of(rng.next_below(1000), rng.next_below(1000)))
            .collect()
    }

    #[test]
    fn sorts_correctly_with_tiny_memory() {
        let edges = random_edges(5000, 1);
        let sorted: Vec<Edge> = external_sort_edges(
            edges.iter().copied(),
            &scratch("tiny"),
            64, // 79 runs
        )
        .unwrap()
        .map(|r| r.unwrap())
        .collect();
        assert_eq!(sorted.len(), edges.len());
        let mut expected = edges;
        expected.sort_unstable_by_key(key);
        assert_eq!(sorted, expected);
    }

    #[test]
    fn run_count_matches_budget() {
        let edges = random_edges(1000, 2);
        let s = external_sort_edges(edges.into_iter(), &scratch("runs"), 100).unwrap();
        assert_eq!(s.runs(), 10);
        let s2 = external_sort_edges(
            random_edges(1000, 2).into_iter(),
            &scratch("runs-one"),
            100_000,
        )
        .unwrap();
        assert_eq!(s2.runs(), 1);
    }

    #[test]
    fn empty_stream() {
        let s = external_sort_edges(std::iter::empty(), &scratch("empty"), 10).unwrap();
        assert_eq!(s.runs(), 0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn run_files_cleaned_up_on_drop() {
        let dir = scratch("cleanup");
        {
            let s = external_sort_edges(random_edges(500, 3).into_iter(), &dir, 50).unwrap();
            assert!(s.runs() > 1);
            // Drop half-consumed.
            let _partial: Vec<_> = s.take(100).collect();
        }
        let leftovers = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(leftovers, 0, "run files must be deleted on drop");
    }

    #[test]
    fn duplicates_and_stability_of_multiset() {
        let mut edges = random_edges(200, 4);
        edges.extend(edges.clone()); // heavy duplication
        let sorted: Vec<Edge> = external_sort_edges(edges.iter().copied(), &scratch("dups"), 37)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let mut expected = edges;
        expected.sort_unstable_by_key(key);
        assert_eq!(sorted, expected);
    }

    #[test]
    fn grouped_by_source_after_sort() {
        // The property bulk loading relies on: all entries of one source
        // are contiguous.
        let edges = random_edges(2000, 5);
        let sorted: Vec<Edge> = external_sort_edges(edges.into_iter(), &scratch("grouped"), 128)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let mut seen_last: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for (i, e) in sorted.iter().enumerate() {
            if let Some(&last) = seen_last.get(&e.src.raw()) {
                assert_eq!(last, i - 1, "source {} fragmented at {i}", e.src);
            }
            seen_last.insert(e.src.raw(), i);
        }
    }
}
