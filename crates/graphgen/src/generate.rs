//! Scale-free edge-stream generators.
//!
//! Generators are plain `Iterator<Item = Edge>` so the ingestion service can
//! consume them exactly like an external edge stream. All are seeded and
//! deterministic.
//!
//! Two scale-free constructions are provided:
//!
//! - [`ChungLu`]: each edge draws both endpoints from a fixed power-law
//!   weight distribution; expected vertex degrees follow the weights. This
//!   is the workhorse because its parameters can be *calibrated* to the
//!   published Table 5.1 statistics (see [`solve_exponent`]).
//! - [`BarabasiAlbert`]: classic preferential attachment, the construction
//!   the scale-free literature the thesis cites (Barabási & Albert 1999)
//!   introduced.
//!
//! An [`ErdosRenyi`] G(n, m) generator is included as the *non*-scale-free
//! baseline: the thesis' chapter 2 motivates scale-free modelling by how
//! badly ER fits real graphs, and tests use it to check that the degree
//! statistics machinery distinguishes the two.

use crate::alias::AliasTable;
use crate::rng::Xoshiro256;
use mssg_types::{Edge, Gid};

/// Configuration for the Chung–Lu generator.
#[derive(Clone, Debug, PartialEq)]
pub struct ChungLuConfig {
    /// Number of vertices `n`; ids are `0..n`.
    pub vertices: u64,
    /// Number of undirected edges to emit.
    pub edges: u64,
    /// Power-law weight exponent `s` in `w_i ∝ (i+1)^{-s}`, `0 < s < 1`.
    /// Larger `s` concentrates degree into fewer, bigger hubs.
    pub exponent: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl ChungLuConfig {
    /// Expected degree of the biggest hub under this configuration:
    /// `2·edges · w_0 / Σw`.
    pub fn expected_max_degree(&self) -> f64 {
        let w = weight_sum(self.vertices, self.exponent);
        2.0 * self.edges as f64 / w
    }

    /// Average degree `2·edges / vertices`.
    pub fn avg_degree(&self) -> f64 {
        2.0 * self.edges as f64 / self.vertices as f64
    }
}

/// Sum of `(i+1)^{-s}` for `i` in `0..n`, computed exactly for small `n` and
/// by the Euler–Maclaurin leading terms for large `n`.
fn weight_sum(n: u64, s: f64) -> f64 {
    if n <= 100_000 {
        (0..n).map(|i| ((i + 1) as f64).powf(-s)).sum()
    } else {
        // ∫1^n x^-s dx + correction: accurate to well under 0.1 % here.
        let exact: f64 = (0..100_000u64).map(|i| ((i + 1) as f64).powf(-s)).sum();
        let tail = ((n as f64).powf(1.0 - s) - 100_000f64.powf(1.0 - s)) / (1.0 - s);
        exact + tail
    }
}

/// Solves for the Chung–Lu exponent `s` that makes the expected maximum
/// degree equal `target_max`, by bisection on the monotone map
/// `s ↦ expected_max_degree`.
///
/// Used to calibrate the PubMed-like presets to Table 5.1's max-degree
/// column. Returns a value clamped to `[0.05, 0.95]`.
pub fn solve_exponent(vertices: u64, edges: u64, target_max: f64) -> f64 {
    let hub = |s: f64| 2.0 * edges as f64 / weight_sum(vertices, s);
    let (mut lo, mut hi) = (0.05, 0.95);
    if hub(lo) >= target_max {
        return lo;
    }
    if hub(hi) <= target_max {
        return hi;
    }
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if hub(mid) < target_max {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Chung–Lu scale-free edge stream. See [`ChungLuConfig`].
///
/// Self-loops are resampled; parallel edges are allowed (real ingestion
/// streams contain duplicates too, and the storage engines must cope).
pub struct ChungLu {
    table: AliasTable,
    rng: Xoshiro256,
    remaining: u64,
}

impl ChungLu {
    /// Prepares the generator (builds the alias table, O(n)).
    pub fn new(cfg: &ChungLuConfig) -> ChungLu {
        assert!(cfg.vertices >= 2, "need at least two vertices");
        assert!(
            cfg.exponent > 0.0 && cfg.exponent < 1.0,
            "exponent must lie in (0, 1), got {}",
            cfg.exponent
        );
        let weights: Vec<f64> = (0..cfg.vertices)
            .map(|i| ((i + 1) as f64).powf(-cfg.exponent))
            .collect();
        ChungLu {
            table: AliasTable::new(&weights),
            rng: Xoshiro256::seeded(cfg.seed),
            remaining: cfg.edges,
        }
    }
}

impl Iterator for ChungLu {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        loop {
            let a = self.table.sample(&mut self.rng) as u64;
            let b = self.table.sample(&mut self.rng) as u64;
            if a != b {
                return Some(Edge::of(a, b));
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining as usize;
        (r, Some(r))
    }
}

impl ExactSizeIterator for ChungLu {}

/// Barabási–Albert preferential attachment.
///
/// Starts from a star on `m + 1` vertices, then every new vertex attaches
/// `m` edges to existing vertices chosen proportionally to degree (via the
/// repeated-endpoints trick: sampling uniformly from the list of all edge
/// endpoints *is* degree-proportional sampling).
pub struct BarabasiAlbert {
    n: u64,
    m: u64,
    rng: Xoshiro256,
    /// Every endpoint of every emitted edge; uniform sampling from this is
    /// degree-proportional.
    endpoints: Vec<Gid>,
    next_vertex: u64,
    pending: Vec<Edge>,
}

impl BarabasiAlbert {
    /// `n` total vertices, `m` edges per arriving vertex.
    pub fn new(n: u64, m: u64, seed: u64) -> BarabasiAlbert {
        assert!(m >= 1, "m must be at least 1");
        assert!(
            n > m,
            "need more vertices ({n}) than attachment edges ({m})"
        );
        let mut gen = BarabasiAlbert {
            n,
            m,
            rng: Xoshiro256::seeded(seed),
            endpoints: Vec::new(),
            next_vertex: m + 1,
            pending: Vec::new(),
        };
        // Seed star: vertices 1..=m each connect to vertex 0.
        for i in 1..=m {
            gen.push_edge(Edge::of(i, 0));
        }
        gen.pending.reverse();
        gen
    }

    fn push_edge(&mut self, e: Edge) {
        self.endpoints.push(e.src);
        self.endpoints.push(e.dst);
        self.pending.push(e);
    }

    /// Number of vertices this stream will cover.
    pub fn vertex_count(&self) -> u64 {
        self.n
    }
}

impl Iterator for BarabasiAlbert {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        if let Some(e) = self.pending.pop() {
            return Some(e);
        }
        if self.next_vertex >= self.n {
            return None;
        }
        let v = self.next_vertex;
        self.next_vertex += 1;
        // Choose m distinct targets by degree-proportional sampling.
        let mut targets: Vec<Gid> = Vec::with_capacity(self.m as usize);
        let mut guard = 0;
        while (targets.len() as u64) < self.m {
            let t = *self.rng.choose(&self.endpoints);
            if t.raw() != v && !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
            if guard > 64 * self.m {
                // Degenerate tiny graphs: fall back to any distinct vertex.
                for u in 0..v {
                    let g = Gid::new(u);
                    if !targets.contains(&g) {
                        targets.push(g);
                        if targets.len() as u64 == self.m {
                            break;
                        }
                    }
                }
                break;
            }
        }
        for t in targets {
            self.push_edge(Edge::new(Gid::new(v), t));
        }
        self.pending.reverse();
        self.pending.pop()
    }
}

/// Erdős–Rényi G(n, m): `m` uniformly random non-loop edges. The
/// non-scale-free baseline.
pub struct ErdosRenyi {
    n: u64,
    remaining: u64,
    rng: Xoshiro256,
}

impl ErdosRenyi {
    /// `n` vertices, `m` edges.
    pub fn new(n: u64, m: u64, seed: u64) -> ErdosRenyi {
        assert!(n >= 2, "need at least two vertices");
        ErdosRenyi {
            n,
            remaining: m,
            rng: Xoshiro256::seeded(seed),
        }
    }
}

impl Iterator for ErdosRenyi {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        loop {
            let a = self.rng.next_below(self.n);
            let b = self.rng.next_below(self.n);
            if a != b {
                return Some(Edge::of(a, b));
            }
        }
    }
}

/// R-MAT (recursive matrix) generator — the other standard scale-free
/// construction in the systems literature (Chakrabarti et al., 2004, and
/// the kernel of the later Graph500 benchmark). Each edge is placed by
/// recursively descending into one of four adjacency-matrix quadrants with
/// probabilities `(a, b, c, d)`; skewed probabilities concentrate edges on
/// low-numbered vertices, yielding a power-law graph.
pub struct Rmat {
    scale: u32,
    remaining: u64,
    a: f64,
    ab: f64,
    abc: f64,
    rng: Xoshiro256,
}

impl Rmat {
    /// `2^scale` vertices, `edges` edges, quadrant probabilities
    /// `(a, b, c)` with `d = 1 − a − b − c`.
    ///
    /// # Panics
    /// Panics unless `0 < a, b, c` and `a + b + c < 1`.
    pub fn new(scale: u32, edges: u64, a: f64, b: f64, c: f64, seed: u64) -> Rmat {
        assert!((1..61).contains(&scale), "scale out of range");
        assert!(
            a > 0.0 && b > 0.0 && c > 0.0 && a + b + c < 1.0,
            "bad quadrant probabilities"
        );
        Rmat {
            scale,
            remaining: edges,
            a,
            ab: a + b,
            abc: a + b + c,
            rng: Xoshiro256::seeded(seed),
        }
    }

    /// The canonical skew used throughout the literature:
    /// `(a, b, c) = (0.57, 0.19, 0.19)`.
    pub fn standard(scale: u32, edges: u64, seed: u64) -> Rmat {
        Rmat::new(scale, edges, 0.57, 0.19, 0.19, seed)
    }

    /// Number of vertices (`2^scale`).
    pub fn vertex_count(&self) -> u64 {
        1u64 << self.scale
    }
}

impl Iterator for Rmat {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        loop {
            let (mut src, mut dst) = (0u64, 0u64);
            for bit in (0..self.scale).rev() {
                let r = self.rng.next_f64();
                if r < self.a {
                    // top-left: neither bit set
                } else if r < self.ab {
                    dst |= 1 << bit;
                } else if r < self.abc {
                    src |= 1 << bit;
                } else {
                    src |= 1 << bit;
                    dst |= 1 << bit;
                }
            }
            if src != dst {
                return Some(Edge::of(src, dst));
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

impl ExactSizeIterator for Rmat {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_stats;

    #[test]
    fn chung_lu_emits_requested_edges() {
        let cfg = ChungLuConfig {
            vertices: 1000,
            edges: 5000,
            exponent: 0.6,
            seed: 1,
        };
        let edges: Vec<Edge> = ChungLu::new(&cfg).collect();
        assert_eq!(edges.len(), 5000);
        assert!(edges.iter().all(|e| !e.is_loop()));
        assert!(edges
            .iter()
            .all(|e| e.src.raw() < 1000 && e.dst.raw() < 1000));
    }

    #[test]
    fn chung_lu_deterministic() {
        let cfg = ChungLuConfig {
            vertices: 500,
            edges: 1000,
            exponent: 0.5,
            seed: 7,
        };
        let a: Vec<Edge> = ChungLu::new(&cfg).collect();
        let b: Vec<Edge> = ChungLu::new(&cfg).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn chung_lu_is_skewed() {
        let cfg = ChungLuConfig {
            vertices: 2000,
            edges: 20_000,
            exponent: 0.8,
            seed: 3,
        };
        let stats = degree_stats(ChungLu::new(&cfg), 2000);
        // Hub must be far above average — the defining scale-free property.
        assert!(
            stats.max_degree as f64 > 10.0 * stats.avg_degree,
            "max {} vs avg {}",
            stats.max_degree,
            stats.avg_degree
        );
    }

    #[test]
    fn chung_lu_hub_matches_prediction() {
        let cfg = ChungLuConfig {
            vertices: 5000,
            edges: 50_000,
            exponent: 0.7,
            seed: 11,
        };
        let predicted = cfg.expected_max_degree();
        let stats = degree_stats(ChungLu::new(&cfg), 5000);
        let got = stats.max_degree as f64;
        assert!(
            (got - predicted).abs() < predicted * 0.25,
            "hub degree {got} far from predicted {predicted}"
        );
    }

    #[test]
    fn solve_exponent_hits_target() {
        let (n, e) = (100_000u64, 1_000_000u64);
        for target in [500.0, 2000.0, 10_000.0] {
            let s = solve_exponent(n, e, target);
            let cfg = ChungLuConfig {
                vertices: n,
                edges: e,
                exponent: s,
                seed: 0,
            };
            let hub = cfg.expected_max_degree();
            assert!(
                (hub - target).abs() < target * 0.02,
                "target {target}: solved s={s}, hub={hub}"
            );
        }
    }

    #[test]
    fn weight_sum_large_n_approximation() {
        // Compare approximate vs exact at the crossover point.
        let s = 0.7;
        let exact: f64 = (0..200_000u64).map(|i| ((i + 1) as f64).powf(-s)).sum();
        let approx = weight_sum(200_000, s);
        assert!((approx - exact).abs() / exact < 1e-3);
    }

    #[test]
    fn ba_edge_count_and_range() {
        let n = 500;
        let m = 3;
        let edges: Vec<Edge> = BarabasiAlbert::new(n, m, 9).collect();
        // Star seed: m edges; each of the n-m-1 later vertices adds m.
        assert_eq!(edges.len() as u64, m + (n - m - 1) * m);
        assert!(edges.iter().all(|e| e.src.raw() < n && e.dst.raw() < n));
        assert!(edges.iter().all(|e| !e.is_loop()));
    }

    #[test]
    fn ba_is_scale_free_ish() {
        let edges: Vec<Edge> = BarabasiAlbert::new(3000, 4, 13).collect();
        let stats = degree_stats(edges.into_iter(), 3000);
        assert!(stats.max_degree as f64 > 5.0 * stats.avg_degree);
        // Every non-seed vertex has degree >= m.
        assert!(stats.min_degree >= 4 || stats.min_degree >= 1);
    }

    #[test]
    fn ba_deterministic() {
        let a: Vec<Edge> = BarabasiAlbert::new(200, 2, 5).collect();
        let b: Vec<Edge> = BarabasiAlbert::new(200, 2, 5).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn rmat_edge_count_and_range() {
        let gen = Rmat::standard(8, 2000, 3);
        assert_eq!(gen.vertex_count(), 256);
        let edges: Vec<Edge> = gen.collect();
        assert_eq!(edges.len(), 2000);
        assert!(edges.iter().all(|e| e.src.raw() < 256 && e.dst.raw() < 256));
        assert!(edges.iter().all(|e| !e.is_loop()));
    }

    #[test]
    fn rmat_deterministic() {
        let a: Vec<Edge> = Rmat::standard(7, 500, 9).collect();
        let b: Vec<Edge> = Rmat::standard(7, 500, 9).collect();
        assert_eq!(a, b);
        let c: Vec<Edge> = Rmat::standard(7, 500, 10).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_standard_is_skewed() {
        let edges: Vec<Edge> = Rmat::standard(10, 20_000, 4).collect();
        let stats = degree_stats(edges.into_iter(), 1024);
        assert!(
            stats.max_degree as f64 > 8.0 * stats.avg_degree,
            "max {} vs avg {}",
            stats.max_degree,
            stats.avg_degree
        );
    }

    #[test]
    fn rmat_uniform_probabilities_are_flat() {
        // (0.25, 0.25, 0.25, 0.25) degenerates to Erdős–Rényi.
        let edges: Vec<Edge> = Rmat::new(10, 20_000, 0.25, 0.25, 0.25, 4).collect();
        let stats = degree_stats(edges.into_iter(), 1024);
        assert!(
            (stats.max_degree as f64) < 3.0 * stats.avg_degree,
            "max {} vs avg {}",
            stats.max_degree,
            stats.avg_degree
        );
    }

    #[test]
    #[should_panic(expected = "bad quadrant probabilities")]
    fn rmat_rejects_bad_probabilities() {
        let _ = Rmat::new(8, 10, 0.5, 0.5, 0.2, 0);
    }

    #[test]
    fn er_flat_degrees() {
        let edges: Vec<Edge> = ErdosRenyi::new(2000, 20_000, 17).collect();
        assert_eq!(edges.len(), 20_000);
        let stats = degree_stats(edges.into_iter(), 2000);
        // ER max degree stays within a small factor of the mean — the
        // contrast with the scale-free generators above.
        assert!(
            (stats.max_degree as f64) < 3.0 * stats.avg_degree,
            "max {} vs avg {}",
            stats.max_degree,
            stats.avg_degree
        );
    }
}
