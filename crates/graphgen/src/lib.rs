#![warn(missing_docs)]
//! Scale-free graph generation and measurement for the MSSG experiments.
//!
//! The thesis evaluates MSSG on two real PubMed-derived semantic graphs and
//! one synthetic scale-free graph (Table 5.1). The PubMed data is not
//! available, so this crate generates *PubMed-like* graphs: seeded,
//! reproducible scale-free graphs calibrated to the published statistics
//! (vertex/edge counts, min/avg/max degree). What the experiments exercise
//! is the degree distribution — hubs drive fringe growth and block reuse —
//! not the document text, so the substitution preserves the measured
//! behaviour (see DESIGN.md §2).
//!
//! Contents:
//! - [`rng`] — a small, seeded xoshiro256++ PRNG (bit-reproducible runs),
//! - [`alias`] — Walker alias tables for O(1) weighted sampling,
//! - [`generate`] — Chung–Lu and Barabási–Albert scale-free generators,
//! - [`presets`] — `pubmed_s` / `pubmed_l` / `syn2b` workload presets with a
//!   scale knob,
//! - [`stats`] — degree statistics matching Table 5.1's columns plus a
//!   power-law exponent fit,
//! - [`edgeio`] — ASCII and binary edge-list readers/writers (the ingestion
//!   experiments stream ASCII in and store binary, as the thesis notes).

pub mod alias;
pub mod edgeio;
pub mod extsort;
pub mod generate;
pub mod presets;
pub mod rng;
pub mod stats;

pub use extsort::external_sort_edges;
pub use generate::{BarabasiAlbert, ChungLu, ChungLuConfig, ErdosRenyi, Rmat};
pub use presets::{GraphPreset, Workload};
pub use rng::Xoshiro256;
pub use stats::{degree_stats, DegreeStats};
