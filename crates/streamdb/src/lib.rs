#![warn(missing_docs)]
//! StreamDB — the streaming, scan-everything backend (thesis §4.1.5).
//!
//! Edges are appended to a binary log exactly as they arrive; no sorting,
//! no clustering, no index. Ingestion is therefore as fast as the disk can
//! sequentially write — the thesis shows StreamDB with "unrivaled ingestion
//! performance" in Figure 5.5 — but a vertex's adjacency list can only be
//! recovered by scanning the *entire* edge set.
//!
//! The design consequence, inherited from the Active Disks work the thesis
//! cites: "any search algorithm which needs the adjacent vertices to
//! another set of vertices must post a request for all of the 'fringe'
//! vertices at once, thereby allowing the database to only scan through its
//! data once." Accordingly [`StreamDb::expand_fringe`] is the native
//! operation (one sequential pass answers the whole fringe) and point
//! queries, while correct, are advertised as unsupported via
//! [`supports_point_queries`](graphdb::GraphDb::supports_point_queries).

use graphdb::{GraphDb, MetaTable};
use mssg_types::{AdjBuffer, Edge, Gid, GraphStorageError, Meta, MetaOp, Result};
use simio::IoStats;
use std::collections::HashSet;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Record size: two 64-bit words.
const RECORD: usize = 16;
/// Scan/append buffer size; counts as one "block" in the I/O statistics.
const BUF: usize = 64 * 1024;

/// The append-only streaming edge database.
pub struct StreamDb {
    file: File,
    path: PathBuf,
    /// Pending appended records not yet written to the file.
    pending: Vec<u8>,
    /// Records currently durable in the file.
    records_on_disk: u64,
    meta: MetaTable,
    stats: Arc<IoStats>,
}

impl StreamDb {
    /// Opens (creating if needed) a stream database at `path`.
    pub fn open(path: &Path, stats: Arc<IoStats>) -> Result<StreamDb> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % RECORD as u64 != 0 {
            return Err(GraphStorageError::corrupt(format!(
                "{} has length {len}, not a multiple of the {RECORD}-byte record",
                path.display()
            )));
        }
        Ok(StreamDb {
            file,
            path: path.to_path_buf(),
            pending: Vec::new(),
            records_on_disk: len / RECORD as u64,
            meta: MetaTable::new(),
            stats,
        })
    }

    /// Path of the backing log.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Opens a log that may have a *torn tail* — a partial record left by
    /// a crash mid-append (the failure [`open`](StreamDb::open) rejects as
    /// corruption). The tail is truncated away and the database opens on
    /// the surviving whole-record prefix; since the log is append-only,
    /// everything before the tear is untouched. Returns the database and
    /// the number of trailing bytes discarded.
    ///
    /// This is the backend half of the recovery story in DESIGN.md
    /// §"Failure model": the ingestion checkpoint re-delivers whatever
    /// windows the discarded tail contained, so a crashed node converges
    /// on the full edge set after a resumed run. As with every StreamDB
    /// read path, verifying the recovered content costs a scan of the
    /// entire edge set (see the crate docs).
    pub fn recover(path: &Path, stats: Arc<IoStats>) -> Result<(StreamDb, u64)> {
        let torn = match std::fs::metadata(path) {
            Ok(m) => m.len() % RECORD as u64,
            Err(_) => 0, // no file yet: open will create it
        };
        if torn != 0 {
            let file = OpenOptions::new().write(true).open(path)?;
            let len = file.metadata()?.len();
            file.set_len(len - torn)?;
            file.sync_data()?;
        }
        Ok((StreamDb::open(path, stats)?, torn))
    }

    fn write_pending(&mut self) -> Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(&self.pending)?;
        self.stats.record_write(self.pending.len() as u64);
        self.records_on_disk += (self.pending.len() / RECORD) as u64;
        self.pending.clear();
        Ok(())
    }

    /// One sequential pass over the log, invoking `cb` for each edge.
    fn scan(&mut self, cb: &mut dyn FnMut(Edge)) -> Result<()> {
        self.write_pending()?;
        self.file.seek(SeekFrom::Start(0))?;
        self.stats.record_seek();
        let mut remaining = self.records_on_disk as usize * RECORD;
        let mut buf = vec![0u8; BUF];
        while remaining > 0 {
            let take = remaining.min(BUF);
            self.file.read_exact(&mut buf[..take])?;
            self.stats.record_read(take as u64);
            for rec in buf[..take].chunks_exact(RECORD) {
                cb(Edge::from_bytes(rec.try_into().unwrap()));
            }
            remaining -= take;
        }
        Ok(())
    }
}

impl GraphDb for StreamDb {
    fn store_edges(&mut self, edges: &[Edge]) -> Result<()> {
        for e in edges {
            self.pending.extend_from_slice(&e.to_bytes());
        }
        if self.pending.len() >= BUF {
            self.write_pending()?;
        }
        Ok(())
    }

    fn get_metadata(&mut self, v: Gid) -> Result<Meta> {
        Ok(self.meta.get(v))
    }

    fn set_metadata(&mut self, v: Gid, meta: Meta) -> Result<()> {
        self.meta.set(v, meta);
        Ok(())
    }

    /// Point query: answered by a full scan. Correct, but the whole point
    /// of the design is to avoid this — use
    /// [`expand_fringe`](GraphDb::expand_fringe).
    fn adjacency(&mut self, v: Gid, out: &mut AdjBuffer, meta: Meta, op: MetaOp) -> Result<()> {
        self.expand_fringe(&[v], out, meta, op)
    }

    /// The native operation: one sequential scan answers every fringe
    /// vertex at once.
    fn expand_fringe(
        &mut self,
        fringe: &[Gid],
        out: &mut AdjBuffer,
        meta: Meta,
        op: MetaOp,
    ) -> Result<()> {
        let fringe_set: HashSet<Gid> = fringe.iter().copied().collect();
        let meta_table = std::mem::take(&mut self.meta);
        let mut hits = Vec::new();
        self.scan(&mut |e| {
            if fringe_set.contains(&e.src) && op.admits(meta_table.get(e.dst), meta) {
                hits.push(e.dst);
            }
        })?;
        self.meta = meta_table;
        out.extend_from_slice(&hits);
        Ok(())
    }

    fn supports_point_queries(&self) -> bool {
        false
    }

    fn flush(&mut self) -> Result<()> {
        self.write_pending()?;
        self.file.sync_data()?;
        self.stats.record_sync();
        Ok(())
    }

    fn local_vertices(&mut self) -> Result<Vec<Gid>> {
        let mut set = HashSet::new();
        self.scan(&mut |e| {
            set.insert(e.src);
        })?;
        let mut vs: Vec<Gid> = set.into_iter().collect();
        vs.sort_unstable();
        Ok(vs)
    }

    fn stored_entries(&self) -> u64 {
        self.records_on_disk + (self.pending.len() / RECORD) as u64
    }

    fn backend_name(&self) -> &'static str {
        "StreamDB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdb::GraphDbExt;

    fn g(v: u64) -> Gid {
        Gid::new(v)
    }

    fn db(tag: &str) -> StreamDb {
        let d = std::env::temp_dir().join(format!("streamdb-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(tag);
        let _ = std::fs::remove_file(&p);
        StreamDb::open(&p, IoStats::new()).unwrap()
    }

    #[test]
    fn store_and_point_query() {
        let mut s = db("point.log");
        s.store_edges(&[Edge::of(1, 2), Edge::of(1, 3), Edge::of(2, 1)])
            .unwrap();
        let mut n = s.neighbors(g(1)).unwrap();
        n.sort_unstable();
        assert_eq!(n, vec![g(2), g(3)]);
        assert!(!s.supports_point_queries());
    }

    #[test]
    fn fringe_expansion_single_scan() {
        let stats = IoStats::new();
        let d = std::env::temp_dir().join(format!("streamdb-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("fringe.log");
        let _ = std::fs::remove_file(&p);
        let mut s = StreamDb::open(&p, Arc::clone(&stats)).unwrap();
        let edges: Vec<Edge> = (0..10_000u64).map(|i| Edge::of(i % 100, i)).collect();
        s.store_edges(&edges).unwrap();
        s.flush().unwrap();
        let before = stats.snapshot();
        let mut out = AdjBuffer::new();
        s.expand_fringe(&[g(0), g(1), g(2)], &mut out, 0, MetaOp::Ignore)
            .unwrap();
        assert_eq!(out.len(), 300);
        let delta = stats.snapshot().since(&before);
        // 10k records × 16 B = 160000 B -> ceil(160000/65536) = 3 buffered reads.
        assert_eq!(
            delta.block_reads, 3,
            "one sequential pass regardless of fringe size"
        );
    }

    #[test]
    fn metadata_filter_applies() {
        let mut s = db("meta.log");
        s.store_edges(&[Edge::of(0, 1), Edge::of(0, 2)]).unwrap();
        s.set_metadata(g(1), 5).unwrap();
        let mut out = AdjBuffer::new();
        s.expand_fringe(&[g(0)], &mut out, 5, MetaOp::NotEqual)
            .unwrap();
        assert_eq!(out.as_slice(), &[g(2)]);
    }

    #[test]
    fn ingestion_is_sequential() {
        let stats = IoStats::new();
        let d = std::env::temp_dir().join(format!("streamdb-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("ingest.log");
        let _ = std::fs::remove_file(&p);
        let mut s = StreamDb::open(&p, Arc::clone(&stats)).unwrap();
        let edges: Vec<Edge> = (0..50_000u64).map(|i| Edge::of(i, i + 1)).collect();
        s.store_edges(&edges).unwrap();
        s.flush().unwrap();
        let snap = stats.snapshot();
        // Appends never seek (writes land at the rolling end of file).
        assert_eq!(snap.seeks, 0);
        assert_eq!(snap.bytes_written, 50_000 * 16);
    }

    #[test]
    fn persistence_and_reopen() {
        let d = std::env::temp_dir().join(format!("streamdb-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("persist.log");
        let _ = std::fs::remove_file(&p);
        {
            let mut s = StreamDb::open(&p, IoStats::new()).unwrap();
            s.store_edges(&[Edge::of(9, 8)]).unwrap();
            s.flush().unwrap();
        }
        let mut s = StreamDb::open(&p, IoStats::new()).unwrap();
        assert_eq!(s.stored_entries(), 1);
        assert_eq!(s.neighbors(g(9)).unwrap(), vec![g(8)]);
        // Appending after reopen keeps old records.
        s.store_edges(&[Edge::of(9, 7)]).unwrap();
        assert_eq!(s.neighbors(g(9)).unwrap().len(), 2);
    }

    #[test]
    fn unknown_vertex_empty() {
        let mut s = db("unknown.log");
        s.store_edges(&[Edge::of(0, 1)]).unwrap();
        assert!(s.neighbors(g(5)).unwrap().is_empty());
    }

    #[test]
    fn truncated_log_rejected() {
        let d = std::env::temp_dir().join(format!("streamdb-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("trunc.log");
        std::fs::write(&p, [0u8; 20]).unwrap();
        assert!(StreamDb::open(&p, IoStats::new()).is_err());
    }

    #[test]
    fn recover_truncates_torn_tail_and_keeps_prefix() {
        let d = std::env::temp_dir().join(format!("streamdb-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("recover.log");
        let _ = std::fs::remove_file(&p);
        {
            let mut s = StreamDb::open(&p, IoStats::new()).unwrap();
            s.store_edges(&[Edge::of(1, 2), Edge::of(3, 4)]).unwrap();
            s.flush().unwrap();
        }
        // Simulate a crash mid-append: 7 stray bytes of a third record.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&p).unwrap();
            f.write_all(&[0xAB; 7]).unwrap();
        }
        assert!(
            StreamDb::open(&p, IoStats::new()).is_err(),
            "plain open still rejects the torn log"
        );
        let (mut s, torn) = StreamDb::recover(&p, IoStats::new()).unwrap();
        assert_eq!(torn, 7);
        assert_eq!(s.stored_entries(), 2, "whole-record prefix survives");
        assert_eq!(s.neighbors(g(1)).unwrap(), vec![g(2)]);
        assert_eq!(s.neighbors(g(3)).unwrap(), vec![g(4)]);
        // A clean log recovers with nothing to discard.
        drop(s);
        let (s, torn) = StreamDb::recover(&p, IoStats::new()).unwrap();
        assert_eq!(torn, 0);
        assert_eq!(s.stored_entries(), 2);
    }

    #[test]
    fn pending_records_visible_before_flush() {
        let mut s = db("pending.log");
        s.store_edges(&[Edge::of(1, 2)]).unwrap();
        assert_eq!(s.stored_entries(), 1);
        // Scan must see unflushed records (write_pending happens lazily).
        assert_eq!(s.neighbors(g(1)).unwrap(), vec![g(2)]);
    }

    #[test]
    fn agrees_with_hashmap_reference() {
        use graphdb::HashMapDb;
        let mut s = db("agree.log");
        let mut h = HashMapDb::new();
        let mut x = 3u64;
        let mut edges = Vec::new();
        for _ in 0..1000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            edges.push(Edge::of(x % 30, (x >> 24) % 30));
        }
        s.store_edges(&edges).unwrap();
        h.store_edges(&edges).unwrap();
        let fringe: Vec<Gid> = (0..30).map(g).collect();
        let mut out_s = AdjBuffer::new();
        let mut out_h = AdjBuffer::new();
        s.expand_fringe(&fringe, &mut out_s, 0, MetaOp::Ignore)
            .unwrap();
        h.expand_fringe(&fringe, &mut out_h, 0, MetaOp::Ignore)
            .unwrap();
        let mut vs = out_s.take();
        let mut vh = out_h.take();
        vs.sort_unstable();
        vh.sort_unstable();
        assert_eq!(vs, vh);
    }
}
