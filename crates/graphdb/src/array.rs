//! The Array (compressed adjacency list / CSR) backend — thesis §4.1.1.
//!
//! The graph is stored in two arrays: `adj` concatenates every adjacency
//! list; `xadj[v] .. xadj[v+1]` delimits vertex `v`'s slice. This is the
//! fastest possible in-memory layout and serves as the lower bound every
//! out-of-core engine is compared against (Figures 5.1, 5.4, 5.6).
//!
//! Faithful to the prototype:
//! - ingestion stages edges in a hash map ("we have actually used the
//!   HashMap implementation … as temporary storage. After flushing the
//!   graph to disk, the Array GraphDB instance loads the graph into the
//!   compressed adjacency list arrays"); here [`flush`](ArrayDb::flush)
//!   performs the rebuild,
//! - `xadj` is indexed directly by vertex id, so each node pays for the
//!   whole id range — the thesis' third listed drawback of this format
//!   ("each node has to store the full xadj array").

use crate::meta_table::MetaTable;
use crate::traits::GraphDb;
use mssg_types::{AdjBuffer, Edge, Gid, Meta, MetaOp, Result};
use std::collections::HashMap;

/// CSR in-memory backend.
#[derive(Default)]
pub struct ArrayDb {
    /// Ingestion staging, keyed by source vertex.
    staging: HashMap<Gid, Vec<Gid>>,
    /// Entries staged but not yet built into the CSR.
    staged_entries: u64,
    /// Built CSR, if up to date.
    csr: Option<Csr>,
    meta: MetaTable,
}

struct Csr {
    /// `xadj[v] .. xadj[v+1]` bounds vertex v's adjacency slice. Indexed
    /// directly by vertex id over `0..=max_gid`.
    xadj: Vec<u64>,
    adj: Vec<Gid>,
}

impl Csr {
    fn neighbours(&self, v: Gid) -> &[Gid] {
        let idx = v.index();
        if idx + 1 >= self.xadj.len() {
            return &[];
        }
        let (lo, hi) = (self.xadj[idx] as usize, self.xadj[idx + 1] as usize);
        &self.adj[lo..hi]
    }
}

impl ArrayDb {
    /// Creates an empty backend.
    pub fn new() -> ArrayDb {
        ArrayDb::default()
    }

    /// Rebuilds the CSR arrays from staging. Incremental edges added after a
    /// build are merged with the existing CSR contents.
    fn build(&mut self) {
        let mut lists = std::mem::take(&mut self.staging);
        // Merge previously built data back in (dynamic growth is what this
        // format is *bad* at — the rebuild cost is honest).
        if let Some(old) = self.csr.take() {
            for v in 0..old.xadj.len().saturating_sub(1) {
                let slice = old.neighbours(Gid::new(v as u64));
                if !slice.is_empty() {
                    lists
                        .entry(Gid::new(v as u64))
                        .or_default()
                        .extend_from_slice(slice);
                }
            }
        }
        let max_gid = lists.keys().map(|g| g.raw()).max().map_or(0, |m| m + 1);
        let mut xadj = vec![0u64; max_gid as usize + 1];
        for (v, ns) in &lists {
            xadj[v.index()] = ns.len() as u64;
        }
        // Exclusive prefix sum.
        let mut running = 0u64;
        for slot in xadj.iter_mut() {
            let count = *slot;
            *slot = running;
            running += count;
        }
        xadj.push(running);
        let mut adj = vec![Gid::new(0); running as usize];
        let mut cursor = xadj.clone();
        for (v, ns) in lists {
            let c = &mut cursor[v.index()];
            for u in ns {
                adj[*c as usize] = u;
                *c += 1;
            }
        }
        self.staged_entries = 0;
        self.csr = Some(Csr { xadj, adj });
    }

    fn ensure_built(&mut self) {
        if self.csr.is_none() || !self.staging.is_empty() {
            self.build();
        }
    }
}

impl GraphDb for ArrayDb {
    fn store_edges(&mut self, edges: &[Edge]) -> Result<()> {
        for e in edges {
            self.staging.entry(e.src).or_default().push(e.dst);
            self.staged_entries += 1;
        }
        Ok(())
    }

    fn get_metadata(&mut self, v: Gid) -> Result<Meta> {
        Ok(self.meta.get(v))
    }

    fn set_metadata(&mut self, v: Gid, meta: Meta) -> Result<()> {
        self.meta.set(v, meta);
        Ok(())
    }

    fn adjacency(&mut self, v: Gid, out: &mut AdjBuffer, meta: Meta, op: MetaOp) -> Result<()> {
        self.ensure_built();
        let csr = self.csr.as_ref().expect("built above");
        // Split borrows: read neighbours from csr, metadata from the table.
        for &u in csr.neighbours(v) {
            if op.admits(self.meta.get(u), meta) {
                out.push(u);
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.ensure_built();
        Ok(())
    }

    fn local_vertices(&mut self) -> Result<Vec<Gid>> {
        self.ensure_built();
        let csr = self.csr.as_ref().expect("built above");
        let mut vs = Vec::new();
        for v in 0..csr.xadj.len().saturating_sub(1) {
            if csr.xadj[v + 1] > csr.xadj[v] {
                vs.push(Gid::new(v as u64));
            }
        }
        Ok(vs)
    }

    fn stored_entries(&self) -> u64 {
        self.staged_entries + self.csr.as_ref().map_or(0, |c| c.adj.len() as u64)
    }

    fn backend_name(&self) -> &'static str {
        "Array"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::GraphDbExt;

    fn g(v: u64) -> Gid {
        Gid::new(v)
    }

    /// The worked example of thesis Figure 4.1: vertex 0 adjacent to
    /// 1, 2, 3; vertex 1 adjacent to 0, 2.
    #[test]
    fn figure_4_1_layout() {
        let mut db = ArrayDb::new();
        db.store_edges(&[
            Edge::of(0, 1),
            Edge::of(0, 2),
            Edge::of(0, 3),
            Edge::of(1, 0),
            Edge::of(1, 2),
        ])
        .unwrap();
        db.flush().unwrap();
        let mut n0 = db.neighbors(g(0)).unwrap();
        n0.sort_unstable();
        assert_eq!(n0, vec![g(1), g(2), g(3)]);
        let mut n1 = db.neighbors(g(1)).unwrap();
        n1.sort_unstable();
        assert_eq!(n1, vec![g(0), g(2)]);
    }

    #[test]
    fn unknown_vertex_empty() {
        let mut db = ArrayDb::new();
        db.store_edges(&[Edge::of(0, 1)]).unwrap();
        assert!(db.neighbors(g(50)).unwrap().is_empty());
    }

    #[test]
    fn metadata_filtering() {
        let mut db = ArrayDb::new();
        db.store_edges(&[Edge::of(0, 1), Edge::of(0, 2), Edge::of(0, 3)])
            .unwrap();
        db.set_metadata(g(1), 5).unwrap();
        db.set_metadata(g(2), 7).unwrap();
        // g(3) stays UNVISITED.
        let mut out = AdjBuffer::new();
        db.adjacency(g(0), &mut out, 5, MetaOp::Equal).unwrap();
        assert_eq!(out.as_slice(), &[g(1)]);
        out.clear();
        db.adjacency(g(0), &mut out, 5, MetaOp::NotEqual).unwrap();
        assert_eq!(out.len(), 2);
        out.clear();
        db.adjacency(g(0), &mut out, 6, MetaOp::Greater).unwrap();
        let mut got = out.take();
        got.sort_unstable();
        assert_eq!(got, vec![g(2), g(3)]); // 7 > 6 and UNVISITED > 6
    }

    #[test]
    fn incremental_store_after_build() {
        let mut db = ArrayDb::new();
        db.store_edges(&[Edge::of(0, 1)]).unwrap();
        db.flush().unwrap();
        assert_eq!(db.degree(g(0)).unwrap(), 1);
        // Dynamic growth forces a rebuild — the format's known weakness,
        // but correctness must hold.
        db.store_edges(&[Edge::of(0, 2), Edge::of(5, 0)]).unwrap();
        let mut n0 = db.neighbors(g(0)).unwrap();
        n0.sort_unstable();
        assert_eq!(n0, vec![g(1), g(2)]);
        assert_eq!(db.neighbors(g(5)).unwrap(), vec![g(0)]);
    }

    #[test]
    fn stored_entries_counts_both_phases() {
        let mut db = ArrayDb::new();
        db.store_edges(&[Edge::of(0, 1), Edge::of(1, 0)]).unwrap();
        assert_eq!(db.stored_entries(), 2);
        db.flush().unwrap();
        assert_eq!(db.stored_entries(), 2);
        db.store_edges(&[Edge::of(2, 3)]).unwrap();
        assert_eq!(db.stored_entries(), 3);
    }

    #[test]
    fn parallel_edges_preserved() {
        let mut db = ArrayDb::new();
        db.store_edges(&[Edge::of(0, 1), Edge::of(0, 1)]).unwrap();
        assert_eq!(db.degree(g(0)).unwrap(), 2);
    }

    #[test]
    fn sparse_high_ids() {
        let mut db = ArrayDb::new();
        db.store_edges(&[Edge::of(1_000_000, 2)]).unwrap();
        assert_eq!(db.neighbors(g(1_000_000)).unwrap(), vec![g(2)]);
        assert!(db.neighbors(g(999_999)).unwrap().is_empty());
    }

    #[test]
    fn backend_name() {
        assert_eq!(ArrayDb::new().backend_name(), "Array");
    }
}
