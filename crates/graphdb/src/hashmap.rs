//! The HashMap backend — thesis §4.1.2.
//!
//! Each vertex's adjacency list lives in its own growable array; a hash map
//! holds the pointer to it (thesis Figure 4.2). This trades one hash lookup
//! per access for dynamic growth and per-node memory that scales with the
//! local partition only — the properties the Array format lacks. It is also
//! the staging structure the prototype uses during ingestion.

use crate::meta_table::MetaTable;
use crate::traits::GraphDb;
use mssg_types::{AdjBuffer, Edge, Gid, Meta, MetaOp, Result};
use std::collections::HashMap;

/// Hash-map-of-adjacency-lists in-memory backend.
#[derive(Default)]
pub struct HashMapDb {
    adj: HashMap<Gid, Vec<Gid>>,
    entries: u64,
    meta: MetaTable,
}

impl HashMapDb {
    /// Creates an empty backend.
    pub fn new() -> HashMapDb {
        HashMapDb::default()
    }

    /// Number of distinct source vertices stored.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }
}

impl GraphDb for HashMapDb {
    fn store_edges(&mut self, edges: &[Edge]) -> Result<()> {
        for e in edges {
            self.adj.entry(e.src).or_default().push(e.dst);
            self.entries += 1;
        }
        Ok(())
    }

    fn get_metadata(&mut self, v: Gid) -> Result<Meta> {
        Ok(self.meta.get(v))
    }

    fn set_metadata(&mut self, v: Gid, meta: Meta) -> Result<()> {
        self.meta.set(v, meta);
        Ok(())
    }

    fn adjacency(&mut self, v: Gid, out: &mut AdjBuffer, meta: Meta, op: MetaOp) -> Result<()> {
        // Take the list out briefly so we can consult `self.meta` without
        // aliasing; lists are put back untouched.
        let Some(ns) = self.adj.get(&v) else {
            return Ok(());
        };
        if matches!(op, MetaOp::Ignore) {
            out.extend_from_slice(ns);
            return Ok(());
        }
        // Filtered path: the borrow of `ns` (immutable) and `self.meta`
        // (immutable via MetaTable::get) can coexist.
        let meta_table = &self.meta;
        for &u in ns {
            if op.admits(meta_table.get(u), meta) {
                out.push(u);
            }
        }
        Ok(())
    }

    fn local_vertices(&mut self) -> Result<Vec<Gid>> {
        let mut vs: Vec<Gid> = self.adj.keys().copied().collect();
        vs.sort_unstable();
        Ok(vs)
    }

    fn stored_entries(&self) -> u64 {
        self.entries
    }

    fn backend_name(&self) -> &'static str {
        "HashMap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::GraphDbExt;

    fn g(v: u64) -> Gid {
        Gid::new(v)
    }

    #[test]
    fn store_and_retrieve() {
        let mut db = HashMapDb::new();
        db.store_edges(&[Edge::of(0, 1), Edge::of(0, 2), Edge::of(9, 0)])
            .unwrap();
        let mut n = db.neighbors(g(0)).unwrap();
        n.sort_unstable();
        assert_eq!(n, vec![g(1), g(2)]);
        assert_eq!(db.neighbors(g(9)).unwrap(), vec![g(0)]);
        assert_eq!(db.vertex_count(), 2);
    }

    #[test]
    fn dynamic_growth_is_cheap_and_correct() {
        let mut db = HashMapDb::new();
        for i in 0..100 {
            db.store_edges(&[Edge::of(7, i)]).unwrap();
        }
        assert_eq!(db.degree(g(7)).unwrap(), 100);
    }

    #[test]
    fn unknown_vertex_empty() {
        let mut db = HashMapDb::new();
        assert!(db.neighbors(g(1)).unwrap().is_empty());
    }

    #[test]
    fn metadata_filtering() {
        let mut db = HashMapDb::new();
        db.store_edges(&[Edge::of(0, 1), Edge::of(0, 2)]).unwrap();
        db.set_metadata(g(1), 1).unwrap();
        let mut out = AdjBuffer::new();
        db.adjacency(g(0), &mut out, 1, MetaOp::NotEqual).unwrap();
        assert_eq!(out.as_slice(), &[g(2)]);
    }

    #[test]
    fn metadata_default_unvisited() {
        let mut db = HashMapDb::new();
        assert_eq!(db.get_metadata(g(12)).unwrap(), mssg_types::UNVISITED);
        db.set_metadata(g(12), 4).unwrap();
        assert_eq!(db.get_metadata(g(12)).unwrap(), 4);
    }

    #[test]
    fn agreement_with_array_backend() {
        use crate::array::ArrayDb;
        use graphgen_like_edges as edges;

        let es = edges();
        let mut a = ArrayDb::new();
        let mut h = HashMapDb::new();
        a.store_edges(&es).unwrap();
        h.store_edges(&es).unwrap();
        a.flush().unwrap();
        for v in 0..20u64 {
            let mut na = a.neighbors(g(v)).unwrap();
            let mut nh = h.neighbors(g(v)).unwrap();
            na.sort_unstable();
            nh.sort_unstable();
            assert_eq!(na, nh, "vertex {v}");
        }
    }

    /// Small deterministic pseudo-random edge set (no graphgen dependency
    /// to avoid a dev-dependency cycle).
    fn graphgen_like_edges() -> Vec<Edge> {
        let mut x = 0x12345678u64;
        let mut out = Vec::new();
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = x % 20;
            let b = (x >> 8) % 20;
            if a != b {
                out.push(Edge::of(a, b));
            }
        }
        out
    }
}
