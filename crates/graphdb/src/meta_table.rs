//! In-memory per-vertex metadata.
//!
//! The thesis runs its search experiments "with an in-memory visited data
//! structure … the simplest way to obtain a fair comparison is to simply
//! fix the visited data-structure". [`MetaTable`] is that fixed structure:
//! a hash map from vertex id to the 32-bit metadata word, defaulting to
//! [`UNVISITED`]. Every backend embeds one, so metadata behaviour is
//! identical across engines and the benchmarks measure only the adjacency
//! storage.

use mssg_types::{Gid, Meta, UNVISITED};
use std::collections::HashMap;

/// Map from vertex to metadata word with an `UNVISITED` default.
#[derive(Clone, Debug, Default)]
pub struct MetaTable {
    map: HashMap<Gid, Meta>,
}

impl MetaTable {
    /// Creates an empty table.
    pub fn new() -> MetaTable {
        MetaTable::default()
    }

    /// Reads `v`'s metadata; unknown vertices read as [`UNVISITED`].
    #[inline]
    pub fn get(&self, v: Gid) -> Meta {
        self.map.get(&v).copied().unwrap_or(UNVISITED)
    }

    /// Writes `v`'s metadata. Writing `UNVISITED` removes the entry so the
    /// table's size tracks the visited set.
    #[inline]
    pub fn set(&mut self, v: Gid, meta: Meta) {
        if meta == UNVISITED {
            self.map.remove(&v);
        } else {
            self.map.insert(v, meta);
        }
    }

    /// Number of vertices holding a non-default word.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no vertex holds a non-default word.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Resets every vertex to [`UNVISITED`] (a new query starting).
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unvisited() {
        let t = MetaTable::new();
        assert_eq!(t.get(Gid::new(5)), UNVISITED);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = MetaTable::new();
        t.set(Gid::new(1), 3);
        assert_eq!(t.get(Gid::new(1)), 3);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn setting_unvisited_removes() {
        let mut t = MetaTable::new();
        t.set(Gid::new(1), 3);
        t.set(Gid::new(1), UNVISITED);
        assert_eq!(t.get(Gid::new(1)), UNVISITED);
        assert!(t.is_empty());
    }

    #[test]
    fn clear_resets_all() {
        let mut t = MetaTable::new();
        for i in 0..10 {
            t.set(Gid::new(i), i as Meta);
        }
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(Gid::new(3)), UNVISITED);
    }

    #[test]
    fn zero_is_a_real_value() {
        // Level 0 (the BFS source) must be distinguishable from unvisited.
        let mut t = MetaTable::new();
        t.set(Gid::new(2), 0);
        assert_eq!(t.get(Gid::new(2)), 0);
        assert_eq!(t.len(), 1);
    }
}
