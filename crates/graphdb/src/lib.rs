#![warn(missing_docs)]
//! The GraphDB service interface and in-memory backends.
//!
//! The thesis' single most load-bearing abstraction is the tiny `Graph`
//! interface of Listing 3.1: *store edges*, *get/set per-vertex metadata*,
//! and *retrieve an adjacency list filtered by metadata*. Every storage
//! engine — in-memory or out-of-core — implements it, and every analysis
//! (the out-of-core BFS in `mssg-core`) is written against it. None of the
//! methods communicate: they operate purely on data local to one back-end
//! node, and return the **empty set** for vertices stored elsewhere, which
//! is exactly what lets Algorithm 1 handle all distribution cases uniformly.
//!
//! This crate provides:
//! - [`GraphDb`] — the trait (Listing 3.1, plus the batch
//!   [`expand_fringe`](GraphDb::expand_fringe) entry point that StreamDB
//!   needs, per thesis §4.1.5),
//! - [`ArrayDb`] — the compressed-adjacency-list (CSR) backend (§4.1.1),
//! - [`HashMapDb`] — the hash-table-of-adjacency-lists backend (§4.1.2),
//! - [`MetaTable`] — the shared in-memory per-vertex metadata store,
//! - [`chunk`] — the 8 KB adjacency-list chunking shared by the MySQL and
//!   BerkeleyDB adapters (§4.1.3, Figure 4.3).

pub mod array;
pub mod chunk;
pub mod hashmap;
pub mod meta_table;
pub mod traits;

pub use array::ArrayDb;
pub use hashmap::HashMapDb;
pub use meta_table::MetaTable;
pub use traits::{GraphDb, GraphDbExt};
