//! The `GraphDb` trait — Rust rendering of thesis Listing 3.1.

use mssg_types::{AdjBuffer, Edge, Gid, Meta, MetaOp, Result};

/// The GraphDB service interface.
///
/// Semantics carried over from the thesis:
///
/// - All operations are **local**: no method communicates with other nodes.
/// - [`adjacency`](GraphDb::adjacency) **appends** the (filtered) neighbours
///   of `v` to `out` and returns the empty set for vertices this node does
///   not store — Algorithm 1 depends on that to handle every distribution
///   case without special-casing.
/// - The metadata filter compares each *neighbour's* metadata word against
///   the `meta` argument under `op` (so a BFS fringe expansion can ask the
///   engine for "neighbours not yet at this level" while the block is hot).
/// - Metadata of a vertex never seen defaults to
///   [`UNVISITED`](mssg_types::UNVISITED).
pub trait GraphDb {
    /// Stores a batch of directed adjacency entries. (The ingestion service
    /// materialises each undirected edge as two directed entries before
    /// calling this.)
    fn store_edges(&mut self, edges: &[Edge]) -> Result<()>;

    /// Reads the metadata word of `v`.
    fn get_metadata(&mut self, v: Gid) -> Result<Meta>;

    /// Writes the metadata word of `v`.
    fn set_metadata(&mut self, v: Gid, meta: Meta) -> Result<()>;

    /// Appends to `out` every neighbour `u` of `v` whose metadata satisfies
    /// `op` against `meta`. Unknown vertices contribute nothing.
    fn adjacency(&mut self, v: Gid, out: &mut AdjBuffer, meta: Meta, op: MetaOp) -> Result<()>;

    /// Expands a whole fringe at once: appends the filtered neighbours of
    /// every vertex in `fringe` to `out`.
    ///
    /// The default implementation loops over point lookups. StreamDB
    /// overrides it with a single scan of its edge log — the thesis'
    /// Active-Disk-style design requires search algorithms to "post a
    /// request for all of the fringe vertices at once".
    fn expand_fringe(
        &mut self,
        fringe: &[Gid],
        out: &mut AdjBuffer,
        meta: Meta,
        op: MetaOp,
    ) -> Result<()> {
        for &v in fringe {
            self.adjacency(v, out, meta, op)?;
        }
        Ok(())
    }

    /// `true` if per-vertex point lookups are efficient. StreamDB returns
    /// `false`: callers should batch through
    /// [`expand_fringe`](GraphDb::expand_fringe).
    fn supports_point_queries(&self) -> bool {
        true
    }

    /// Flushes buffered state to its final home (disk for out-of-core
    /// engines, the CSR arrays for `ArrayDb`). Called by the ingestion
    /// service when a stream ends.
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    /// Idle-time maintenance (e.g. grDB's background defragmentation).
    /// Default: nothing to do.
    fn maintenance(&mut self) -> Result<()> {
        Ok(())
    }

    /// The distinct source vertices stored locally (vertices whose
    /// adjacency list — or part of it, under edge granularity — lives on
    /// this node). Whole-graph analyses such as connected components use
    /// this to seed their per-node state.
    fn local_vertices(&mut self) -> Result<Vec<Gid>>;

    /// Number of directed adjacency entries stored locally.
    fn stored_entries(&self) -> u64;

    /// Block-cache counters `(hits, misses, evictions)` for engines that
    /// run one; `None` for engines without a cache. Feeds the
    /// `grdb.cache.*` gauges in cluster telemetry.
    fn cache_counters(&self) -> Option<(u64, u64, u64)> {
        None
    }

    /// Short engine name for reports ("Array", "grDB", …).
    fn backend_name(&self) -> &'static str;
}

/// Convenience helpers layered on [`GraphDb`].
pub trait GraphDbExt: GraphDb {
    /// All neighbours of `v`, unfiltered, as a fresh vector.
    fn neighbors(&mut self, v: Gid) -> Result<Vec<Gid>> {
        let mut buf = AdjBuffer::new();
        self.adjacency(v, &mut buf, 0, MetaOp::Ignore)?;
        Ok(buf.take())
    }

    /// Degree of `v` in this node's partition.
    fn degree(&mut self, v: Gid) -> Result<usize> {
        Ok(self.neighbors(v)?.len())
    }

    /// Stores one undirected edge as two directed entries.
    fn store_undirected(&mut self, e: Edge) -> Result<()> {
        self.store_edges(&[e, e.reversed()])
    }
}

impl<T: GraphDb + ?Sized> GraphDbExt for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// Minimal reference implementation used to pin the default-method
    /// behaviour of the trait itself.
    #[derive(Default)]
    struct ToyDb {
        adj: HashMap<Gid, Vec<Gid>>,
        meta: HashMap<Gid, Meta>,
        entries: u64,
    }

    impl GraphDb for ToyDb {
        fn store_edges(&mut self, edges: &[Edge]) -> Result<()> {
            for e in edges {
                self.adj.entry(e.src).or_default().push(e.dst);
                self.entries += 1;
            }
            Ok(())
        }

        fn get_metadata(&mut self, v: Gid) -> Result<Meta> {
            Ok(self.meta.get(&v).copied().unwrap_or(mssg_types::UNVISITED))
        }

        fn set_metadata(&mut self, v: Gid, meta: Meta) -> Result<()> {
            self.meta.insert(v, meta);
            Ok(())
        }

        fn adjacency(&mut self, v: Gid, out: &mut AdjBuffer, meta: Meta, op: MetaOp) -> Result<()> {
            let neighbours = match self.adj.get(&v) {
                Some(ns) => ns.clone(),
                None => return Ok(()),
            };
            for u in neighbours {
                let m = self.meta.get(&u).copied().unwrap_or(mssg_types::UNVISITED);
                if op.admits(m, meta) {
                    out.push(u);
                }
            }
            Ok(())
        }

        fn local_vertices(&mut self) -> Result<Vec<Gid>> {
            let mut vs: Vec<Gid> = self.adj.keys().copied().collect();
            vs.sort_unstable();
            Ok(vs)
        }

        fn stored_entries(&self) -> u64 {
            self.entries
        }

        fn backend_name(&self) -> &'static str {
            "Toy"
        }
    }

    #[test]
    fn default_expand_fringe_loops_point_queries() {
        let mut db = ToyDb::default();
        db.store_edges(&[Edge::of(0, 1), Edge::of(0, 2), Edge::of(3, 4)])
            .unwrap();
        let mut out = AdjBuffer::new();
        db.expand_fringe(&[Gid::new(0), Gid::new(3)], &mut out, 0, MetaOp::Ignore)
            .unwrap();
        let mut got = out.take();
        got.sort_unstable();
        assert_eq!(got, vec![Gid::new(1), Gid::new(2), Gid::new(4)]);
    }

    #[test]
    fn ext_neighbors_and_degree() {
        let mut db = ToyDb::default();
        db.store_undirected(Edge::of(7, 8)).unwrap();
        assert_eq!(db.neighbors(Gid::new(7)).unwrap(), vec![Gid::new(8)]);
        assert_eq!(db.degree(Gid::new(8)).unwrap(), 1);
        assert_eq!(db.degree(Gid::new(9)).unwrap(), 0);
    }

    #[test]
    fn unknown_vertex_is_empty_not_error() {
        let mut db = ToyDb::default();
        let mut out = AdjBuffer::new();
        db.adjacency(Gid::new(99), &mut out, 0, MetaOp::Ignore)
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn works_as_trait_object() {
        let mut db: Box<dyn GraphDb> = Box::new(ToyDb::default());
        db.store_edges(&[Edge::of(1, 2)]).unwrap();
        assert_eq!(db.stored_entries(), 1);
        // Ext methods resolve through the blanket impl for ?Sized.
        assert_eq!(db.neighbors(Gid::new(1)).unwrap(), vec![Gid::new(2)]);
    }
}
