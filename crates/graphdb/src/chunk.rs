//! Adjacency-list chunking for record stores — thesis §4.1.3, Figure 4.3.
//!
//! MySQL and BerkeleyDB both store a vertex's adjacency list serialised into
//! fixed-size binary blobs: "we chose to chunk the adjacency list into
//! standard-sized blocks (8 KB) … if the adjacency list of a vertex is too
//! large to fit into one row, it is split over multiple rows" keyed by
//! `(vertex, chunk_no)`. This module is the shared codec.
//!
//! Chunk wire format: `u32` count, then `count` little-endian `u64` vertex
//! words. A chunk of `CHUNK_BYTES` holds up to
//! `(CHUNK_BYTES - 4) / 8` entries.

use mssg_types::{Gid, GraphStorageError, Result};

/// The thesis' standard chunk size.
pub const CHUNK_BYTES: usize = 8 * 1024;

/// Entries that fit in one chunk of `chunk_bytes`.
pub const fn capacity(chunk_bytes: usize) -> usize {
    (chunk_bytes - 4) / 8
}

/// Serialises `neighbours` into chunks of at most `chunk_bytes` bytes.
/// Every chunk except possibly the last is full.
pub fn encode(neighbours: &[Gid], chunk_bytes: usize) -> Vec<Vec<u8>> {
    assert!(
        chunk_bytes >= 12,
        "chunk too small to hold a count and one entry"
    );
    let cap = capacity(chunk_bytes);
    let mut chunks = Vec::with_capacity(neighbours.len().div_ceil(cap).max(1));
    if neighbours.is_empty() {
        return chunks;
    }
    for group in neighbours.chunks(cap) {
        let mut buf = Vec::with_capacity(4 + group.len() * 8);
        buf.extend_from_slice(&(group.len() as u32).to_le_bytes());
        for g in group {
            buf.extend_from_slice(&g.raw().to_le_bytes());
        }
        chunks.push(buf);
    }
    chunks
}

/// Appends the contents of one chunk to `out`.
pub fn decode_into(chunk: &[u8], out: &mut Vec<Gid>) -> Result<()> {
    if chunk.len() < 4 {
        return Err(GraphStorageError::corrupt("chunk shorter than its header"));
    }
    let count = u32::from_le_bytes(chunk[..4].try_into().unwrap()) as usize;
    let need = 4 + count * 8;
    if chunk.len() < need {
        return Err(GraphStorageError::corrupt(format!(
            "chunk claims {count} entries but holds only {} bytes",
            chunk.len()
        )));
    }
    out.reserve(count);
    for i in 0..count {
        let off = 4 + i * 8;
        let word = u64::from_le_bytes(chunk[off..off + 8].try_into().unwrap());
        out.push(Gid::from_raw(word));
    }
    Ok(())
}

/// Decodes a full sequence of chunks into one adjacency list.
pub fn decode_all<'a>(chunks: impl Iterator<Item = &'a [u8]>) -> Result<Vec<Gid>> {
    let mut out = Vec::new();
    for c in chunks {
        decode_into(c, &mut out)?;
    }
    Ok(out)
}

/// Number of entries a chunk holds, without fully decoding it.
pub fn chunk_len(chunk: &[u8]) -> Result<usize> {
    if chunk.len() < 4 {
        return Err(GraphStorageError::corrupt("chunk shorter than its header"));
    }
    Ok(u32::from_le_bytes(chunk[..4].try_into().unwrap()) as usize)
}

/// `true` if one more entry still fits in a chunk of `chunk_bytes`.
pub fn has_room(chunk: &[u8], chunk_bytes: usize) -> Result<bool> {
    Ok(chunk_len(chunk)? < capacity(chunk_bytes))
}

/// Appends one entry to an existing (non-full) chunk in place.
pub fn append_entry(chunk: &mut Vec<u8>, g: Gid, chunk_bytes: usize) -> Result<()> {
    let len = chunk_len(chunk)?;
    if len >= capacity(chunk_bytes) {
        return Err(GraphStorageError::CapacityExceeded(format!(
            "chunk already holds {len} entries"
        )));
    }
    chunk[..4].copy_from_slice(&((len + 1) as u32).to_le_bytes());
    chunk.extend_from_slice(&g.raw().to_le_bytes());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gs(n: u64) -> Vec<Gid> {
        (0..n).map(Gid::new).collect()
    }

    #[test]
    fn empty_list_no_chunks() {
        assert!(encode(&[], CHUNK_BYTES).is_empty());
    }

    #[test]
    fn single_chunk_roundtrip() {
        let ns = gs(100);
        let chunks = encode(&ns, CHUNK_BYTES);
        assert_eq!(chunks.len(), 1);
        let back = decode_all(chunks.iter().map(|c| c.as_slice())).unwrap();
        assert_eq!(back, ns);
    }

    #[test]
    fn multi_chunk_roundtrip() {
        // 8 KB chunks hold (8192-4)/8 = 1023 entries.
        assert_eq!(capacity(CHUNK_BYTES), 1023);
        let ns = gs(3000);
        let chunks = encode(&ns, CHUNK_BYTES);
        assert_eq!(chunks.len(), 3); // 1023 + 1023 + 954
        assert_eq!(chunk_len(&chunks[0]).unwrap(), 1023);
        assert_eq!(chunk_len(&chunks[2]).unwrap(), 3000 - 2 * 1023);
        let back = decode_all(chunks.iter().map(|c| c.as_slice())).unwrap();
        assert_eq!(back, ns);
    }

    #[test]
    fn small_chunk_size() {
        let ns = gs(10);
        let chunks = encode(&ns, 28); // capacity 3
        assert_eq!(chunks.len(), 4);
        let back = decode_all(chunks.iter().map(|c| c.as_slice())).unwrap();
        assert_eq!(back, ns);
    }

    #[test]
    fn truncated_chunk_detected() {
        let mut c = encode(&gs(5), CHUNK_BYTES).remove(0);
        c.truncate(c.len() - 3);
        let mut out = Vec::new();
        assert!(decode_into(&c, &mut out).is_err());
        assert!(decode_into(&[1, 2], &mut out).is_err());
    }

    #[test]
    fn append_until_full() {
        let bytes = 28; // capacity 3
        let mut chunk = encode(&gs(1), bytes).remove(0);
        assert!(has_room(&chunk, bytes).unwrap());
        append_entry(&mut chunk, Gid::new(50), bytes).unwrap();
        append_entry(&mut chunk, Gid::new(51), bytes).unwrap();
        assert!(!has_room(&chunk, bytes).unwrap());
        assert!(append_entry(&mut chunk, Gid::new(52), bytes).is_err());
        let mut out = Vec::new();
        decode_into(&chunk, &mut out).unwrap();
        assert_eq!(out, vec![Gid::new(0), Gid::new(50), Gid::new(51)]);
    }

    #[test]
    fn tagged_words_pass_through() {
        let ns = vec![Gid::new(1), Gid::tagged(2, 99)];
        let chunks = encode(&ns, CHUNK_BYTES);
        let back = decode_all(chunks.iter().map(|c| c.as_slice())).unwrap();
        assert_eq!(back, ns);
    }
}
