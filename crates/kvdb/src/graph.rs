//! The BerkeleyDB-style GraphDB adapter — thesis §4.1.4.
//!
//! "The chunking technique used in the MySQL implementation is also used
//! here": each vertex's adjacency list is stored as a sequence of 8 KB
//! binary chunks in the record store, keyed by `(vertex, chunk_no)`. A
//! per-vertex directory record holds the chunk count so appends touch only
//! the last chunk.
//!
//! Key layout (big-endian so B-tree order clusters a vertex's records):
//! `[vertex u64 BE][chunk u32 BE]`, with chunk `0xFFFF_FFFF` reserved for
//! the directory record.

use crate::store::{KvOptions, KvStore};
use graphdb::chunk;
use graphdb::{GraphDb, MetaTable};
use mssg_types::{AdjBuffer, Edge, Gid, GraphStorageError, Meta, MetaOp, Result};
use simio::IoStats;
use std::path::Path;
use std::sync::Arc;

/// Directory record chunk number.
const DIR_CHUNK: u32 = u32::MAX;

/// GraphDB backend over the B-tree record store with 8 KB chunking.
pub struct BdbGraphDb {
    store: KvStore,
    chunk_bytes: usize,
    meta: MetaTable,
    entries: u64,
}

fn record_key(v: Gid, chunk_no: u32) -> [u8; 12] {
    let mut k = [0u8; 12];
    k[..8].copy_from_slice(&v.raw().to_be_bytes());
    k[8..].copy_from_slice(&chunk_no.to_be_bytes());
    k
}

impl BdbGraphDb {
    /// Opens a backend at `path` with the thesis' default 8 KB chunks.
    pub fn open(path: &Path, options: KvOptions, stats: Arc<IoStats>) -> Result<BdbGraphDb> {
        BdbGraphDb::with_chunk_bytes(path, options, stats, chunk::CHUNK_BYTES)
    }

    /// Opens with an explicit chunk size (tests use small chunks to force
    /// multi-chunk lists cheaply).
    pub fn with_chunk_bytes(
        path: &Path,
        options: KvOptions,
        stats: Arc<IoStats>,
        chunk_bytes: usize,
    ) -> Result<BdbGraphDb> {
        assert!(chunk_bytes >= 12, "chunk size too small");
        let store = KvStore::open(path, options, stats)?;
        Ok(BdbGraphDb {
            store,
            chunk_bytes,
            meta: MetaTable::new(),
            entries: 0,
        })
    }

    /// Buffer-pool statistics of the underlying store.
    pub fn cache_stats(&self) -> simio::CacheStats {
        self.store.cache_stats()
    }

    fn chunk_count(&mut self, v: Gid) -> Result<u32> {
        match self.store.get(&record_key(v, DIR_CHUNK))? {
            Some(bytes) => {
                let arr: [u8; 4] = bytes
                    .as_slice()
                    .try_into()
                    .map_err(|_| GraphStorageError::corrupt("bad directory record"))?;
                Ok(u32::from_be_bytes(arr))
            }
            None => Ok(0),
        }
    }

    fn set_chunk_count(&mut self, v: Gid, n: u32) -> Result<()> {
        self.store
            .put(&record_key(v, DIR_CHUNK), &n.to_be_bytes())?;
        Ok(())
    }

    /// Appends a group of neighbours to one vertex, reading and writing
    /// the tail chunk once per group — the same batching a careful
    /// BerkeleyDB client (and the MySQL adapter) performs.
    fn append_group(&mut self, v: Gid, neighbours: &[Gid]) -> Result<()> {
        let count = self.chunk_count(v)?;
        let mut tail: Option<Vec<u8>> = if count > 0 {
            Some(
                self.store
                    .get(&record_key(v, count - 1))?
                    .ok_or_else(|| GraphStorageError::corrupt("missing tail chunk"))?,
            )
        } else {
            None
        };
        let mut new_count = count;
        let mut tail_dirty = false;
        for &u in neighbours {
            let fits = match &tail {
                Some(t) => chunk::has_room(t, self.chunk_bytes)?,
                None => false,
            };
            if fits {
                chunk::append_entry(tail.as_mut().expect("checked"), u, self.chunk_bytes)?;
                tail_dirty = true;
            } else {
                if let Some(t) = tail.take() {
                    if tail_dirty {
                        self.store.put(&record_key(v, new_count - 1), &t)?;
                    }
                }
                tail = Some(chunk::encode(&[u], self.chunk_bytes).remove(0));
                tail_dirty = true;
                new_count += 1;
            }
        }
        if let Some(t) = tail {
            if tail_dirty {
                self.store.put(&record_key(v, new_count - 1), &t)?;
            }
        }
        if new_count != count {
            self.set_chunk_count(v, new_count)?;
        }
        Ok(())
    }
}

impl GraphDb for BdbGraphDb {
    fn store_edges(&mut self, edges: &[Edge]) -> Result<()> {
        // Group by source to amortise directory and tail-chunk lookups.
        let mut groups: std::collections::HashMap<Gid, Vec<Gid>> = std::collections::HashMap::new();
        for e in edges {
            groups.entry(e.src).or_default().push(e.dst);
            self.entries += 1;
        }
        for (v, ns) in groups {
            self.append_group(v, &ns)?;
        }
        Ok(())
    }

    fn get_metadata(&mut self, v: Gid) -> Result<Meta> {
        Ok(self.meta.get(v))
    }

    fn set_metadata(&mut self, v: Gid, meta: Meta) -> Result<()> {
        self.meta.set(v, meta);
        Ok(())
    }

    fn adjacency(&mut self, v: Gid, out: &mut AdjBuffer, meta: Meta, op: MetaOp) -> Result<()> {
        let count = self.chunk_count(v)?;
        let mut neighbours = Vec::new();
        for c in 0..count {
            let bytes = self
                .store
                .get(&record_key(v, c))?
                .ok_or_else(|| GraphStorageError::corrupt(format!("missing chunk {c}")))?;
            chunk::decode_into(&bytes, &mut neighbours)?;
        }
        for u in neighbours {
            if op.admits(self.meta.get(u), meta) {
                out.push(u);
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.store.flush()
    }

    fn local_vertices(&mut self) -> Result<Vec<Gid>> {
        // Directory records mark each stored vertex: key = [v BE][0xFFFFFFFF].
        let mut vs = Vec::new();
        self.store.for_each_range(None, None, &mut |k, _| {
            if k.len() == 12 && k[8..] == DIR_CHUNK.to_be_bytes() {
                let raw = u64::from_be_bytes(k[..8].try_into().unwrap());
                vs.push(Gid::from_raw(raw));
            }
            true
        })?;
        Ok(vs)
    }

    fn stored_entries(&self) -> u64 {
        self.entries
    }

    fn backend_name(&self) -> &'static str {
        "BerkeleyDB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdb::GraphDbExt;

    fn g(v: u64) -> Gid {
        Gid::new(v)
    }

    fn db(tag: &str, chunk_bytes: usize) -> BdbGraphDb {
        let d = std::env::temp_dir().join(format!("kvdb-graph-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(tag);
        let _ = std::fs::remove_file(&p);
        BdbGraphDb::with_chunk_bytes(&p, KvOptions::default(), IoStats::new(), chunk_bytes).unwrap()
    }

    #[test]
    fn store_and_read_small_list() {
        let mut b = db("small.db", 8192);
        b.store_edges(&[Edge::of(1, 2), Edge::of(1, 3), Edge::of(4, 1)])
            .unwrap();
        let mut n = b.neighbors(g(1)).unwrap();
        n.sort_unstable();
        assert_eq!(n, vec![g(2), g(3)]);
        assert_eq!(b.neighbors(g(4)).unwrap(), vec![g(1)]);
        assert_eq!(b.stored_entries(), 3);
    }

    #[test]
    fn multi_chunk_adjacency() {
        // Chunk of 28 bytes holds 3 entries; 10 neighbours = 4 chunks.
        let mut b = db("multichunk.db", 28);
        let edges: Vec<Edge> = (0..10).map(|i| Edge::of(7, 100 + i)).collect();
        b.store_edges(&edges).unwrap();
        let n = b.neighbors(g(7)).unwrap();
        assert_eq!(n.len(), 10);
        assert_eq!(n, (0..10).map(|i| g(100 + i)).collect::<Vec<_>>());
        assert_eq!(b.chunk_count(g(7)).unwrap(), 4);
    }

    #[test]
    fn unknown_vertex_empty() {
        let mut b = db("unknown.db", 8192);
        assert!(b.neighbors(g(9)).unwrap().is_empty());
    }

    #[test]
    fn metadata_filtering() {
        let mut b = db("meta.db", 8192);
        b.store_edges(&[Edge::of(0, 1), Edge::of(0, 2)]).unwrap();
        b.set_metadata(g(1), 3).unwrap();
        let mut out = AdjBuffer::new();
        b.adjacency(g(0), &mut out, 3, MetaOp::Equal).unwrap();
        assert_eq!(out.as_slice(), &[g(1)]);
    }

    #[test]
    fn interleaved_vertices() {
        let mut b = db("interleaved.db", 28);
        // Alternate appends across vertices to exercise tail-chunk reuse.
        for i in 0..12u64 {
            b.store_edges(&[Edge::of(i % 3, 50 + i)]).unwrap();
        }
        for v in 0..3u64 {
            let n = b.neighbors(g(v)).unwrap();
            assert_eq!(n.len(), 4, "vertex {v}");
            assert!(n.iter().all(|u| (u.raw() - 50) % 3 == v));
        }
    }

    #[test]
    fn persistence() {
        let d = std::env::temp_dir().join(format!("kvdb-graph-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("persist.db");
        let _ = std::fs::remove_file(&p);
        {
            let mut b =
                BdbGraphDb::with_chunk_bytes(&p, KvOptions::default(), IoStats::new(), 28).unwrap();
            let edges: Vec<Edge> = (0..20).map(|i| Edge::of(5, i)).collect();
            b.store_edges(&edges).unwrap();
            b.flush().unwrap();
        }
        let mut b =
            BdbGraphDb::with_chunk_bytes(&p, KvOptions::default(), IoStats::new(), 28).unwrap();
        assert_eq!(b.neighbors(g(5)).unwrap().len(), 20);
    }

    #[test]
    fn agrees_with_hashmap_reference() {
        use graphdb::HashMapDb;
        let mut b = db("agree.db", 28);
        let mut h = HashMapDb::new();
        let mut x = 7u64;
        let mut edges = Vec::new();
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let e = Edge::of(x % 25, (x >> 16) % 25);
            edges.push(e);
        }
        b.store_edges(&edges).unwrap();
        h.store_edges(&edges).unwrap();
        for v in 0..25u64 {
            let mut nb = b.neighbors(g(v)).unwrap();
            let mut nh = h.neighbors(g(v)).unwrap();
            nb.sort_unstable();
            nh.sort_unstable();
            assert_eq!(nb, nh, "vertex {v}");
        }
    }
}
