//! The public key-value store API.

use crate::pager::Pager;
use crate::tree;
use mssg_types::Result;
use simio::{CachePolicy, CacheStats, IoStats};
use std::path::Path;
use std::sync::Arc;

/// Tuning options for a [`KvStore`].
#[derive(Clone, Debug)]
pub struct KvOptions {
    /// Page size in bytes (power of two recommended). Default 4096.
    pub page_size: usize,
    /// Buffer-pool capacity in pages. 0 disables caching — the Figure 5.2
    /// "without cache" configuration.
    pub cache_pages: usize,
    /// Buffer-pool replacement policy.
    pub cache_policy: CachePolicy,
}

impl Default for KvOptions {
    fn default() -> Self {
        KvOptions {
            page_size: 4096,
            cache_pages: 1024,
            cache_policy: CachePolicy::Lru,
        }
    }
}

impl KvOptions {
    /// Default options with the cache disabled.
    pub fn uncached() -> KvOptions {
        KvOptions {
            cache_pages: 0,
            ..Default::default()
        }
    }
}

/// A single-file B-tree key-value store (the BerkeleyDB stand-in).
///
/// ```
/// use kvdb::KvStore;
/// let dir = std::env::temp_dir().join("kvdb-doc");
/// std::fs::create_dir_all(&dir).unwrap();
/// let path = dir.join("example.db");
/// let _ = std::fs::remove_file(&path);
///
/// let mut store = KvStore::open_default(&path).unwrap();
/// store.put(b"alpha", b"1").unwrap();
/// store.put(b"beta", b"2").unwrap();
/// assert_eq!(store.get(b"alpha").unwrap(), Some(b"1".to_vec()));
/// assert_eq!(store.len(), 2);
///
/// // Ordered range scans:
/// let all = store.range_to_vec(None, None).unwrap();
/// assert_eq!(all[0].0, b"alpha");
/// ```
pub struct KvStore {
    pager: Pager,
}

impl KvStore {
    /// Opens or creates a store at `path`.
    pub fn open(path: &Path, options: KvOptions, stats: Arc<IoStats>) -> Result<KvStore> {
        Ok(KvStore {
            pager: Pager::open(
                path,
                options.page_size,
                options.cache_pages,
                options.cache_policy,
                stats,
            )?,
        })
    }

    /// Opens with default options and fresh statistics.
    pub fn open_default(path: &Path) -> Result<KvStore> {
        KvStore::open(path, KvOptions::default(), IoStats::new())
    }

    /// Looks up a key.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        tree::get(&mut self.pager, key)
    }

    /// Inserts or replaces a key. Returns `true` if the key was new.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<bool> {
        tree::put(&mut self.pager, key, value)
    }

    /// Removes a key. Returns `true` if it existed.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        tree::delete(&mut self.pager, key)
    }

    /// Number of live keys.
    pub fn len(&self) -> u64 {
        self.pager.len
    }

    /// `true` when the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.pager.len == 0
    }

    /// Visits all keys in `[start, end)` in order; see
    /// [`tree::for_each_range`].
    pub fn for_each_range(
        &mut self,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
        cb: &mut dyn FnMut(&[u8], Vec<u8>) -> bool,
    ) -> Result<()> {
        tree::for_each_range(&mut self.pager, start, end, cb)
    }

    /// Visits every key sharing `prefix`, in order.
    pub fn for_each_prefix(
        &mut self,
        prefix: &[u8],
        cb: &mut dyn FnMut(&[u8], Vec<u8>) -> bool,
    ) -> Result<()> {
        let end = prefix_end(prefix);
        tree::for_each_range(&mut self.pager, Some(prefix), end.as_deref(), cb)
    }

    /// Collects a range into a vector (testing / small scans).
    pub fn range_to_vec(
        &mut self,
        start: Option<&[u8]>,
        end: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each_range(start, end, &mut |k, v| {
            out.push((k.to_vec(), v));
            true
        })?;
        Ok(out)
    }

    /// Writes dirty pages and the header to disk.
    pub fn flush(&mut self) -> Result<()> {
        self.pager.flush()
    }

    /// Buffer-pool statistics.
    pub fn cache_stats(&self) -> CacheStats {
        self.pager.cache_stats()
    }
}

/// Smallest key strictly greater than every key with `prefix`, or `None`
/// if the prefix is all `0xff` (scan to the end).
fn prefix_end(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut end = prefix.to_vec();
    while let Some(last) = end.last_mut() {
        if *last < 0xff {
            *last += 1;
            return Some(end);
        }
        end.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: &str) -> KvStore {
        let d = std::env::temp_dir().join(format!("kvdb-store-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(tag);
        let _ = std::fs::remove_file(&p);
        KvStore::open_default(&p).unwrap()
    }

    #[test]
    fn basic_crud() {
        let mut s = store("crud.db");
        assert!(s.is_empty());
        s.put(b"a", b"1").unwrap();
        s.put(b"b", b"2").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert!(s.delete(b"a").unwrap());
        assert_eq!(s.get(b"a").unwrap(), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn prefix_scan() {
        let mut s = store("prefix.db");
        s.put(b"user:1", b"alice").unwrap();
        s.put(b"user:2", b"bob").unwrap();
        s.put(b"item:1", b"hammer").unwrap();
        let mut names = Vec::new();
        s.for_each_prefix(b"user:", &mut |_, v| {
            names.push(String::from_utf8(v).unwrap());
            true
        })
        .unwrap();
        assert_eq!(names, vec!["alice", "bob"]);
    }

    #[test]
    fn prefix_end_edge_cases() {
        assert_eq!(prefix_end(b"ab"), Some(b"ac".to_vec()));
        assert_eq!(prefix_end(&[0x01, 0xff]), Some(vec![0x02]));
        assert_eq!(prefix_end(&[0xff, 0xff]), None);
    }

    #[test]
    fn range_to_vec_sorted() {
        let mut s = store("rangevec.db");
        for i in [5u32, 1, 9, 3] {
            s.put(&i.to_be_bytes(), b"x").unwrap();
        }
        let all = s.range_to_vec(None, None).unwrap();
        let keys: Vec<u32> = all
            .iter()
            .map(|(k, _)| u32::from_be_bytes(k.as_slice().try_into().unwrap()))
            .collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
    }

    #[test]
    fn uncached_store_works() {
        let d = std::env::temp_dir().join(format!("kvdb-store-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("uncached.db");
        let _ = std::fs::remove_file(&p);
        let mut s = KvStore::open(&p, KvOptions::uncached(), IoStats::new()).unwrap();
        for i in 0..200u32 {
            s.put(&i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
        for i in 0..200u32 {
            assert_eq!(
                s.get(&i.to_be_bytes()).unwrap(),
                Some(i.to_le_bytes().to_vec())
            );
        }
        assert_eq!(s.cache_stats().hits, 0, "disabled cache can never hit");
    }

    #[test]
    fn cache_reduces_io() {
        let d = std::env::temp_dir().join(format!("kvdb-store-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        // Same workload with and without cache; cached must do fewer reads.
        let mut reads = Vec::new();
        for (tag, opts) in [
            ("io-c.db", KvOptions::default()),
            ("io-u.db", KvOptions::uncached()),
        ] {
            let p = d.join(tag);
            let _ = std::fs::remove_file(&p);
            let stats = IoStats::new();
            let mut s = KvStore::open(&p, opts, Arc::clone(&stats)).unwrap();
            for i in 0..500u32 {
                s.put(&i.to_be_bytes(), &[0u8; 32]).unwrap();
            }
            for _ in 0..3 {
                for i in 0..500u32 {
                    s.get(&i.to_be_bytes()).unwrap();
                }
            }
            reads.push(stats.snapshot().block_reads);
        }
        assert!(
            reads[0] < reads[1] / 4,
            "cached reads {} should be far below uncached {}",
            reads[0],
            reads[1]
        );
    }
}
