//! Page allocation and caching.
//!
//! The pager owns the store's [`BlockFile`] and its [`BlockCache`] (the
//! BerkeleyDB-style buffer pool). All tree code goes through
//! [`Pager::read_page`] / [`Pager::write_page`]; the cache is write-back,
//! so dirty pages hit disk only on eviction or [`Pager::flush`] — disabling
//! the cache (capacity 0) degrades every access to disk I/O, which is
//! exactly the knob Figure 5.2 turns.

use crate::page::Page;
use mssg_types::{GraphStorageError, Result};
use simio::{BlockCache, BlockFile, CacheKey, CachePolicy, IoStats};
use std::path::Path;
use std::sync::Arc;

/// Space id used for this store's pages in the shared cache key space.
const SPACE: u32 = 0;

/// Page manager: file + cache + meta page + free list.
pub struct Pager {
    file: BlockFile,
    cache: BlockCache,
    page_size: usize,
    /// In-memory copy of the meta page; persisted on flush.
    pub(crate) root: u64,
    pub(crate) pages: u64,
    pub(crate) free_head: u64,
    pub(crate) len: u64,
}

impl Pager {
    /// Opens or creates a store file.
    pub fn open(
        path: &Path,
        page_size: usize,
        cache_pages: usize,
        policy: CachePolicy,
        stats: Arc<IoStats>,
    ) -> Result<Pager> {
        let mut file = BlockFile::open(path, page_size, stats)?;
        let cache = BlockCache::new(cache_pages, policy);
        if file.len_blocks() == 0 {
            // Fresh store: meta page + empty leaf root.
            let mut pager = Pager {
                file,
                cache,
                page_size,
                root: 1,
                pages: 2,
                free_head: 0,
                len: 0,
            };
            let meta = Page::Meta {
                root: 1,
                pages: 2,
                free_head: 0,
                len: 0,
            }
            .encode(page_size)?;
            pager.file.write_block(0, &meta)?;
            let leaf = Page::Leaf { entries: vec![] }.encode(page_size)?;
            pager.file.write_block(1, &leaf)?;
            Ok(pager)
        } else {
            let mut buf = vec![0u8; page_size];
            file.read_block(0, &mut buf)?;
            match Page::decode(&buf, page_size)? {
                Page::Meta {
                    root,
                    pages,
                    free_head,
                    len,
                } => {
                    if pages != file.len_blocks() {
                        return Err(GraphStorageError::corrupt(format!(
                            "meta page says {pages} pages, file has {}",
                            file.len_blocks()
                        )));
                    }
                    Ok(Pager {
                        file,
                        cache,
                        page_size,
                        root,
                        pages,
                        free_head,
                        len,
                    })
                }
                _ => Err(GraphStorageError::corrupt("page 0 is not a meta page")),
            }
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Cache statistics (for the Figure 5.2 experiment).
    pub fn cache_stats(&self) -> simio::CacheStats {
        self.cache.stats()
    }

    /// Reads and decodes page `id`, going through the cache.
    pub fn read_page(&mut self, id: u64) -> Result<Page> {
        if id == 0 || id >= self.pages {
            return Err(GraphStorageError::corrupt(format!(
                "page id {id} out of range (pages={})",
                self.pages
            )));
        }
        let key = CacheKey::new(SPACE, id);
        if let Some(bytes) = self.cache.get(key) {
            return Page::decode(bytes, self.page_size);
        }
        let mut buf = vec![0u8; self.page_size];
        self.file.read_block(id, &mut buf)?;
        let page = Page::decode(&buf, self.page_size)?;
        if let Some(ev) = self.cache.insert(key, buf, false) {
            if ev.dirty {
                self.file.write_block(ev.key.block, &ev.data)?;
            }
        }
        Ok(page)
    }

    /// Encodes and writes page `id` (into the cache; disk on eviction).
    pub fn write_page(&mut self, id: u64, page: &Page) -> Result<()> {
        if id == 0 || id >= self.pages {
            return Err(GraphStorageError::corrupt(format!(
                "write to page id {id} out of range (pages={})",
                self.pages
            )));
        }
        let bytes = page.encode(self.page_size)?;
        match self.cache.insert(CacheKey::new(SPACE, id), bytes, true) {
            // Capacity-0 cache hands the page straight back.
            Some(ev) if ev.key.block == id => self.file.write_block(id, &ev.data)?,
            Some(ev) if ev.dirty => self.file.write_block(ev.key.block, &ev.data)?,
            _ => {}
        }
        Ok(())
    }

    /// Allocates a page, reusing the free list when possible.
    pub fn allocate(&mut self) -> Result<u64> {
        if self.free_head != 0 {
            let id = self.free_head;
            match self.read_page(id)? {
                Page::Free { next } => {
                    self.free_head = next;
                    Ok(id)
                }
                _ => Err(GraphStorageError::corrupt(format!(
                    "free list head {id} is not a free page"
                ))),
            }
        } else {
            let id = self.pages;
            self.pages += 1;
            // Materialise the block on disk so the file length tracks
            // `pages` (cache inserts alone do not extend the file).
            let zero = Page::Free { next: 0 }.encode(self.page_size)?;
            self.file.write_block(id, &zero)?;
            Ok(id)
        }
    }

    /// Returns a page to the free list.
    pub fn free(&mut self, id: u64) -> Result<()> {
        let page = Page::Free {
            next: self.free_head,
        };
        self.write_page(id, &page)?;
        self.free_head = id;
        Ok(())
    }

    /// Writes back every dirty cached page plus the meta page, then syncs.
    pub fn flush(&mut self) -> Result<()> {
        for ev in self.cache.flush_dirty() {
            self.file.write_block(ev.key.block, &ev.data)?;
        }
        let meta = Page::Meta {
            root: self.root,
            pages: self.pages,
            free_head: self.free_head,
            len: self.len,
        }
        .encode(self.page_size)?;
        self.file.write_block(0, &meta)?;
        self.file.sync()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::LeafValue;

    fn tmppath(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("kvdb-pager-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(tag);
        let _ = std::fs::remove_file(&p);
        p
    }

    fn open(tag: &str, cache: usize) -> Pager {
        Pager::open(&tmppath(tag), 256, cache, CachePolicy::Lru, IoStats::new()).unwrap()
    }

    #[test]
    fn fresh_store_has_empty_root_leaf() {
        let mut p = open("fresh.db", 8);
        assert_eq!(p.root, 1);
        assert_eq!(p.read_page(1).unwrap(), Page::Leaf { entries: vec![] });
    }

    #[test]
    fn write_read_through_cache() {
        let mut p = open("wr.db", 8);
        let page = Page::Leaf {
            entries: vec![(b"k".to_vec(), LeafValue::Inline(b"v".to_vec()))],
        };
        p.write_page(1, &page).unwrap();
        assert_eq!(p.read_page(1).unwrap(), page);
    }

    #[test]
    fn allocate_extends_then_reuses() {
        let mut p = open("alloc.db", 8);
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        assert_eq!((a, b), (2, 3));
        p.free(a).unwrap();
        assert_eq!(p.allocate().unwrap(), a, "free list reuse");
        assert_eq!(p.allocate().unwrap(), 4);
    }

    #[test]
    fn persistence_across_reopen() {
        let path = tmppath("persist.db");
        {
            let mut p = Pager::open(&path, 256, 8, CachePolicy::Lru, IoStats::new()).unwrap();
            let id = p.allocate().unwrap();
            p.write_page(
                id,
                &Page::Overflow {
                    next: 0,
                    data: vec![5u8; 50],
                },
            )
            .unwrap();
            p.root = id;
            p.len = 123;
            p.flush().unwrap();
        }
        let mut p = Pager::open(&path, 256, 8, CachePolicy::Lru, IoStats::new()).unwrap();
        assert_eq!(p.len, 123);
        let root = p.root;
        assert_eq!(
            p.read_page(root).unwrap(),
            Page::Overflow {
                next: 0,
                data: vec![5u8; 50]
            }
        );
    }

    #[test]
    fn zero_cache_goes_straight_to_disk() {
        let stats = IoStats::new();
        let path = tmppath("nocache.db");
        let mut p = Pager::open(&path, 256, 0, CachePolicy::Lru, Arc::clone(&stats)).unwrap();
        let before = stats.snapshot();
        let page = Page::Leaf { entries: vec![] };
        p.write_page(1, &page).unwrap();
        p.read_page(1).unwrap();
        let delta = stats.snapshot().since(&before);
        assert_eq!(delta.block_writes, 1);
        assert_eq!(delta.block_reads, 1);
    }

    #[test]
    fn cached_reads_avoid_disk() {
        let stats = IoStats::new();
        let path = tmppath("cached.db");
        let mut p = Pager::open(&path, 256, 8, CachePolicy::Lru, Arc::clone(&stats)).unwrap();
        p.read_page(1).unwrap();
        let before = stats.snapshot();
        for _ in 0..10 {
            p.read_page(1).unwrap();
        }
        assert_eq!(stats.snapshot().since(&before).block_reads, 0);
        assert_eq!(p.cache_stats().hits, 10);
    }

    #[test]
    fn out_of_range_page_rejected() {
        let mut p = open("oob.db", 8);
        assert!(
            p.read_page(0).is_err(),
            "meta page not readable as tree page"
        );
        assert!(p.read_page(99).is_err());
        assert!(p.write_page(99, &Page::Free { next: 0 }).is_err());
    }

    #[test]
    fn meta_mismatch_detected() {
        let path = tmppath("badmeta.db");
        {
            let mut p = Pager::open(&path, 256, 8, CachePolicy::Lru, IoStats::new()).unwrap();
            p.flush().unwrap();
        }
        // Append a stray block so the page count disagrees with meta.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&vec![0u8; 256]).unwrap();
        drop(f);
        assert!(Pager::open(&path, 256, 8, CachePolicy::Lru, IoStats::new()).is_err());
    }
}
