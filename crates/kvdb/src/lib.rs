#![warn(missing_docs)]
//! `kvdb` — a disk-backed B-tree key-value store.
//!
//! This crate is the workspace's substitute for BerkeleyDB (thesis §4.1.4):
//! a transactional-database-free, SQL-free, embeddable record store whose
//! access path is a B-tree of fixed-size pages behind a block cache. The
//! MSSG prototype stores each vertex's adjacency list in 8 KB chunks keyed
//! by `(vertex, chunk_no)`; [`BdbGraphDb`] reproduces that adapter on top of
//! the generic [`KvStore`].
//!
//! Layout:
//! - [`page`] — on-disk page format (leaf / internal / overflow / meta),
//! - [`pager`] — page allocation, free list, block cache integration,
//! - [`tree`] — B-tree search / insert / split / delete / scan,
//! - [`store`] — the public [`KvStore`] API,
//! - [`graph`] — the [`BdbGraphDb`] GraphDB adapter with the thesis' 8 KB
//!   chunking.
//!
//! The `minisql` crate reuses [`KvStore`] as its secondary-index engine, so
//! the MySQL-substitute's index path and the BerkeleyDB-substitute share
//! one B-tree implementation — mirroring how both real systems are built on
//! B-trees.

pub mod graph;
pub mod page;
pub mod pager;
pub mod store;
pub mod tree;

pub use graph::BdbGraphDb;
pub use store::{KvOptions, KvStore};
