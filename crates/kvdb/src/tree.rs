//! B-tree search, insertion (with node splits), deletion, and range scans,
//! all expressed over a [`Pager`].
//!
//! Design notes:
//! - Separator convention: in an internal node, `children[i]` holds keys
//!   `< keys[i]` and `children[i+1]` holds keys `>= keys[i]`; the child for
//!   a lookup is `partition_point(keys, k <= target)`.
//! - Splits are size-driven: a node splits when its encoding no longer fits
//!   the page, so the tree adapts to variable-length keys and values.
//! - Deletion is lazy (no merging/rebalancing) — BerkeleyDB behaves the
//!   same way by default; freed overflow chains are recycled.
//! - Values larger than `page_size / 4` spill to overflow chains.

use crate::page::{LeafValue, Page};
use crate::pager::Pager;
use mssg_types::{GraphStorageError, Result};

/// Largest value stored inline in a leaf.
pub fn inline_threshold(page_size: usize) -> usize {
    page_size / 4
}

/// Largest allowed key; guarantees splits always terminate.
pub fn max_key_len(page_size: usize) -> usize {
    page_size / 8
}

/// Looks up `key`, materialising overflow values.
pub fn get(pager: &mut Pager, key: &[u8]) -> Result<Option<Vec<u8>>> {
    let mut page_id = pager.root;
    loop {
        match pager.read_page(page_id)? {
            Page::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                page_id = children[idx];
            }
            Page::Leaf { entries } => {
                return match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => Ok(Some(read_value(pager, &entries[i].1)?)),
                    Err(_) => Ok(None),
                };
            }
            _ => {
                return Err(GraphStorageError::corrupt(
                    "tree descent hit a non-tree page",
                ))
            }
        }
    }
}

/// Inserts or replaces `key`. Returns `true` if the key was new.
pub fn put(pager: &mut Pager, key: &[u8], value: &[u8]) -> Result<bool> {
    let ps = pager.page_size();
    if key.is_empty() || key.len() > max_key_len(ps) {
        return Err(GraphStorageError::InvalidVertex(format!(
            "key length {} outside 1..={}",
            key.len(),
            max_key_len(ps)
        )));
    }
    let leaf_value = if value.len() > inline_threshold(ps) {
        let (first_page, total_len) = write_overflow(pager, value)?;
        LeafValue::Overflow {
            first_page,
            total_len,
        }
    } else {
        LeafValue::Inline(value.to_vec())
    };

    // Descend, recording the path of (page_id, child_idx).
    let mut path: Vec<(u64, usize)> = Vec::new();
    let mut page_id = pager.root;
    let mut leaf_entries = loop {
        match pager.read_page(page_id)? {
            Page::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                path.push((page_id, idx));
                page_id = children[idx];
            }
            Page::Leaf { entries } => break entries,
            _ => {
                return Err(GraphStorageError::corrupt(
                    "tree descent hit a non-tree page",
                ))
            }
        }
    };

    let inserted = match leaf_entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
        Ok(i) => {
            // Replace: free any old overflow chain.
            if let LeafValue::Overflow { first_page, .. } = leaf_entries[i].1 {
                free_overflow(pager, first_page)?;
            }
            leaf_entries[i].1 = leaf_value;
            false
        }
        Err(i) => {
            leaf_entries.insert(i, (key.to_vec(), leaf_value));
            true
        }
    };
    if inserted {
        pager.len += 1;
    }

    // Write the leaf back, splitting as needed, then propagate splits up.
    let mut pending = write_maybe_split_leaf(pager, page_id, leaf_entries)?;
    while let Some((sep, right_id)) = pending {
        match path.pop() {
            Some((parent_id, child_idx)) => {
                let (mut keys, mut children) = match pager.read_page(parent_id)? {
                    Page::Internal { keys, children } => (keys, children),
                    _ => return Err(GraphStorageError::corrupt("split parent is not internal")),
                };
                keys.insert(child_idx, sep);
                children.insert(child_idx + 1, right_id);
                pending = write_maybe_split_internal(pager, parent_id, keys, children)?;
            }
            None => {
                // Root split: grow the tree by one level.
                let old_root = pager.root;
                let new_root = pager.allocate()?;
                pager.write_page(
                    new_root,
                    &Page::Internal {
                        keys: vec![sep],
                        children: vec![old_root, right_id],
                    },
                )?;
                pager.root = new_root;
                pending = None;
            }
        }
    }
    Ok(inserted)
}

/// Removes `key`. Returns `true` if it was present.
pub fn delete(pager: &mut Pager, key: &[u8]) -> Result<bool> {
    let mut page_id = pager.root;
    loop {
        match pager.read_page(page_id)? {
            Page::Internal { keys, children } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                page_id = children[idx];
            }
            Page::Leaf { mut entries } => {
                return match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        let (_, value) = entries.remove(i);
                        if let LeafValue::Overflow { first_page, .. } = value {
                            free_overflow(pager, first_page)?;
                        }
                        pager.write_page(page_id, &Page::Leaf { entries })?;
                        pager.len -= 1;
                        Ok(true)
                    }
                    Err(_) => Ok(false),
                };
            }
            _ => {
                return Err(GraphStorageError::corrupt(
                    "tree descent hit a non-tree page",
                ))
            }
        }
    }
}

/// Visits every `(key, value)` with `start <= key < end` in key order
/// (`None` bounds are open). The callback returns `false` to stop early.
pub fn for_each_range(
    pager: &mut Pager,
    start: Option<&[u8]>,
    end: Option<&[u8]>,
    cb: &mut dyn FnMut(&[u8], Vec<u8>) -> bool,
) -> Result<()> {
    let root = pager.root;
    visit(pager, root, start, end, cb)?;
    Ok(())
}

/// Recursive range visitor; returns `false` when the callback stopped.
fn visit(
    pager: &mut Pager,
    page_id: u64,
    start: Option<&[u8]>,
    end: Option<&[u8]>,
    cb: &mut dyn FnMut(&[u8], Vec<u8>) -> bool,
) -> Result<bool> {
    match pager.read_page(page_id)? {
        Page::Internal { keys, children } => {
            let first = match start {
                Some(s) => keys.partition_point(|k| k.as_slice() <= s),
                None => 0,
            };
            let last = match end {
                Some(e) => keys.partition_point(|k| k.as_slice() < e),
                None => keys.len(),
            };
            for child in children[first..=last].iter().copied() {
                if !visit(pager, child, start, end, cb)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Page::Leaf { entries } => {
            for (k, v) in entries {
                if let Some(s) = start {
                    if k.as_slice() < s {
                        continue;
                    }
                }
                if let Some(e) = end {
                    if k.as_slice() >= e {
                        return Ok(false);
                    }
                }
                let value = read_value(pager, &v)?;
                if !cb(&k, value) {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        _ => Err(GraphStorageError::corrupt("range scan hit a non-tree page")),
    }
}

/// Writes a leaf back, splitting if it no longer fits. Returns the promoted
/// `(separator, right_page)` if a split happened.
fn write_maybe_split_leaf(
    pager: &mut Pager,
    page_id: u64,
    entries: Vec<(Vec<u8>, LeafValue)>,
) -> Result<Option<(Vec<u8>, u64)>> {
    let ps = pager.page_size();
    let page = Page::Leaf { entries };
    if page.encoded_len() <= ps {
        pager.write_page(page_id, &page)?;
        return Ok(None);
    }
    let Page::Leaf { entries } = page else {
        unreachable!()
    };
    let mid = split_point_leaf(&entries, ps);
    let right_entries = entries[mid..].to_vec();
    let left_entries = entries[..mid].to_vec();
    let sep = right_entries[0].0.clone();
    let right_id = pager.allocate()?;
    pager.write_page(
        page_id,
        &Page::Leaf {
            entries: left_entries,
        },
    )?;
    pager.write_page(
        right_id,
        &Page::Leaf {
            entries: right_entries,
        },
    )?;
    Ok(Some((sep, right_id)))
}

/// Split point that keeps both halves under the page size (by encoded
/// bytes, since entries vary in size).
fn split_point_leaf(entries: &[(Vec<u8>, LeafValue)], _ps: usize) -> usize {
    let total: usize = entries
        .iter()
        .map(|(k, v)| 2 + k.len() + v.encoded_len())
        .sum();
    let mut acc = 0usize;
    for (i, (k, v)) in entries.iter().enumerate() {
        acc += 2 + k.len() + v.encoded_len();
        if acc * 2 >= total {
            // Never produce an empty side.
            return (i + 1).min(entries.len() - 1).max(1);
        }
    }
    entries.len() / 2
}

/// Writes an internal node back, splitting if needed.
fn write_maybe_split_internal(
    pager: &mut Pager,
    page_id: u64,
    keys: Vec<Vec<u8>>,
    children: Vec<u64>,
) -> Result<Option<(Vec<u8>, u64)>> {
    let ps = pager.page_size();
    let page = Page::Internal { keys, children };
    if page.encoded_len() <= ps {
        pager.write_page(page_id, &page)?;
        return Ok(None);
    }
    let Page::Internal {
        mut keys,
        mut children,
    } = page
    else {
        unreachable!()
    };
    let mid = keys.len() / 2;
    let promoted = keys[mid].clone();
    let right_keys = keys.split_off(mid + 1);
    keys.pop(); // `promoted` moves up, not right.
    let right_children = children.split_off(mid + 1);
    let right_id = pager.allocate()?;
    pager.write_page(page_id, &Page::Internal { keys, children })?;
    pager.write_page(
        right_id,
        &Page::Internal {
            keys: right_keys,
            children: right_children,
        },
    )?;
    Ok(Some((promoted, right_id)))
}

/// Materialises a leaf value (following overflow chains).
pub fn read_value(pager: &mut Pager, value: &LeafValue) -> Result<Vec<u8>> {
    match value {
        LeafValue::Inline(v) => Ok(v.clone()),
        LeafValue::Overflow {
            first_page,
            total_len,
        } => {
            let mut out = Vec::with_capacity(*total_len as usize);
            let mut page_id = *first_page;
            while page_id != 0 {
                match pager.read_page(page_id)? {
                    Page::Overflow { next, data } => {
                        out.extend_from_slice(&data);
                        page_id = next;
                    }
                    _ => {
                        return Err(GraphStorageError::corrupt(
                            "overflow chain hit a non-overflow page",
                        ))
                    }
                }
            }
            if out.len() as u64 != *total_len {
                return Err(GraphStorageError::corrupt(format!(
                    "overflow chain yielded {} bytes, expected {total_len}",
                    out.len()
                )));
            }
            Ok(out)
        }
    }
}

/// Writes `value` into a fresh overflow chain; returns `(first_page, len)`.
fn write_overflow(pager: &mut Pager, value: &[u8]) -> Result<(u64, u64)> {
    let ps = pager.page_size();
    let chunk = ps - 13; // tag + next(8) + len(4)
    let mut pieces: Vec<&[u8]> = value.chunks(chunk).collect();
    if pieces.is_empty() {
        pieces.push(&[]);
    }
    // Allocate then link back-to-front so each page knows its successor.
    let ids: Vec<u64> = pieces
        .iter()
        .map(|_| pager.allocate())
        .collect::<Result<_>>()?;
    for (i, piece) in pieces.iter().enumerate() {
        let next = ids.get(i + 1).copied().unwrap_or(0);
        pager.write_page(
            ids[i],
            &Page::Overflow {
                next,
                data: piece.to_vec(),
            },
        )?;
    }
    Ok((ids[0], value.len() as u64))
}

/// Frees an overflow chain starting at `first_page`.
fn free_overflow(pager: &mut Pager, first_page: u64) -> Result<()> {
    let mut page_id = first_page;
    while page_id != 0 {
        let next = match pager.read_page(page_id)? {
            Page::Overflow { next, .. } => next,
            _ => return Err(GraphStorageError::corrupt("freeing a non-overflow page")),
        };
        pager.free(page_id)?;
        page_id = next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use simio::{CachePolicy, IoStats};

    fn pager(tag: &str, page_size: usize) -> Pager {
        let d = std::env::temp_dir().join(format!("kvdb-tree-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(tag);
        let _ = std::fs::remove_file(&p);
        Pager::open(&p, page_size, 64, CachePolicy::Lru, IoStats::new()).unwrap()
    }

    #[test]
    fn put_get_single() {
        let mut p = pager("single.db", 256);
        assert!(put(&mut p, b"hello", b"world").unwrap());
        assert_eq!(get(&mut p, b"hello").unwrap(), Some(b"world".to_vec()));
        assert_eq!(get(&mut p, b"nope").unwrap(), None);
        assert_eq!(p.len, 1);
    }

    #[test]
    fn replace_does_not_grow() {
        let mut p = pager("replace.db", 256);
        put(&mut p, b"k", b"v1").unwrap();
        assert!(!put(&mut p, b"k", b"v2").unwrap());
        assert_eq!(get(&mut p, b"k").unwrap(), Some(b"v2".to_vec()));
        assert_eq!(p.len, 1);
    }

    #[test]
    fn many_keys_force_splits() {
        let mut p = pager("splits.db", 256);
        let n = 500u32;
        for i in 0..n {
            let k = format!("key{i:05}");
            let v = format!("value-{i}");
            put(&mut p, k.as_bytes(), v.as_bytes()).unwrap();
        }
        assert_eq!(p.len, n as u64);
        for i in 0..n {
            let k = format!("key{i:05}");
            assert_eq!(
                get(&mut p, k.as_bytes()).unwrap(),
                Some(format!("value-{i}").into_bytes()),
                "key {i}"
            );
        }
    }

    #[test]
    fn random_order_inserts() {
        let mut p = pager("random.db", 256);
        let mut keys: Vec<u32> = (0..400).collect();
        // Deterministic shuffle.
        let mut x = 99u64;
        for i in (1..keys.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            keys.swap(i, (x % (i as u64 + 1)) as usize);
        }
        for &k in &keys {
            put(&mut p, &k.to_be_bytes(), &k.to_le_bytes()).unwrap();
        }
        for k in 0..400u32 {
            assert_eq!(
                get(&mut p, &k.to_be_bytes()).unwrap(),
                Some(k.to_le_bytes().to_vec())
            );
        }
    }

    #[test]
    fn large_values_overflow_and_roundtrip() {
        let mut p = pager("overflow.db", 256);
        let big = vec![0xCDu8; 5000];
        put(&mut p, b"big", &big).unwrap();
        assert_eq!(get(&mut p, b"big").unwrap(), Some(big.clone()));
        // Replace repeatedly: the new chain is written before the old one
        // is freed, so the first replacement may grow the file, but from
        // then on freed chain pages must be recycled and the file must stop
        // growing.
        let big2 = vec![0xEFu8; 5000];
        put(&mut p, b"big", &big2).unwrap();
        let steady = p.pages;
        for fill in [1u8, 2, 3] {
            let next = vec![fill; 5000];
            put(&mut p, b"big", &next).unwrap();
            assert_eq!(get(&mut p, b"big").unwrap(), Some(next));
        }
        assert_eq!(
            p.pages, steady,
            "steady-state replacement must reuse freed pages"
        );
    }

    #[test]
    fn delete_removes_and_len_tracks() {
        let mut p = pager("delete.db", 256);
        for i in 0..100u32 {
            put(&mut p, &i.to_be_bytes(), b"x").unwrap();
        }
        assert!(delete(&mut p, &7u32.to_be_bytes()).unwrap());
        assert!(!delete(&mut p, &7u32.to_be_bytes()).unwrap());
        assert_eq!(get(&mut p, &7u32.to_be_bytes()).unwrap(), None);
        assert_eq!(p.len, 99);
        // Other keys untouched.
        assert_eq!(
            get(&mut p, &8u32.to_be_bytes()).unwrap(),
            Some(b"x".to_vec())
        );
    }

    #[test]
    fn delete_frees_overflow_chain() {
        let mut p = pager("delfree.db", 256);
        put(&mut p, b"big", &vec![1u8; 4000]).unwrap();
        let pages_after_insert = p.pages;
        delete(&mut p, b"big").unwrap();
        put(&mut p, b"big2", &vec![2u8; 4000]).unwrap();
        assert!(
            p.pages <= pages_after_insert + 1,
            "chain pages must be recycled"
        );
    }

    #[test]
    fn range_scan_in_order() {
        let mut p = pager("scan.db", 256);
        for i in (0..200u32).rev() {
            put(&mut p, &i.to_be_bytes(), &i.to_le_bytes()).unwrap();
        }
        let mut seen = Vec::new();
        for_each_range(&mut p, None, None, &mut |k, _| {
            seen.push(u32::from_be_bytes(k.try_into().unwrap()));
            true
        })
        .unwrap();
        assert_eq!(seen, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_range_scan() {
        let mut p = pager("range.db", 256);
        for i in 0..100u32 {
            put(&mut p, &i.to_be_bytes(), b"v").unwrap();
        }
        let mut seen = Vec::new();
        let lo = 10u32.to_be_bytes();
        let hi = 20u32.to_be_bytes();
        for_each_range(&mut p, Some(&lo), Some(&hi), &mut |k, _| {
            seen.push(u32::from_be_bytes(k.try_into().unwrap()));
            true
        })
        .unwrap();
        assert_eq!(seen, (10..20).collect::<Vec<_>>());
    }

    #[test]
    fn early_stop_scan() {
        let mut p = pager("stop.db", 256);
        for i in 0..100u32 {
            put(&mut p, &i.to_be_bytes(), b"v").unwrap();
        }
        let mut count = 0;
        for_each_range(&mut p, None, None, &mut |_, _| {
            count += 1;
            count < 5
        })
        .unwrap();
        assert_eq!(count, 5);
    }

    #[test]
    fn persistence_with_splits() {
        let d = std::env::temp_dir().join(format!("kvdb-tree-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let path = d.join("persist2.db");
        let _ = std::fs::remove_file(&path);
        {
            let mut p = Pager::open(&path, 256, 64, CachePolicy::Lru, IoStats::new()).unwrap();
            for i in 0..300u32 {
                put(&mut p, &i.to_be_bytes(), &i.to_le_bytes()).unwrap();
            }
            p.flush().unwrap();
        }
        let mut p = Pager::open(&path, 256, 64, CachePolicy::Lru, IoStats::new()).unwrap();
        assert_eq!(p.len, 300);
        for i in 0..300u32 {
            assert_eq!(
                get(&mut p, &i.to_be_bytes()).unwrap(),
                Some(i.to_le_bytes().to_vec())
            );
        }
    }

    #[test]
    fn key_length_limits() {
        let mut p = pager("keylimit.db", 256);
        assert!(put(&mut p, &[], b"v").is_err());
        assert!(put(&mut p, &[0u8; 33], b"v").is_err()); // > 256/8
        assert!(put(&mut p, &[0u8; 32], b"v").is_ok());
    }

    #[test]
    fn empty_value_roundtrip() {
        let mut p = pager("emptyval.db", 256);
        put(&mut p, b"k", b"").unwrap();
        assert_eq!(get(&mut p, b"k").unwrap(), Some(vec![]));
    }

    #[test]
    fn interleaved_ops_stay_consistent() {
        let mut p = pager("interleave.db", 512);
        let mut model = std::collections::BTreeMap::new();
        let mut x = 0xdeadbeefu64;
        for _ in 0..3000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = ((x >> 8) % 200) as u32;
            match x % 4 {
                0 => {
                    let v = vec![(x % 251) as u8; (x % 60) as usize];
                    put(&mut p, &key.to_be_bytes(), &v).unwrap();
                    model.insert(key, v);
                }
                1 => {
                    let deleted = delete(&mut p, &key.to_be_bytes()).unwrap();
                    assert_eq!(deleted, model.remove(&key).is_some());
                }
                _ => {
                    let got = get(&mut p, &key.to_be_bytes()).unwrap();
                    assert_eq!(got.as_ref(), model.get(&key), "key {key}");
                }
            }
        }
        assert_eq!(p.len as usize, model.len());
        // Full scan must agree with the model.
        let mut scanned = Vec::new();
        for_each_range(&mut p, None, None, &mut |k, v| {
            scanned.push((u32::from_be_bytes(k.try_into().unwrap()), v));
            true
        })
        .unwrap();
        let expected: Vec<(u32, Vec<u8>)> = model.into_iter().collect();
        assert_eq!(scanned, expected);
    }
}
