//! On-disk page format.
//!
//! Every page is exactly `page_size` bytes. The first byte is a type tag;
//! the rest is type-specific. Values too large to inline into a leaf
//! (> `page_size / 4`) are spilled into a chain of overflow pages and the
//! leaf stores a reference — how record stores of BerkeleyDB's lineage
//! handle large records.
//!
//! Encodings (all integers little-endian):
//!
//! ```text
//! meta:     [3][magic u32]["page_size" u32][root u64][pages u64][free_head u64][len u64]
//! leaf:     [0][count u16] entries*
//!           entry: [klen u16][key][kind u8]
//!                  kind 0: [vlen u32][value]
//!                  kind 1: [first_overflow u64][total_len u64]
//! internal: [1][nkeys u16][children (nkeys+1) × u64] keys*  (key: [klen u16][key])
//! overflow: [2][next u64][chunk_len u32][bytes]
//! free:     [4][next_free u64]
//! ```

use mssg_types::{GraphStorageError, Result};

/// Magic number identifying a kvdb file.
pub const MAGIC: u32 = 0x6b76_4231; // "kvB1"

/// Page type tags.
pub const TAG_LEAF: u8 = 0;
/// Internal node tag.
pub const TAG_INTERNAL: u8 = 1;
/// Overflow chain page tag.
pub const TAG_OVERFLOW: u8 = 2;
/// Metadata page tag (page 0 only).
pub const TAG_META: u8 = 3;
/// Free-list page tag.
pub const TAG_FREE: u8 = 4;

/// A value stored in a leaf: inline bytes or a reference to an overflow
/// chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LeafValue {
    /// Value bytes stored directly in the leaf.
    Inline(Vec<u8>),
    /// Value spilled to overflow pages.
    Overflow {
        /// First page of the chain.
        first_page: u64,
        /// Total value length in bytes.
        total_len: u64,
    },
}

impl LeafValue {
    /// Encoded size of this value inside a leaf entry.
    pub fn encoded_len(&self) -> usize {
        match self {
            LeafValue::Inline(v) => 1 + 4 + v.len(),
            LeafValue::Overflow { .. } => 1 + 8 + 8,
        }
    }
}

/// Decoded page contents.
#[derive(Clone, Debug, PartialEq)]
pub enum Page {
    /// Sorted `(key, value)` entries.
    Leaf {
        /// Entries sorted by key, no duplicates.
        entries: Vec<(Vec<u8>, LeafValue)>,
    },
    /// Sorted separator keys with `keys.len() + 1` children. `children[i]`
    /// covers keys `< keys[i]`; the last child covers the rest.
    Internal {
        /// Separator keys.
        keys: Vec<Vec<u8>>,
        /// Child page ids.
        children: Vec<u64>,
    },
    /// One link of an overflow chain. `next == 0` terminates (page 0 is the
    /// meta page, never an overflow).
    Overflow {
        /// Next chain page, or 0.
        next: u64,
        /// This link's bytes.
        data: Vec<u8>,
    },
    /// The store header, always page 0.
    Meta {
        /// Root page of the B-tree.
        root: u64,
        /// Total pages allocated (including this one).
        pages: u64,
        /// Head of the free list, or 0.
        free_head: u64,
        /// Number of live keys in the store.
        len: u64,
    },
    /// A recycled page awaiting reuse.
    Free {
        /// Next free page, or 0.
        next: u64,
    },
}

impl Page {
    /// Serialises into exactly `page_size` bytes.
    ///
    /// # Errors
    /// Returns `CapacityExceeded` if the encoding does not fit — callers
    /// must split nodes before this happens.
    pub fn encode(&self, page_size: usize) -> Result<Vec<u8>> {
        let mut buf = Vec::with_capacity(page_size);
        match self {
            Page::Leaf { entries } => {
                buf.push(TAG_LEAF);
                buf.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                for (k, v) in entries {
                    buf.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    buf.extend_from_slice(k);
                    match v {
                        LeafValue::Inline(bytes) => {
                            buf.push(0);
                            buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                            buf.extend_from_slice(bytes);
                        }
                        LeafValue::Overflow {
                            first_page,
                            total_len,
                        } => {
                            buf.push(1);
                            buf.extend_from_slice(&first_page.to_le_bytes());
                            buf.extend_from_slice(&total_len.to_le_bytes());
                        }
                    }
                }
            }
            Page::Internal { keys, children } => {
                assert_eq!(children.len(), keys.len() + 1, "malformed internal node");
                buf.push(TAG_INTERNAL);
                buf.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                for c in children {
                    buf.extend_from_slice(&c.to_le_bytes());
                }
                for k in keys {
                    buf.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    buf.extend_from_slice(k);
                }
            }
            Page::Overflow { next, data } => {
                buf.push(TAG_OVERFLOW);
                buf.extend_from_slice(&next.to_le_bytes());
                buf.extend_from_slice(&(data.len() as u32).to_le_bytes());
                buf.extend_from_slice(data);
            }
            Page::Meta {
                root,
                pages,
                free_head,
                len,
            } => {
                buf.push(TAG_META);
                buf.extend_from_slice(&MAGIC.to_le_bytes());
                buf.extend_from_slice(&(page_size as u32).to_le_bytes());
                buf.extend_from_slice(&root.to_le_bytes());
                buf.extend_from_slice(&pages.to_le_bytes());
                buf.extend_from_slice(&free_head.to_le_bytes());
                buf.extend_from_slice(&len.to_le_bytes());
            }
            Page::Free { next } => {
                buf.push(TAG_FREE);
                buf.extend_from_slice(&next.to_le_bytes());
            }
        }
        if buf.len() > page_size {
            return Err(GraphStorageError::CapacityExceeded(format!(
                "page encoding needs {} bytes, page size is {page_size}",
                buf.len()
            )));
        }
        buf.resize(page_size, 0);
        Ok(buf)
    }

    /// Deserialises a page.
    pub fn decode(bytes: &[u8], page_size: usize) -> Result<Page> {
        if bytes.len() != page_size {
            return Err(GraphStorageError::corrupt("page buffer has wrong length"));
        }
        let mut r = Reader { buf: bytes, pos: 1 };
        match bytes[0] {
            TAG_LEAF => {
                let count = r.u16()? as usize;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    let klen = r.u16()? as usize;
                    let key = r.bytes(klen)?.to_vec();
                    let kind = r.u8()?;
                    let value = match kind {
                        0 => {
                            let vlen = r.u32()? as usize;
                            LeafValue::Inline(r.bytes(vlen)?.to_vec())
                        }
                        1 => LeafValue::Overflow {
                            first_page: r.u64()?,
                            total_len: r.u64()?,
                        },
                        k => {
                            return Err(GraphStorageError::corrupt(format!(
                                "unknown leaf value kind {k}"
                            )))
                        }
                    };
                    entries.push((key, value));
                }
                Ok(Page::Leaf { entries })
            }
            TAG_INTERNAL => {
                let nkeys = r.u16()? as usize;
                let mut children = Vec::with_capacity(nkeys + 1);
                for _ in 0..=nkeys {
                    children.push(r.u64()?);
                }
                let mut keys = Vec::with_capacity(nkeys);
                for _ in 0..nkeys {
                    let klen = r.u16()? as usize;
                    keys.push(r.bytes(klen)?.to_vec());
                }
                Ok(Page::Internal { keys, children })
            }
            TAG_OVERFLOW => {
                let next = r.u64()?;
                let len = r.u32()? as usize;
                Ok(Page::Overflow {
                    next,
                    data: r.bytes(len)?.to_vec(),
                })
            }
            TAG_META => {
                let magic = r.u32()?;
                if magic != MAGIC {
                    return Err(GraphStorageError::corrupt(format!(
                        "bad magic {magic:#x}, not a kvdb file"
                    )));
                }
                let stored_ps = r.u32()? as usize;
                if stored_ps != page_size {
                    return Err(GraphStorageError::corrupt(format!(
                        "file built with page size {stored_ps}, opened with {page_size}"
                    )));
                }
                Ok(Page::Meta {
                    root: r.u64()?,
                    pages: r.u64()?,
                    free_head: r.u64()?,
                    len: r.u64()?,
                })
            }
            TAG_FREE => Ok(Page::Free { next: r.u64()? }),
            t => Err(GraphStorageError::corrupt(format!("unknown page tag {t}"))),
        }
    }

    /// Current encoded size in bytes (without padding).
    pub fn encoded_len(&self) -> usize {
        match self {
            Page::Leaf { entries } => {
                3 + entries
                    .iter()
                    .map(|(k, v)| 2 + k.len() + v.encoded_len())
                    .sum::<usize>()
            }
            Page::Internal { keys, children } => {
                3 + children.len() * 8 + keys.iter().map(|k| 2 + k.len()).sum::<usize>()
            }
            Page::Overflow { data, .. } => 1 + 8 + 4 + data.len(),
            Page::Meta { .. } => 1 + 4 + 4 + 8 * 4,
            Page::Free { .. } => 9,
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(GraphStorageError::corrupt("page decode ran off the end"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 256;

    #[test]
    fn leaf_roundtrip() {
        let p = Page::Leaf {
            entries: vec![
                (b"alpha".to_vec(), LeafValue::Inline(b"1".to_vec())),
                (
                    b"beta".to_vec(),
                    LeafValue::Overflow {
                        first_page: 9,
                        total_len: 5000,
                    },
                ),
            ],
        };
        let enc = p.encode(PS).unwrap();
        assert_eq!(enc.len(), PS);
        assert_eq!(Page::decode(&enc, PS).unwrap(), p);
    }

    #[test]
    fn internal_roundtrip() {
        let p = Page::Internal {
            keys: vec![b"m".to_vec(), b"t".to_vec()],
            children: vec![3, 4, 5],
        };
        let enc = p.encode(PS).unwrap();
        assert_eq!(Page::decode(&enc, PS).unwrap(), p);
    }

    #[test]
    fn overflow_roundtrip() {
        let p = Page::Overflow {
            next: 11,
            data: vec![0xabu8; 100],
        };
        let enc = p.encode(PS).unwrap();
        assert_eq!(Page::decode(&enc, PS).unwrap(), p);
    }

    #[test]
    fn meta_roundtrip() {
        let p = Page::Meta {
            root: 1,
            pages: 42,
            free_head: 7,
            len: 1000,
        };
        let enc = p.encode(PS).unwrap();
        assert_eq!(Page::decode(&enc, PS).unwrap(), p);
    }

    #[test]
    fn free_roundtrip() {
        let p = Page::Free { next: 3 };
        let enc = p.encode(PS).unwrap();
        assert_eq!(Page::decode(&enc, PS).unwrap(), p);
    }

    #[test]
    fn meta_rejects_wrong_magic() {
        let p = Page::Meta {
            root: 1,
            pages: 1,
            free_head: 0,
            len: 0,
        };
        let mut enc = p.encode(PS).unwrap();
        enc[1] ^= 0xff;
        assert!(Page::decode(&enc, PS).is_err());
    }

    #[test]
    fn meta_rejects_wrong_page_size() {
        let p = Page::Meta {
            root: 1,
            pages: 1,
            free_head: 0,
            len: 0,
        };
        let enc = p.encode(PS).unwrap();
        let mut other = enc.clone();
        other.resize(512, 0);
        assert!(Page::decode(&other, 512).is_err());
    }

    #[test]
    fn oversized_page_rejected() {
        let p = Page::Leaf {
            entries: vec![(vec![1u8; 100], LeafValue::Inline(vec![2u8; 200]))],
        };
        assert!(p.encode(PS).is_err());
        assert!(p.encode(1024).is_ok());
    }

    #[test]
    fn encoded_len_matches_encoding() {
        let pages = [
            Page::Leaf {
                entries: vec![
                    (b"k1".to_vec(), LeafValue::Inline(vec![0u8; 30])),
                    (
                        b"key2".to_vec(),
                        LeafValue::Overflow {
                            first_page: 2,
                            total_len: 99,
                        },
                    ),
                ],
            },
            Page::Internal {
                keys: vec![b"abc".to_vec()],
                children: vec![1, 2],
            },
            Page::Overflow {
                next: 0,
                data: vec![1u8; 64],
            },
            Page::Free { next: 0 },
        ];
        for p in pages {
            // Strip zero padding to compare with the declared length.
            let enc = p.encode(1024).unwrap();
            let logical = p.encoded_len();
            assert!(
                enc[..logical].iter().any(|&b| b != 0) || logical <= 3,
                "logical prefix should hold the data"
            );
            assert_eq!(Page::decode(&enc, 1024).unwrap().encoded_len(), logical);
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = vec![0u8; PS];
        buf[0] = 99;
        assert!(Page::decode(&buf, PS).is_err());
    }

    #[test]
    fn empty_leaf_roundtrip() {
        let p = Page::Leaf { entries: vec![] };
        let enc = p.encode(PS).unwrap();
        assert_eq!(Page::decode(&enc, PS).unwrap(), p);
    }

    #[test]
    fn truncated_buffer_rejected() {
        let p = Page::Leaf {
            entries: vec![(b"k".to_vec(), LeafValue::Inline(vec![1]))],
        };
        let enc = p.encode(PS).unwrap();
        assert!(Page::decode(&enc[..PS - 1], PS).is_err());
    }
}
