//! Model-based property tests for grDB: arbitrary append sequences with
//! defragmentation interleaved at random points, checked against a plain
//! in-memory model, across geometries (tiny multi-level/multi-file, and
//! the thesis geometry).

use grdb::{GrdbConfig, GrdbStore, GrowthPolicy};
use mssg_types::Gid;
use proptest::prelude::*;
use simio::IoStats;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static UNIQUE: AtomicU64 = AtomicU64::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "grdb-model-{}-{tag}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// One step of the model workload.
#[derive(Clone, Debug)]
enum Op {
    /// Append neighbour `u` to vertex `v`.
    Append { v: u64, u: u64 },
    /// Defragment vertex `v`.
    Defrag { v: u64 },
    /// Defragment everything.
    DefragAll,
    /// Flush, drop, and reopen the store.
    Reopen,
}

fn arb_op(max_v: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0..max_v, 0..max_v).prop_map(|(v, u)| Op::Append { v, u }),
        1 => (0..max_v).prop_map(|v| Op::Defrag { v }),
        1 => Just(Op::DefragAll),
        1 => Just(Op::Reopen),
    ]
}

fn check_model(cfg: GrdbConfig, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let dir = fresh_dir("ops");
    let mut store = GrdbStore::open(&dir, cfg.clone(), IoStats::new()).unwrap();
    let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
    for op in ops {
        match op {
            Op::Append { v, u } => {
                store.append_neighbour(Gid::new(v), Gid::new(u)).unwrap();
                model.entry(v).or_default().push(u);
            }
            Op::Defrag { v } => {
                store.defragment(Gid::new(v)).unwrap();
            }
            Op::DefragAll => {
                store.defragment_all().unwrap();
            }
            Op::Reopen => {
                store.flush().unwrap();
                drop(store);
                store = GrdbStore::open(&dir, cfg.clone(), IoStats::new()).unwrap();
            }
        }
        // Spot-check one vertex after every op to catch corruption early.
        if let Op::Append { v, .. } | Op::Defrag { v } = op {
            let mut adj = Vec::new();
            store.read_adjacency(Gid::new(v), &mut adj).unwrap();
            let got: Vec<u64> = adj.iter().map(|g| g.raw()).collect();
            let want = model.get(&v).cloned().unwrap_or_default();
            prop_assert_eq!(&got, &want, "vertex {} after {:?}", v, op);
        }
    }
    // Full check at the end.
    for (v, want) in &model {
        let mut adj = Vec::new();
        store.read_adjacency(Gid::new(*v), &mut adj).unwrap();
        let got: Vec<u64> = adj.iter().map(|g| g.raw()).collect();
        prop_assert_eq!(&got, want, "vertex {} at end", v);
    }
    let total: usize = model.values().map(Vec::len).sum();
    prop_assert_eq!(store.entries() as usize, total);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16 })]

    #[test]
    fn tiny_geometry_link(ops in prop::collection::vec(arb_op(8), 1..250)) {
        check_model(GrdbConfig::tiny(), ops)?;
    }

    #[test]
    fn tiny_geometry_move(ops in prop::collection::vec(arb_op(8), 1..250)) {
        let mut cfg = GrdbConfig::tiny();
        cfg.growth = GrowthPolicy::Move;
        check_model(cfg, ops)?;
    }

    #[test]
    fn thesis_geometry(ops in prop::collection::vec(arb_op(64), 1..150)) {
        // The real level schedule; hub degrees stay below d0+d1 here, so
        // this exercises the level-0/level-1 boundary with 4 KB blocks.
        check_model(GrdbConfig::thesis_defaults(), ops)?;
    }

    #[test]
    fn uncached_tiny(ops in prop::collection::vec(arb_op(8), 1..150)) {
        let mut cfg = GrdbConfig::tiny();
        cfg.cache_blocks = 0;
        check_model(cfg, ops)?;
    }
}

#[test]
fn heavy_hub_through_all_levels_with_reopen() {
    // Deterministic heavy case: one hub accumulating 500 neighbours with
    // periodic reopen and defragment — exercises deep top-level chaining.
    let dir = fresh_dir("hub");
    let cfg = GrdbConfig::tiny();
    let mut store = GrdbStore::open(&dir, cfg.clone(), IoStats::new()).unwrap();
    let mut expected = Vec::new();
    for i in 0..500u64 {
        store
            .append_neighbour(Gid::new(3), Gid::new(1000 + i))
            .unwrap();
        expected.push(1000 + i);
        if i % 97 == 0 {
            store.flush().unwrap();
            drop(store);
            store = GrdbStore::open(&dir, cfg.clone(), IoStats::new()).unwrap();
        }
        if i % 131 == 0 {
            store.defragment(Gid::new(3)).unwrap();
        }
    }
    let mut adj = Vec::new();
    store.read_adjacency(Gid::new(3), &mut adj).unwrap();
    let got: Vec<u64> = adj.iter().map(|g| g.raw()).collect();
    assert_eq!(got, expected);
    // The chain is long; defragment shortens it and preserves content.
    let before = store.chain_length(Gid::new(3)).unwrap();
    store.defragment(Gid::new(3)).unwrap();
    let after = store.chain_length(Gid::new(3)).unwrap();
    assert!(after <= before);
    adj.clear();
    store.read_adjacency(Gid::new(3), &mut adj).unwrap();
    assert_eq!(adj.iter().map(|g| g.raw()).collect::<Vec<_>>(), expected);
}
