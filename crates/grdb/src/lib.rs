#![warn(missing_docs)]
//! grDB — the MSSG multi-level out-of-core graph database (thesis §3.4.1,
//! §4.1.6). This is the paper's primary storage contribution.
//!
//! # Layout
//!
//! A grDB instance keeps one *storage file space* per level ℓ. Level-ℓ
//! sub-blocks hold up to `d_ℓ` 8-byte words, with `d_ℓ ≥ 2·d_{ℓ−1}` — an
//! exponential schedule matched to the power-law degree distribution of
//! scale-free graphs: almost every vertex fits entirely in its level-0
//! sub-block, and only the rare hubs cascade into the big sub-blocks of the
//! high levels.
//!
//! - The beginning of vertex `v`'s adjacency list is the `v`-th sub-block of
//!   level 0 (direct addressing, no index).
//! - Sub-blocks are packed `k_ℓ = B_ℓ / (8·d_ℓ)` to a block (`B_ℓ` = block
//!   size, the unit of I/O and of caching) and blocks are packed
//!   `N_ℓ = M / B_ℓ` to a file of at most `M` bytes; sub-block `s` lives in
//!   file `s/k_ℓ/N_ℓ` at the offset the thesis gives by modulo arithmetic
//!   (realised by [`simio::MultiFile`]).
//! - When a sub-block fills, its **last slot** is replaced by a pointer —
//!   a word with a non-zero tag in its top 3 bits (§4.1.6) — to a sub-block
//!   at the next level, where the displaced entry and all later ones live.
//!
//! # Growth policies
//!
//! The thesis describes two ways to grow past a full sub-block: *move* the
//! full sub-block's contents up a level (extra copies, compact chains) or
//! *link* to a fresh sub-block (no copies, fragmented chains), optionally
//! compacted later by a background [`GrdbStore::defragment`]. Both are
//! implemented and selectable via [`GrowthPolicy`]; a bench ablates them.
//!
//! # Block cache
//!
//! All block I/O goes through the instance's block cache
//! ([`simio::BlockCache`]) — the "block cache component". Capacity 0
//! reproduces the Figure 5.2 cache-off configuration. The replacement
//! policy and a same-level readahead are configurable (the hot-path
//! knobs of DESIGN.md §10): [`simio::CachePolicy::TwoQ`] keeps one-shot
//! scans from flushing the hot set, and `readahead_blocks > 0` turns a
//! read miss into a short sequential run of the following blocks.
//!
//! ```
//! use grdb::{GrdbConfig, GrdbGraphDb};
//! use mssg_types::{Edge, Gid};
//! use std::sync::Arc;
//!
//! let mut cfg = GrdbConfig::tiny();          // 3 levels, 64-byte blocks
//! cfg.cache_blocks = 32;                     // cache capacity, in blocks
//! cfg.cache_policy = simio::CachePolicy::TwoQ;
//! cfg.readahead_blocks = 2;                  // pull 2 blocks per read miss
//!
//! let dir = std::env::temp_dir().join("grdb-doc-cache");
//! # let _ = std::fs::remove_dir_all(&dir);
//! let stats = Arc::new(simio::IoStats::default());
//! let mut db = GrdbGraphDb::open(&dir, cfg, stats).unwrap();
//! use graphdb::{GraphDb, GraphDbExt};
//! db.store_edges(&[Edge::of(1, 2), Edge::of(1, 3)]).unwrap();
//! assert_eq!(db.neighbors(Gid::new(1)).unwrap(), vec![Gid::new(2), Gid::new(3)]);
//! let cache = db.cache_stats();
//! assert!(cache.hits > 0);
//! # let _ = std::fs::remove_dir_all(&dir);
//! ```

pub mod config;
pub mod graph;
pub mod layout;
pub mod store;

pub use config::{GrdbConfig, GrowthPolicy, LevelConfig};
pub use graph::GrdbGraphDb;
pub use store::GrdbStore;
