//! The grDB GraphDB adapter.

use crate::config::GrdbConfig;
use crate::store::GrdbStore;
use graphdb::{GraphDb, MetaTable};
use mssg_types::{AdjBuffer, Edge, Gid, Meta, MetaOp, Result};
use simio::IoStats;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// GraphDB backend over a [`GrdbStore`].
pub struct GrdbGraphDb {
    store: GrdbStore,
    meta: MetaTable,
    /// Reusable scratch for adjacency reads.
    scratch: Vec<Gid>,
}

impl GrdbGraphDb {
    /// Opens an instance in `dir`.
    pub fn open(dir: &Path, config: GrdbConfig, stats: Arc<IoStats>) -> Result<GrdbGraphDb> {
        Ok(GrdbGraphDb {
            store: GrdbStore::open(dir, config, stats)?,
            meta: MetaTable::new(),
            scratch: Vec::new(),
        })
    }

    /// The underlying store (for defragmentation, chain inspection, cache
    /// statistics).
    pub fn store(&mut self) -> &mut GrdbStore {
        &mut self.store
    }

    /// Block-cache statistics.
    pub fn cache_stats(&self) -> simio::CacheStats {
        self.store.cache_stats()
    }
}

impl GraphDb for GrdbGraphDb {
    fn store_edges(&mut self, edges: &[Edge]) -> Result<()> {
        // Group by source so each vertex's chain is walked to its tail
        // once per batch instead of once per edge. Groups keep the batch's
        // first-appearance order and per-vertex edge order, so the
        // resulting physical layout is deterministic for a given stream.
        match edges {
            [] => Ok(()),
            [e] => self.store.append_neighbour(e.src, e.dst),
            _ => {
                let mut index: HashMap<Gid, usize> = HashMap::new();
                let mut groups: Vec<(Gid, Vec<Gid>)> = Vec::new();
                for e in edges {
                    let i = *index.entry(e.src).or_insert_with(|| {
                        groups.push((e.src, Vec::new()));
                        groups.len() - 1
                    });
                    groups[i].1.push(e.dst);
                }
                for (src, dsts) in &groups {
                    self.store.append_neighbours(*src, dsts)?;
                }
                Ok(())
            }
        }
    }

    fn get_metadata(&mut self, v: Gid) -> Result<Meta> {
        Ok(self.meta.get(v))
    }

    fn set_metadata(&mut self, v: Gid, meta: Meta) -> Result<()> {
        self.meta.set(v, meta);
        Ok(())
    }

    fn adjacency(&mut self, v: Gid, out: &mut AdjBuffer, meta: Meta, op: MetaOp) -> Result<()> {
        self.scratch.clear();
        self.store.read_adjacency(v, &mut self.scratch)?;
        for &u in &self.scratch {
            if op.admits(self.meta.get(u), meta) {
                out.push(u);
            }
        }
        Ok(())
    }

    /// When `prefetch_sort` is configured, expands the fringe in level-0
    /// file order so block accesses are sequential rather than in BFS
    /// discovery order — fewer seeks, better cache reuse on hub-heavy
    /// fringes (the §4.2 future-work optimisation).
    fn expand_fringe(
        &mut self,
        fringe: &[Gid],
        out: &mut AdjBuffer,
        meta: Meta,
        op: MetaOp,
    ) -> Result<()> {
        if self.store.config().prefetch_sort {
            let mut sorted = fringe.to_vec();
            sorted.sort_unstable();
            for v in sorted {
                self.adjacency(v, out, meta, op)?;
            }
            Ok(())
        } else {
            for &v in fringe {
                self.adjacency(v, out, meta, op)?;
            }
            Ok(())
        }
    }

    fn flush(&mut self) -> Result<()> {
        self.store.flush()
    }

    fn maintenance(&mut self) -> Result<()> {
        self.store.defragment_all()?;
        Ok(())
    }

    fn local_vertices(&mut self) -> Result<Vec<Gid>> {
        self.store.vertices()
    }

    fn stored_entries(&self) -> u64 {
        self.store.entries()
    }

    fn cache_counters(&self) -> Option<(u64, u64, u64)> {
        let s = self.store.cache_stats();
        Some((s.hits, s.misses, s.evictions))
    }

    fn backend_name(&self) -> &'static str {
        "grDB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdb::GraphDbExt;

    fn g(v: u64) -> Gid {
        Gid::new(v)
    }

    fn db(tag: &str) -> GrdbGraphDb {
        let d = std::env::temp_dir().join(format!("grdb-graph-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        GrdbGraphDb::open(&d, GrdbConfig::tiny(), IoStats::new()).unwrap()
    }

    #[test]
    fn store_and_read() {
        let mut db = db("basic");
        db.store_edges(&[Edge::of(1, 2), Edge::of(1, 3), Edge::of(4, 1)])
            .unwrap();
        let mut n = db.neighbors(g(1)).unwrap();
        n.sort_unstable();
        assert_eq!(n, vec![g(2), g(3)]);
        assert_eq!(db.stored_entries(), 3);
    }

    #[test]
    fn metadata_filtering() {
        let mut db = db("meta");
        db.store_edges(&[Edge::of(0, 1), Edge::of(0, 2), Edge::of(0, 3)])
            .unwrap();
        db.set_metadata(g(2), 7).unwrap();
        let mut out = AdjBuffer::new();
        db.adjacency(g(0), &mut out, 7, MetaOp::NotEqual).unwrap();
        let mut got = out.take();
        got.sort_unstable();
        assert_eq!(got, vec![g(1), g(3)]);
    }

    #[test]
    fn hub_through_levels_via_trait() {
        let mut db = db("hub");
        let edges: Vec<Edge> = (0..30).map(|i| Edge::of(9, 100 + i)).collect();
        db.store_edges(&edges).unwrap();
        assert_eq!(db.neighbors(g(9)).unwrap().len(), 30);
    }

    #[test]
    fn agrees_with_hashmap_reference() {
        use graphdb::HashMapDb;
        let mut gr = db("agree");
        let mut h = HashMapDb::new();
        let mut x = 41u64;
        let mut edges = Vec::new();
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            edges.push(Edge::of(x % 40, (x >> 13) % 40));
        }
        gr.store_edges(&edges).unwrap();
        h.store_edges(&edges).unwrap();
        for v in 0..40u64 {
            let ng = gr.neighbors(g(v)).unwrap();
            let nh = h.neighbors(g(v)).unwrap();
            // grDB preserves insertion order, like the hash map.
            assert_eq!(ng, nh, "vertex {v}");
        }
    }

    #[test]
    fn agreement_survives_defragmentation() {
        use graphdb::HashMapDb;
        let mut gr = db("defrag-agree");
        let mut h = HashMapDb::new();
        let edges: Vec<Edge> = (0..25).map(|i| Edge::of(i % 3, 50 + i)).collect();
        gr.store_edges(&edges).unwrap();
        h.store_edges(&edges).unwrap();
        gr.store().defragment_all().unwrap();
        for v in 0..3u64 {
            assert_eq!(gr.neighbors(g(v)).unwrap(), h.neighbors(g(v)).unwrap());
        }
    }

    #[test]
    fn unknown_vertex_empty() {
        let mut db = db("unknown");
        assert!(db.neighbors(g(123)).unwrap().is_empty());
    }

    #[test]
    fn prefetch_sort_reduces_seeks_without_changing_results() {
        use mssg_types::MetaOp;
        // Uncached instances so every block access hits the file layer.
        let mut edges = Vec::new();
        for v in 0..60u64 {
            edges.push(Edge::of(v, (v + 1) % 60));
        }
        let build = |tag: &str, prefetch: bool| {
            let d =
                std::env::temp_dir().join(format!("grdb-prefetch-{}-{tag}", std::process::id()));
            let _ = std::fs::remove_dir_all(&d);
            let stats = IoStats::new();
            let mut cfg = GrdbConfig::tiny();
            cfg.cache_blocks = 0;
            cfg.prefetch_sort = prefetch;
            let mut db = GrdbGraphDb::open(&d, cfg, Arc::clone(&stats)).unwrap();
            db.store_edges(&edges).unwrap();
            (db, stats)
        };
        // A fringe in scrambled discovery order.
        let mut fringe: Vec<Gid> = (0..60).map(g).collect();
        let mut x = 5u64;
        for i in (1..fringe.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            fringe.swap(i, (x % (i as u64 + 1)) as usize);
        }
        let (mut plain, stats_plain) = build("plain", false);
        let (mut sorted, stats_sorted) = build("sorted", true);
        let before_p = stats_plain.snapshot();
        let before_s = stats_sorted.snapshot();
        let mut out_p = AdjBuffer::new();
        let mut out_s = AdjBuffer::new();
        plain
            .expand_fringe(&fringe, &mut out_p, 0, MetaOp::Ignore)
            .unwrap();
        sorted
            .expand_fringe(&fringe, &mut out_s, 0, MetaOp::Ignore)
            .unwrap();
        // Same multiset of neighbours.
        let mut a = out_p.take();
        let mut b = out_s.take();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        let seeks_plain = stats_plain.snapshot().since(&before_p).seeks;
        let seeks_sorted = stats_sorted.snapshot().since(&before_s).seeks;
        assert!(
            seeks_sorted < seeks_plain,
            "file-order expansion must seek less: {seeks_sorted} !< {seeks_plain}"
        );
    }
}
