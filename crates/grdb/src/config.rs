//! grDB instance configuration.

use mssg_types::{GraphStorageError, Result};
use simio::CachePolicy;

/// Bytes per stored word (the thesis' `b`: one 64-bit GID).
pub const WORD: usize = 8;

/// Configuration of one storage level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelConfig {
    /// Sub-block capacity `d_ℓ` in words.
    pub d: u32,
    /// Block size `B_ℓ` in bytes (the I/O and cache unit).
    pub block_bytes: usize,
}

impl LevelConfig {
    /// Sub-block size in bytes (`b · d_ℓ`).
    pub fn sub_bytes(&self) -> usize {
        self.d as usize * WORD
    }

    /// Sub-blocks per block (`k_ℓ`).
    pub fn k(&self) -> u64 {
        (self.block_bytes / self.sub_bytes()) as u64
    }
}

/// How a full sub-block grows — the two options of §3.4.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GrowthPolicy {
    /// Leave the full sub-block in place and link to a fresh sub-block at
    /// the next level ("creates fragmentation in the adjacency list";
    /// compact later with `defragment`).
    #[default]
    Link,
    /// Copy the full sub-block's contents into the new, bigger sub-block
    /// and free the old one ("necessitates extra copy operations during the
    /// insertion", but keeps chains two hops short).
    Move,
}

/// Full instance configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct GrdbConfig {
    /// Level schedule, smallest first. At most 6 levels (pointer tags are
    /// 3 bits, one value is reserved).
    pub levels: Vec<LevelConfig>,
    /// Maximum storage-file size `M` in bytes.
    pub max_file_bytes: u64,
    /// Block cache capacity in blocks (0 = cache disabled).
    pub cache_blocks: usize,
    /// Cache replacement policy.
    pub cache_policy: CachePolicy,
    /// Growth policy for full sub-blocks.
    pub growth: GrowthPolicy,
    /// Sort fringe expansions by level-0 location before issuing them —
    /// the thesis' proposed future optimisation ("sorting the pre-fetch
    /// disk accesses by file offsets to reduce the seek overhead", §4.2).
    pub prefetch_sort: bool,
    /// On a cache miss, also read this many following blocks of the same
    /// level into the cache (0 = off). BFS fringe expansion walks
    /// adjacency chains whose sub-blocks were allocated in bursts, so the
    /// next blocks of a level are likely to be needed next; reading them
    /// while the head is already positioned converts future random reads
    /// into one sequential run.
    pub readahead_blocks: usize,
}

impl GrdbConfig {
    /// The thesis' experimental configuration (§4.1.6): six levels with
    /// `d = 2, 4, 16, 256, 4K, 16K`, 4 KB blocks for the first four levels
    /// and 32 KB / 256 KB for the last two, `M = 256 MB`.
    pub fn thesis_defaults() -> GrdbConfig {
        GrdbConfig {
            levels: vec![
                LevelConfig {
                    d: 2,
                    block_bytes: 4096,
                },
                LevelConfig {
                    d: 4,
                    block_bytes: 4096,
                },
                LevelConfig {
                    d: 16,
                    block_bytes: 4096,
                },
                LevelConfig {
                    d: 256,
                    block_bytes: 4096,
                },
                LevelConfig {
                    d: 4096,
                    block_bytes: 32 * 1024,
                },
                LevelConfig {
                    d: 16384,
                    block_bytes: 256 * 1024,
                },
            ],
            max_file_bytes: 256 * 1024 * 1024,
            cache_blocks: 2048,
            cache_policy: CachePolicy::Lru,
            growth: GrowthPolicy::Link,
            prefetch_sort: false,
            readahead_blocks: 0,
        }
    }

    /// A tiny configuration for tests: `d = 2, 4, 8`, 64-byte blocks,
    /// 256-byte files — exercises multi-file and multi-level paths with a
    /// handful of edges. (This is also the geometry of thesis Figure 3.4.)
    pub fn tiny() -> GrdbConfig {
        GrdbConfig {
            levels: vec![
                LevelConfig {
                    d: 2,
                    block_bytes: 64,
                },
                LevelConfig {
                    d: 4,
                    block_bytes: 64,
                },
                LevelConfig {
                    d: 8,
                    block_bytes: 64,
                },
            ],
            max_file_bytes: 256,
            cache_blocks: 8,
            cache_policy: CachePolicy::Lru,
            growth: GrowthPolicy::Link,
            prefetch_sort: false,
            readahead_blocks: 0,
        }
    }

    /// Validates the invariants of §3.4.1.
    pub fn validate(&self) -> Result<()> {
        let fail = |m: String| Err(GraphStorageError::InvalidVertex(m));
        if self.levels.is_empty() {
            return fail("grDB needs at least one level".into());
        }
        if self.levels.len() > 6 {
            return fail(format!(
                "grDB supports at most 6 levels (3-bit pointer tags), got {}",
                self.levels.len()
            ));
        }
        for (i, l) in self.levels.iter().enumerate() {
            if l.d < 2 {
                return fail(format!("level {i}: d must be at least 2, got {}", l.d));
            }
            if i > 0 && l.d < 2 * self.levels[i - 1].d {
                return fail(format!(
                    "level {i}: d_ℓ ({}) must be ≥ 2·d_(ℓ−1) ({})",
                    l.d,
                    2 * self.levels[i - 1].d
                ));
            }
            if l.block_bytes % l.sub_bytes() != 0 || l.block_bytes < l.sub_bytes() {
                return fail(format!(
                    "level {i}: block size {} is not a positive multiple of the \
                     sub-block size {}",
                    l.block_bytes,
                    l.sub_bytes()
                ));
            }
            if self.max_file_bytes < l.block_bytes as u64 {
                return fail(format!(
                    "level {i}: max file size {} smaller than one block ({})",
                    self.max_file_bytes, l.block_bytes
                ));
            }
        }
        Ok(())
    }

    /// Total inline capacity of one full chain visiting each level once
    /// (the Link policy's capacity before the top level starts chaining to
    /// itself).
    pub fn single_pass_capacity(&self) -> u64 {
        // Each non-terminal sub-block sacrifices its last slot to a pointer.
        let n = self.levels.len();
        self.levels
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i + 1 < n {
                    (l.d - 1) as u64
                } else {
                    l.d as u64
                }
            })
            .sum()
    }
}

impl Default for GrdbConfig {
    fn default() -> Self {
        GrdbConfig::thesis_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thesis_defaults_are_valid() {
        GrdbConfig::thesis_defaults().validate().unwrap();
        GrdbConfig::tiny().validate().unwrap();
    }

    #[test]
    fn thesis_geometry() {
        let c = GrdbConfig::thesis_defaults();
        // 4 KB block at level 0 holds 256 sub-blocks of 16 bytes.
        assert_eq!(c.levels[0].sub_bytes(), 16);
        assert_eq!(c.levels[0].k(), 256);
        // Top level: one 16K-word sub-block (128 KB) -> 2 per 256 KB block.
        assert_eq!(c.levels[5].sub_bytes(), 128 * 1024);
        assert_eq!(c.levels[5].k(), 2);
    }

    #[test]
    fn doubling_rule_enforced() {
        let mut c = GrdbConfig::tiny();
        c.levels[1].d = 3; // < 2*2
        assert!(c.validate().is_err());
    }

    #[test]
    fn block_divisibility_enforced() {
        let mut c = GrdbConfig::tiny();
        c.levels[0].block_bytes = 60; // not a multiple of 16
        assert!(c.validate().is_err());
    }

    #[test]
    fn level_count_capped() {
        let mut c = GrdbConfig::tiny();
        let mut d = 16;
        while c.levels.len() <= 6 {
            c.levels.push(LevelConfig {
                d,
                block_bytes: (d as usize) * 8,
            });
            d *= 2;
        }
        assert!(c.validate().is_err());
    }

    #[test]
    fn too_small_file_rejected() {
        let mut c = GrdbConfig::tiny();
        c.max_file_bytes = 32;
        assert!(c.validate().is_err());
    }

    #[test]
    fn single_pass_capacity_math() {
        // tiny: (2-1) + (4-1) + 8 = 12.
        assert_eq!(GrdbConfig::tiny().single_pass_capacity(), 12);
        // thesis: 1 + 3 + 15 + 255 + 4095 + 16384 = 20753.
        assert_eq!(GrdbConfig::thesis_defaults().single_pass_capacity(), 20753);
    }
}
