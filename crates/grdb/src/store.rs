//! The grDB storage engine: multi-level sub-block files behind a block
//! cache, with Link/Move growth and background defragmentation.

use crate::config::{GrdbConfig, GrowthPolicy, LevelConfig};
use crate::layout::{occupancy, read_slot, sub_position, write_slot, Slot};
use mssg_types::{Gid, GraphStorageError, Result};
use simio::{BlockCache, CacheKey, IoStats, MultiFile};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const META_MAGIC: u32 = 0x6772_4231; // "grB1"

/// A grDB instance rooted in a directory (`level0.NNNN`, `level1.NNNN`, …,
/// plus `grdb.meta`).
///
/// ```
/// use grdb::{GrdbConfig, GrdbStore};
/// use mssg_types::Gid;
/// use simio::IoStats;
/// let dir = std::env::temp_dir().join("grdb-doc");
/// let _ = std::fs::remove_dir_all(&dir);
///
/// let mut store = GrdbStore::open(&dir, GrdbConfig::tiny(), IoStats::new()).unwrap();
/// for u in 0..9 {
///     store.append_neighbour(Gid::new(7), Gid::new(100 + u)).unwrap();
/// }
/// let mut adj = Vec::new();
/// store.read_adjacency(Gid::new(7), &mut adj).unwrap();
/// assert_eq!(adj.len(), 9);
/// // Degree 9 under the tiny geometry (d = 2, 4, 8) spans three levels:
/// assert_eq!(store.chain_length(Gid::new(7)).unwrap(), 3);
/// // ...and compacts to two after defragmentation:
/// store.defragment(Gid::new(7)).unwrap();
/// assert_eq!(store.chain_length(Gid::new(7)).unwrap(), 2);
/// ```
pub struct GrdbStore {
    config: GrdbConfig,
    files: Vec<MultiFile>,
    cache: BlockCache,
    /// Next unallocated sub-block per level (level 0 allocates by vertex).
    next_sub: Vec<u64>,
    /// Recycled sub-blocks per level.
    free: Vec<Vec<u64>>,
    entries: u64,
    dir: PathBuf,
}

impl GrdbStore {
    /// Opens (creating if needed) an instance in `dir`.
    pub fn open(dir: &Path, config: GrdbConfig, stats: Arc<IoStats>) -> Result<GrdbStore> {
        config.validate()?;
        std::fs::create_dir_all(dir)?;
        let mut files = Vec::with_capacity(config.levels.len());
        for (i, l) in config.levels.iter().enumerate() {
            files.push(MultiFile::open(
                dir,
                &format!("level{i}"),
                l.block_bytes,
                config.max_file_bytes,
                Arc::clone(&stats),
            )?);
        }
        let n = config.levels.len();
        let cache = BlockCache::new(config.cache_blocks, config.cache_policy);
        let mut store = GrdbStore {
            config,
            files,
            cache,
            next_sub: vec![0; n],
            free: vec![Vec::new(); n],
            entries: 0,
            dir: dir.to_path_buf(),
        };
        store.load_meta()?;
        Ok(store)
    }

    /// The instance configuration.
    pub fn config(&self) -> &GrdbConfig {
        &self.config
    }

    /// Directed adjacency entries stored.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Block-cache statistics.
    pub fn cache_stats(&self) -> simio::CacheStats {
        self.cache.stats()
    }

    fn level(&self, l: usize) -> &LevelConfig {
        &self.config.levels[l]
    }

    fn top_level(&self) -> usize {
        self.config.levels.len() - 1
    }

    // ---- block and sub-block I/O through the cache ----

    /// Runs `f` over the (cached) block bytes **in place** — the hot path
    /// must not copy whole blocks around: with 256 KB top-level blocks, a
    /// clone per access turns hub appends quadratic. On a miss the block
    /// is read from disk, operated on, and inserted (writing back any
    /// evicted dirty victim, or going straight to disk when the cache is
    /// disabled).
    fn with_block<T>(
        &mut self,
        level: usize,
        block: u64,
        dirty: bool,
        f: impl FnOnce(&mut [u8]) -> T,
    ) -> Result<T> {
        let key = CacheKey::new(level as u32, block);
        if let Some(bytes) = self.cache.get(key) {
            let out = f(bytes);
            if dirty {
                self.cache.mark_dirty(key);
            }
            return Ok(out);
        }
        let mut buf = vec![0u8; self.level(level).block_bytes];
        self.files[level].read_block(block, &mut buf)?;
        let out = f(&mut buf);
        match self.cache.insert(key, buf, dirty) {
            // Capacity-0 cache bounces the block straight back.
            Some(ev) if ev.key == key && dirty => {
                self.files[level].write_block(block, &ev.data)?;
            }
            Some(ev) if ev.key != key && ev.dirty => {
                self.files[ev.key.space as usize].write_block(ev.key.block, &ev.data)?;
            }
            _ => {}
        }
        if !dirty {
            // Read misses (chain walks, fringe expansion) trigger
            // readahead; write misses during ingestion do not.
            self.readahead(level, block)?;
        }
        Ok(out)
    }

    /// Pulls the blocks following a missed one into the cache while the
    /// head is still positioned there — pure cache population, clean
    /// inserts only. No-op unless `readahead_blocks` is configured.
    fn readahead(&mut self, level: usize, block: u64) -> Result<()> {
        if self.config.readahead_blocks == 0 || self.cache.capacity() == 0 {
            return Ok(());
        }
        let block_bytes = self.level(level).block_bytes;
        for i in 1..=self.config.readahead_blocks as u64 {
            let b = block + i;
            if b >= self.files[level].len_blocks() {
                break;
            }
            let key = CacheKey::new(level as u32, b);
            if self.cache.contains(key) {
                continue;
            }
            let mut buf = vec![0u8; block_bytes];
            self.files[level].read_block(b, &mut buf)?;
            if let Some(ev) = self.cache.insert(key, buf, false) {
                if ev.dirty {
                    self.files[ev.key.space as usize].write_block(ev.key.block, &ev.data)?;
                }
            }
        }
        Ok(())
    }

    /// Reads sub-block `s` of `level` into an owned buffer (used where the
    /// whole sub-block's contents are genuinely needed).
    fn read_sub(&mut self, level: usize, s: u64) -> Result<Vec<u8>> {
        let lc = *self.level(level);
        let (block, off) = sub_position(s, lc.k(), lc.sub_bytes());
        self.with_block(level, block, false, |buf| {
            buf[off..off + lc.sub_bytes()].to_vec()
        })
    }

    /// Writes sub-block `s` of `level` in place.
    fn write_sub(&mut self, level: usize, s: u64, sub: &[u8]) -> Result<()> {
        let lc = *self.level(level);
        debug_assert_eq!(sub.len(), lc.sub_bytes());
        let (block, off) = sub_position(s, lc.k(), lc.sub_bytes());
        self.with_block(level, block, true, |buf| {
            buf[off..off + lc.sub_bytes()].copy_from_slice(sub);
        })
    }

    /// Occupancy and decoded last slot of a sub-block, computed in place —
    /// the per-hop cost of a chain walk is O(log d) word reads, no copies.
    fn sub_meta(&mut self, level: usize, s: u64) -> Result<(usize, Slot)> {
        let lc = *self.level(level);
        let d = lc.d as usize;
        let (block, off) = sub_position(s, lc.k(), lc.sub_bytes());
        self.with_block(level, block, false, |buf| {
            let sub = &buf[off..off + lc.sub_bytes()];
            let occ = occupancy(sub, d);
            let last = read_slot(sub, d - 1)?;
            Ok((occ, last))
        })?
    }

    /// Writes one slot of a sub-block in place.
    fn write_sub_slot(&mut self, level: usize, s: u64, idx: usize, slot: Slot) -> Result<()> {
        let lc = *self.level(level);
        let (block, off) = sub_position(s, lc.k(), lc.sub_bytes());
        self.with_block(level, block, true, |buf| {
            write_slot(&mut buf[off..off + lc.sub_bytes()], idx, slot)
        })?
    }

    /// Ensures the level-0 sub-block for vertex `v` is backed by storage.
    fn ensure_level0(&mut self, v: Gid) -> Result<()> {
        let lc = *self.level(0);
        let (block, _) = sub_position(v.raw(), lc.k(), lc.sub_bytes());
        self.files[0].grow_to(block + 1)?;
        if v.raw() >= self.next_sub[0] {
            self.next_sub[0] = v.raw() + 1;
        }
        Ok(())
    }

    /// Allocates a sub-block at `level ≥ 1`, reusing the free list.
    fn alloc_sub(&mut self, level: usize) -> Result<u64> {
        debug_assert!(level >= 1);
        if let Some(s) = self.free[level].pop() {
            // Recycled sub-blocks must read back empty.
            let zero = vec![0u8; self.level(level).sub_bytes()];
            self.write_sub(level, s, &zero)?;
            return Ok(s);
        }
        let s = self.next_sub[level];
        self.next_sub[level] += 1;
        let lc = *self.level(level);
        let (block, _) = sub_position(s, lc.k(), lc.sub_bytes());
        self.files[level].grow_to(block + 1)?;
        Ok(s)
    }

    fn free_sub(&mut self, level: usize, s: u64) {
        debug_assert!(level >= 1, "level-0 sub-blocks are never freed");
        self.free[level].push(s);
    }

    // ---- public graph operations ----

    /// Appends one neighbour to vertex `v`'s adjacency list.
    pub fn append_neighbour(&mut self, v: Gid, u: Gid) -> Result<()> {
        if !v.is_vertex() || !u.is_vertex() {
            return Err(GraphStorageError::InvalidVertex(format!(
                "tagged word passed as vertex: {v:?} -> {u:?}"
            )));
        }
        self.ensure_level0(v)?;
        let mut level = 0usize;
        let mut sub = v.raw();
        let mut prev: Option<(usize, u64)> = None;
        loop {
            let d = self.level(level).d as usize;
            let (occ, last) = self.sub_meta(level, sub)?;
            if occ < d {
                self.write_sub_slot(level, sub, occ, Slot::Entry(u))?;
                self.entries += 1;
                return Ok(());
            }
            // Full: the last slot is either a pointer (follow) or an entry
            // (grow the chain).
            match last {
                Slot::Pointer { level: nl, sub: ns } => {
                    prev = Some((level, sub));
                    level = nl as usize;
                    sub = ns;
                }
                Slot::Entry(displaced) => {
                    self.grow_chain(level, sub, displaced, u, prev)?;
                    self.entries += 1;
                    return Ok(());
                }
                Slot::Empty => unreachable!("occupancy said the slot is used"),
            }
        }
    }

    /// Appends a batch of neighbours to vertex `v`'s adjacency list in one
    /// chain walk. Equivalent to calling [`GrdbStore::append_neighbour`]
    /// once per entry — same resulting layout, same order — but the chain
    /// is walked to its tail once and the cursor advanced in place, so a
    /// size-B batch onto a length-L chain costs O(L + B) sub-block
    /// accesses instead of O(L × B).
    pub fn append_neighbours(&mut self, v: Gid, us: &[Gid]) -> Result<()> {
        if us.is_empty() {
            return Ok(());
        }
        if !v.is_vertex() {
            return Err(GraphStorageError::InvalidVertex(format!(
                "tagged word passed as vertex: {v:?}"
            )));
        }
        if let Some(u) = us.iter().find(|u| !u.is_vertex()) {
            return Err(GraphStorageError::InvalidVertex(format!(
                "tagged word passed as vertex: {v:?} -> {u:?}"
            )));
        }
        self.ensure_level0(v)?;
        // Locate the tail once.
        let mut level = 0usize;
        let mut sub = v.raw();
        let mut prev: Option<(usize, u64)> = None;
        let mut occ;
        loop {
            let d = self.level(level).d as usize;
            let (o, last) = self.sub_meta(level, sub)?;
            if o < d {
                occ = o;
                break;
            }
            match last {
                Slot::Pointer { level: nl, sub: ns } => {
                    prev = Some((level, sub));
                    level = nl as usize;
                    sub = ns;
                }
                Slot::Entry(_) => {
                    occ = o;
                    break;
                }
                Slot::Empty => unreachable!("occupancy said the slot is used"),
            }
        }
        // Advance the cursor per entry, growing in place when the tail
        // fills — each step touches only the (cached) tail block.
        for &u in us {
            let d = self.level(level).d as usize;
            if occ < d {
                self.write_sub_slot(level, sub, occ, Slot::Entry(u))?;
                occ += 1;
            } else {
                let displaced = match self.sub_meta(level, sub)?.1 {
                    Slot::Entry(g) => g,
                    _ => unreachable!("the cursor tail never ends in a pointer"),
                };
                let (nl, ns, no, moved) = self.grow_chain(level, sub, displaced, u, prev)?;
                if !moved {
                    // Link left a pointer behind: the old tail is now the
                    // new tail's predecessor. (Move redirected the old
                    // predecessor instead, so `prev` stays.)
                    prev = Some((level, sub));
                }
                level = nl;
                sub = ns;
                occ = no;
            }
            self.entries += 1;
        }
        Ok(())
    }

    /// Grows a chain whose tail sub-block `(level, sub)` is full of
    /// entries. `displaced` is the entry in the tail's last slot, `new` the
    /// incoming one. Returns the new tail `(level, sub, occupancy)` and
    /// whether the Move policy relocated the old tail (vs. linking past
    /// it).
    fn grow_chain(
        &mut self,
        level: usize,
        sub: u64,
        displaced: Gid,
        new: Gid,
        prev: Option<(usize, u64)>,
    ) -> Result<(usize, u64, usize, bool)> {
        let top = self.top_level();
        let target = (level + 1).min(top);
        let use_move =
            self.config.growth == GrowthPolicy::Move && level >= 1 && level < top && prev.is_some();
        if use_move {
            // Copy the whole sub-block up a level, plus the new entry; the
            // predecessor's pointer is redirected and the old sub-block
            // freed. d_{ℓ+1} ≥ 2·d_ℓ guarantees room.
            let d = self.level(level).d as usize;
            let old = self.read_sub(level, sub)?;
            let new_sub = self.alloc_sub(target)?;
            let mut up = vec![0u8; self.level(target).sub_bytes()];
            for i in 0..(d - 1) {
                let s = read_slot(&old, i)?;
                write_slot(&mut up, i, s)?;
            }
            write_slot(&mut up, d - 1, Slot::Entry(displaced))?;
            write_slot(&mut up, d, Slot::Entry(new))?;
            self.write_sub(target, new_sub, &up)?;
            let (plevel, psub) = prev.expect("checked");
            let pd = self.level(plevel).d as usize;
            self.write_sub_slot(
                plevel,
                psub,
                pd - 1,
                Slot::Pointer {
                    level: target as u8,
                    sub: new_sub,
                },
            )?;
            self.free_sub(level, sub);
            Ok((target, new_sub, d + 1, true))
        } else {
            // Link: displace the last entry into a fresh sub-block and leave
            // a pointer behind.
            let d = self.level(level).d as usize;
            let new_sub = self.alloc_sub(target)?;
            let mut fresh = vec![0u8; self.level(target).sub_bytes()];
            write_slot(&mut fresh, 0, Slot::Entry(displaced))?;
            write_slot(&mut fresh, 1, Slot::Entry(new))?;
            self.write_sub(target, new_sub, &fresh)?;
            self.write_sub_slot(
                level,
                sub,
                d - 1,
                Slot::Pointer {
                    level: target as u8,
                    sub: new_sub,
                },
            )?;
            Ok((target, new_sub, 2, false))
        }
    }

    /// Collects vertex `v`'s full adjacency list into `out` (append).
    pub fn read_adjacency(&mut self, v: Gid, out: &mut Vec<Gid>) -> Result<()> {
        let lc = *self.level(0);
        let (block, _) = sub_position(v.raw(), lc.k(), lc.sub_bytes());
        if block >= self.files[0].len_blocks() {
            return Ok(()); // Vertex never stored here.
        }
        let mut level = 0usize;
        let mut sub = v.raw();
        loop {
            let buf = self.read_sub(level, sub)?;
            let d = self.level(level).d as usize;
            let occ = occupancy(&buf, d);
            let mut next: Option<(usize, u64)> = None;
            for i in 0..occ {
                match read_slot(&buf, i)? {
                    Slot::Entry(g) => out.push(g),
                    Slot::Pointer { level: nl, sub: ns } => {
                        if i != d - 1 {
                            return Err(GraphStorageError::corrupt(
                                "pointer found before the last slot",
                            ));
                        }
                        next = Some((nl as usize, ns));
                    }
                    Slot::Empty => unreachable!("within occupancy"),
                }
            }
            match next {
                Some((nl, ns)) => {
                    level = nl;
                    sub = ns;
                }
                None => return Ok(()),
            }
        }
    }

    /// Enumerates every vertex with a non-empty level-0 sub-block, in id
    /// order.
    pub fn vertices(&mut self) -> Result<Vec<Gid>> {
        let mut out = Vec::new();
        let d = self.level(0).d as usize;
        for v in 0..self.next_sub[0] {
            let sub = self.read_sub(0, v)?;
            if occupancy(&sub, d) > 0 {
                out.push(Gid::new(v));
            }
        }
        Ok(out)
    }

    /// Degree of `v` in this instance.
    pub fn degree(&mut self, v: Gid) -> Result<usize> {
        let mut out = Vec::new();
        self.read_adjacency(v, &mut out)?;
        Ok(out.len())
    }

    /// Length of `v`'s sub-block chain (1 = inline in level 0). Exposed so
    /// tests and benches can observe fragmentation.
    pub fn chain_length(&mut self, v: Gid) -> Result<usize> {
        let lc = *self.level(0);
        let (block, _) = sub_position(v.raw(), lc.k(), lc.sub_bytes());
        if block >= self.files[0].len_blocks() {
            return Ok(0);
        }
        let mut level = 0usize;
        let mut sub = v.raw();
        let mut hops = 1usize;
        loop {
            match self.sub_meta(level, sub)?.1 {
                Slot::Pointer { level: nl, sub: ns } => {
                    level = nl as usize;
                    sub = ns;
                    hops += 1;
                }
                _ => return Ok(hops),
            }
        }
    }

    /// Rewrites vertex `v`'s chain into the most compact shape — the
    /// "background defragmentation during idle time" of §3.4.1. Returns
    /// `true` if anything changed.
    pub fn defragment(&mut self, v: Gid) -> Result<bool> {
        let mut entries = Vec::new();
        self.read_adjacency(v, &mut entries)?;
        if entries.is_empty() {
            return Ok(false);
        }
        // Collect and free the old chain (all levels above 0).
        let mut level = 0usize;
        let mut sub = v.raw();
        let mut old_chain: Vec<(usize, u64)> = Vec::new();
        while let Slot::Pointer { level: nl, sub: ns } = self.sub_meta(level, sub)?.1 {
            level = nl as usize;
            sub = ns;
            old_chain.push((level, sub));
        }
        let compact = self.plan_compact_chain(entries.len());
        if old_chain.len() == compact.len()
            && old_chain
                .iter()
                .map(|(l, _)| *l)
                .eq(compact.iter().copied())
        {
            return Ok(false); // Already compact.
        }
        for &(l, s) in &old_chain {
            self.free_sub(l, s);
        }
        self.rewrite_chain(v, &entries, &compact)?;
        Ok(true)
    }

    /// Defragments every vertex with a fragmented chain. Returns the number
    /// of vertices rewritten.
    pub fn defragment_all(&mut self) -> Result<u64> {
        let mut rewritten = 0;
        for v in 0..self.next_sub[0] {
            if self.defragment(Gid::new(v))? {
                rewritten += 1;
            }
        }
        Ok(rewritten)
    }

    /// Levels (one per hop, after level 0) of the compact chain for a
    /// degree-`n` list.
    fn plan_compact_chain(&self, n: usize) -> Vec<usize> {
        let d0 = self.level(0).d as usize;
        if n <= d0 {
            return Vec::new();
        }
        let mut remaining = n - (d0 - 1);
        let top = self.top_level();
        // Ideal: one hop into the smallest level that holds everything —
        // pointers carry an explicit target level, so levels may be
        // skipped. Oversized lists chain through top-level sub-blocks.
        if let Some(l) = (1..=top).find(|&l| remaining <= self.level(l).d as usize) {
            return vec![l];
        }
        let d_top = self.level(top).d as usize;
        let mut chain = Vec::new();
        while remaining > d_top {
            chain.push(top);
            remaining -= d_top - 1;
        }
        chain.push(top);
        chain
    }

    /// Writes `entries` as a fresh chain over the given levels.
    fn rewrite_chain(&mut self, v: Gid, entries: &[Gid], chain: &[usize]) -> Result<()> {
        let d0 = self.level(0).d as usize;
        let mut l0 = vec![0u8; self.level(0).sub_bytes()];
        if chain.is_empty() {
            for (i, g) in entries.iter().enumerate() {
                write_slot(&mut l0, i, Slot::Entry(*g))?;
            }
            self.write_sub(0, v.raw(), &l0)?;
            return Ok(());
        }
        // Allocate chain sub-blocks first so pointers can be written.
        let subs: Vec<u64> = chain
            .iter()
            .map(|&l| self.alloc_sub(l))
            .collect::<Result<_>>()?;
        for (i, g) in entries[..d0 - 1].iter().enumerate() {
            write_slot(&mut l0, i, Slot::Entry(*g))?;
        }
        write_slot(
            &mut l0,
            d0 - 1,
            Slot::Pointer {
                level: chain[0] as u8,
                sub: subs[0],
            },
        )?;
        self.write_sub(0, v.raw(), &l0)?;
        let mut cursor = d0 - 1;
        for (hop, (&l, &s)) in chain.iter().zip(&subs).enumerate() {
            let d = self.level(l).d as usize;
            let last_hop = hop + 1 == chain.len();
            let take = if last_hop {
                entries.len() - cursor
            } else {
                d - 1
            };
            debug_assert!(take <= d);
            let mut buf = vec![0u8; self.level(l).sub_bytes()];
            for (i, g) in entries[cursor..cursor + take].iter().enumerate() {
                write_slot(&mut buf, i, Slot::Entry(*g))?;
            }
            cursor += take;
            if !last_hop {
                write_slot(
                    &mut buf,
                    d - 1,
                    Slot::Pointer {
                        level: chain[hop + 1] as u8,
                        sub: subs[hop + 1],
                    },
                )?;
            }
            self.write_sub(l, s, &buf)?;
        }
        debug_assert_eq!(cursor, entries.len());
        Ok(())
    }

    // ---- persistence ----

    /// Writes back dirty cached blocks, the metadata file, and syncs.
    pub fn flush(&mut self) -> Result<()> {
        for ev in self.cache.flush_dirty() {
            self.files[ev.key.space as usize].write_block(ev.key.block, &ev.data)?;
        }
        for f in &mut self.files {
            f.sync()?;
        }
        self.save_meta()
    }

    fn meta_path(&self) -> PathBuf {
        self.dir.join("grdb.meta")
    }

    fn save_meta(&self) -> Result<()> {
        let mut out = Vec::new();
        out.extend_from_slice(&META_MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.config.levels.len() as u32).to_le_bytes());
        for l in &self.config.levels {
            out.extend_from_slice(&l.d.to_le_bytes());
            out.extend_from_slice(&(l.block_bytes as u64).to_le_bytes());
        }
        out.extend_from_slice(&self.entries.to_le_bytes());
        for &n in &self.next_sub {
            out.extend_from_slice(&n.to_le_bytes());
        }
        for f in &self.free {
            out.extend_from_slice(&(f.len() as u64).to_le_bytes());
            for &s in f {
                out.extend_from_slice(&s.to_le_bytes());
            }
        }
        let tmp = self.meta_path().with_extension("tmp");
        std::fs::write(&tmp, &out)?;
        std::fs::rename(&tmp, self.meta_path())?;
        Ok(())
    }

    fn load_meta(&mut self) -> Result<()> {
        let path = self.meta_path();
        if !path.exists() {
            return Ok(());
        }
        let bytes = std::fs::read(&path)?;
        let mut pos = 0usize;
        let u32_at = |pos: &mut usize| -> Result<u32> {
            let end = *pos + 4;
            let s = bytes
                .get(*pos..end)
                .ok_or_else(|| GraphStorageError::corrupt("grdb.meta truncated"))?;
            *pos = end;
            Ok(u32::from_le_bytes(s.try_into().unwrap()))
        };
        let magic = u32_at(&mut pos)?;
        if magic != META_MAGIC {
            return Err(GraphStorageError::corrupt("grdb.meta has bad magic"));
        }
        let nlevels = u32_at(&mut pos)? as usize;
        if nlevels != self.config.levels.len() {
            return Err(GraphStorageError::corrupt(format!(
                "instance built with {nlevels} levels, opened with {}",
                self.config.levels.len()
            )));
        }
        let u64_at = |pos: &mut usize| -> Result<u64> {
            let end = *pos + 8;
            let s = bytes
                .get(*pos..end)
                .ok_or_else(|| GraphStorageError::corrupt("grdb.meta truncated"))?;
            *pos = end;
            Ok(u64::from_le_bytes(s.try_into().unwrap()))
        };
        for (i, l) in self.config.levels.iter().enumerate() {
            let d = {
                let end = pos + 4;
                let s = bytes
                    .get(pos..end)
                    .ok_or_else(|| GraphStorageError::corrupt("grdb.meta truncated"))?;
                pos = end;
                u32::from_le_bytes(s.try_into().unwrap())
            };
            let bb = u64_at(&mut pos)? as usize;
            if d != l.d || bb != l.block_bytes {
                return Err(GraphStorageError::corrupt(format!(
                    "level {i} geometry mismatch: file has d={d}, B={bb}"
                )));
            }
        }
        self.entries = u64_at(&mut pos)?;
        for i in 0..nlevels {
            self.next_sub[i] = u64_at(&mut pos)?;
        }
        for i in 0..nlevels {
            let n = u64_at(&mut pos)? as usize;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                list.push(u64_at(&mut pos)?);
            }
            self.free[i] = list;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GrdbConfig;

    fn g(v: u64) -> Gid {
        Gid::new(v)
    }

    fn fresh_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("grdb-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn store(tag: &str) -> GrdbStore {
        GrdbStore::open(&fresh_dir(tag), GrdbConfig::tiny(), IoStats::new()).unwrap()
    }

    #[test]
    fn low_degree_stays_in_level0() {
        let mut s = store("inline");
        s.append_neighbour(g(3), g(10)).unwrap();
        s.append_neighbour(g(3), g(11)).unwrap();
        let mut adj = Vec::new();
        s.read_adjacency(g(3), &mut adj).unwrap();
        assert_eq!(adj, vec![g(10), g(11)]);
        assert_eq!(s.chain_length(g(3)).unwrap(), 1, "d0=2 holds both inline");
    }

    #[test]
    fn third_neighbour_spills_to_level1() {
        // The exact scenario of §3.4.1: "if vertex v already has d0 adjacent
        // vertices and one more is added, a new sub-block is allocated for
        // that vertex in level 1" — with the displaced entry moved there.
        let mut s = store("spill");
        for u in 10..13u64 {
            s.append_neighbour(g(0), g(u)).unwrap();
        }
        let mut adj = Vec::new();
        s.read_adjacency(g(0), &mut adj).unwrap();
        assert_eq!(
            adj,
            vec![g(10), g(11), g(12)],
            "order preserved across the spill"
        );
        assert_eq!(s.chain_length(g(0)).unwrap(), 2);
    }

    #[test]
    fn vertex_zero_neighbour_zero() {
        // The +1 slot bias must keep vertex 0 storable and distinct.
        let mut s = store("zero");
        s.append_neighbour(g(0), g(0)).unwrap();
        let mut adj = Vec::new();
        s.read_adjacency(g(0), &mut adj).unwrap();
        assert_eq!(adj, vec![g(0)]);
    }

    #[test]
    fn unknown_vertex_reads_empty() {
        let mut s = store("unknown");
        s.append_neighbour(g(1), g(2)).unwrap();
        let mut adj = Vec::new();
        s.read_adjacency(g(9999), &mut adj).unwrap();
        assert!(adj.is_empty());
        // A vertex inside the grown range but never written also reads
        // empty (zeroed sub-block).
        let mut adj2 = Vec::new();
        s.read_adjacency(g(0), &mut adj2).unwrap();
        assert!(adj2.is_empty());
    }

    #[test]
    fn hub_chains_through_all_levels() {
        let mut s = store("hub");
        let n = 40u64; // tiny config: single-pass capacity is 12.
        for u in 0..n {
            s.append_neighbour(g(5), g(100 + u)).unwrap();
        }
        let mut adj = Vec::new();
        s.read_adjacency(g(5), &mut adj).unwrap();
        assert_eq!(adj.len(), n as usize);
        assert_eq!(adj, (0..n).map(|u| g(100 + u)).collect::<Vec<_>>());
        // Chain must pass through levels 1 and 2 and keep chaining at the
        // top level.
        assert!(
            s.chain_length(g(5)).unwrap() >= 4,
            "got {}",
            s.chain_length(g(5)).unwrap()
        );
    }

    #[test]
    fn many_vertices_dont_interfere() {
        let mut s = store("many");
        for v in 0..50u64 {
            for u in 0..(v % 7 + 1) {
                s.append_neighbour(g(v), g(1000 + v * 10 + u)).unwrap();
            }
        }
        for v in 0..50u64 {
            let mut adj = Vec::new();
            s.read_adjacency(g(v), &mut adj).unwrap();
            assert_eq!(adj.len() as u64, v % 7 + 1, "vertex {v}");
            assert!(adj.iter().all(|u| (u.raw() - 1000) / 10 == v), "vertex {v}");
        }
        assert_eq!(s.entries(), (0..50u64).map(|v| v % 7 + 1).sum::<u64>());
    }

    #[test]
    fn move_policy_keeps_chains_short() {
        // 8 neighbours under tiny geometry (d = 2, 4, 8):
        // Move  -> L0(1+ptr) -> L2 holding the other 7: chain 2.
        // Link  -> L0(1+ptr) -> L1(3+ptr) -> L2(4): chain 3.
        let dir = fresh_dir("move");
        let mut cfg = GrdbConfig::tiny();
        cfg.growth = GrowthPolicy::Move;
        let mut mv = GrdbStore::open(&dir, cfg, IoStats::new()).unwrap();
        let mut ln = store("move-link-contrast");
        for u in 0..8u64 {
            mv.append_neighbour(g(1), g(50 + u)).unwrap();
            ln.append_neighbour(g(1), g(50 + u)).unwrap();
        }
        for s in [&mut mv, &mut ln] {
            let mut adj = Vec::new();
            s.read_adjacency(g(1), &mut adj).unwrap();
            assert_eq!(adj, (0..8).map(|u| g(50 + u)).collect::<Vec<_>>());
        }
        assert_eq!(mv.chain_length(g(1)).unwrap(), 2);
        assert_eq!(ln.chain_length(g(1)).unwrap(), 3);
    }

    #[test]
    fn link_policy_fragments_then_defragment_compacts() {
        // Degree 7 under Link spreads over L0(1) -> L1(3) -> L2(3): three
        // hops where a single level-2 sub-block (d=8) would do.
        let mut s = store("defrag");
        for u in 0..7u64 {
            s.append_neighbour(g(1), g(50 + u)).unwrap();
        }
        let fragmented = s.chain_length(g(1)).unwrap();
        assert_eq!(fragmented, 3, "link policy should fragment");
        let changed = s.defragment(g(1)).unwrap();
        assert!(changed);
        let compact = s.chain_length(g(1)).unwrap();
        assert_eq!(compact, 2, "compact chain is L0 -> L2");
        let mut adj = Vec::new();
        s.read_adjacency(g(1), &mut adj).unwrap();
        assert_eq!(adj, (0..7).map(|u| g(50 + u)).collect::<Vec<_>>());
        // Second defragment is a no-op.
        assert!(!s.defragment(g(1)).unwrap());
    }

    #[test]
    fn defragment_all_reports_rewrites() {
        let mut s = store("defragall");
        for v in 0..5u64 {
            for u in 0..7u64 {
                s.append_neighbour(g(v), g(u)).unwrap();
            }
        }
        let rewritten = s.defragment_all().unwrap();
        assert_eq!(rewritten, 5);
        assert_eq!(s.defragment_all().unwrap(), 0);
        for v in 0..5u64 {
            assert_eq!(s.degree(g(v)).unwrap(), 7);
        }
    }

    #[test]
    fn freed_subblocks_are_recycled() {
        // Under Move, growing past level 1 frees the level-1 sub-block;
        // the next vertex that spills must reuse it instead of extending
        // the level-1 file.
        let dir = fresh_dir("recycle");
        let mut cfg = GrdbConfig::tiny();
        cfg.growth = GrowthPolicy::Move;
        let mut s = GrdbStore::open(&dir, cfg, IoStats::new()).unwrap();
        for u in 0..8u64 {
            s.append_neighbour(g(1), g(u)).unwrap();
        }
        assert_eq!(
            s.free[1].len(),
            1,
            "move must have freed the level-1 sub-block"
        );
        let next1_before = s.next_sub[1];
        for u in 0..3u64 {
            s.append_neighbour(g(2), g(u)).unwrap();
        }
        assert_eq!(
            s.next_sub[1], next1_before,
            "spill must reuse the freed sub-block"
        );
        assert!(s.free[1].is_empty());
        let mut adj = Vec::new();
        s.read_adjacency(g(2), &mut adj).unwrap();
        assert_eq!(adj.len(), 3);
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = fresh_dir("persist");
        {
            let mut s = GrdbStore::open(&dir, GrdbConfig::tiny(), IoStats::new()).unwrap();
            for u in 0..20u64 {
                s.append_neighbour(g(7), g(u)).unwrap();
            }
            s.flush().unwrap();
        }
        let mut s = GrdbStore::open(&dir, GrdbConfig::tiny(), IoStats::new()).unwrap();
        assert_eq!(s.entries(), 20);
        let mut adj = Vec::new();
        s.read_adjacency(g(7), &mut adj).unwrap();
        assert_eq!(adj, (0..20).map(g).collect::<Vec<_>>());
        // Appends continue cleanly after reopen.
        s.append_neighbour(g(7), g(99)).unwrap();
        assert_eq!(s.degree(g(7)).unwrap(), 21);
    }

    #[test]
    fn geometry_mismatch_on_reopen_rejected() {
        let dir = fresh_dir("mismatch");
        {
            let mut s = GrdbStore::open(&dir, GrdbConfig::tiny(), IoStats::new()).unwrap();
            s.append_neighbour(g(0), g(1)).unwrap();
            s.flush().unwrap();
        }
        let mut other = GrdbConfig::tiny();
        other.levels[1].d = 8;
        other.levels[2].d = 16;
        other.levels[2].block_bytes = 128;
        assert!(GrdbStore::open(&dir, other, IoStats::new()).is_err());
    }

    #[test]
    fn cache_disabled_still_correct() {
        let dir = fresh_dir("nocache");
        let mut cfg = GrdbConfig::tiny();
        cfg.cache_blocks = 0;
        let mut s = GrdbStore::open(&dir, cfg, IoStats::new()).unwrap();
        for u in 0..15u64 {
            s.append_neighbour(g(2), g(u)).unwrap();
        }
        let mut adj = Vec::new();
        s.read_adjacency(g(2), &mut adj).unwrap();
        assert_eq!(adj, (0..15).map(g).collect::<Vec<_>>());
    }

    #[test]
    fn cache_hits_on_hot_vertex() {
        let mut s = store("hot");
        s.append_neighbour(g(1), g(2)).unwrap();
        let mut adj = Vec::new();
        for _ in 0..50 {
            adj.clear();
            s.read_adjacency(g(1), &mut adj).unwrap();
        }
        assert!(s.cache_stats().hits >= 50);
    }

    #[test]
    fn figure_3_4_shape() {
        // Thesis Figure 3.4: 3-level instance with d = 2, 4, 8. A vertex
        // with 9 neighbours occupies L0 (1 entry + ptr), L1 (3 + ptr),
        // L2 (5).
        let mut s = store("fig34");
        for u in 0..9u64 {
            s.append_neighbour(g(4), g(20 + u)).unwrap();
        }
        assert_eq!(s.chain_length(g(4)).unwrap(), 3);
        let mut adj = Vec::new();
        s.read_adjacency(g(4), &mut adj).unwrap();
        assert_eq!(adj, (0..9).map(|u| g(20 + u)).collect::<Vec<_>>());
    }

    #[test]
    fn tagged_vertex_rejected() {
        let mut s = store("tagged");
        assert!(s.append_neighbour(Gid::tagged(1, 5), g(0)).is_err());
        assert!(s.append_neighbour(g(0), Gid::tagged(2, 5)).is_err());
        assert!(s
            .append_neighbours(g(0), &[g(1), Gid::tagged(2, 5)])
            .is_err());
    }

    #[test]
    fn readahead_turns_following_reads_into_hits() {
        let dir_a = fresh_dir("ra-off");
        let dir_b = fresh_dir("ra-on");
        let mut cfg = GrdbConfig::tiny();
        cfg.cache_blocks = 32;
        let mut off = GrdbStore::open(&dir_a, cfg.clone(), IoStats::new()).unwrap();
        cfg.readahead_blocks = 4;
        let mut on = GrdbStore::open(&dir_b, cfg, IoStats::new()).unwrap();
        for s in [&mut off, &mut on] {
            for v in 0..40u64 {
                s.append_neighbour(g(v), g(500 + v)).unwrap();
            }
            s.flush().unwrap();
        }
        // Drop cached state so the scan starts cold.
        for s in [&mut off, &mut on] {
            for ev in s.cache.drain() {
                assert!(!ev.dirty, "flush left a dirty block behind");
            }
        }
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for v in 0..40u64 {
            off.read_adjacency(g(v), &mut a).unwrap();
            on.read_adjacency(g(v), &mut b).unwrap();
        }
        assert_eq!(a, b, "readahead must not change results");
        let (s_off, s_on) = (off.cache_stats(), on.cache_stats());
        assert!(
            s_on.misses < s_off.misses,
            "readahead must convert misses into hits: {} !< {}",
            s_on.misses,
            s_off.misses
        );
    }

    #[test]
    fn batched_append_is_layout_identical() {
        // Batched appends must produce the same chains as one-at-a-time
        // appends — across spill boundaries, under both growth policies,
        // and when batches land on an already-fragmented chain.
        for growth in [GrowthPolicy::Link, GrowthPolicy::Move] {
            for batch in [1usize, 2, 3, 5, 40] {
                let mut cfg = GrdbConfig::tiny();
                cfg.growth = growth;
                let tag_a = format!("batch-a-{growth:?}-{batch}");
                let tag_b = format!("batch-b-{growth:?}-{batch}");
                let mut one =
                    GrdbStore::open(&fresh_dir(&tag_a), cfg.clone(), IoStats::new()).unwrap();
                let mut many = GrdbStore::open(&fresh_dir(&tag_b), cfg, IoStats::new()).unwrap();
                let us: Vec<Gid> = (0..40u64).map(|u| g(100 + u)).collect();
                for chunk in us.chunks(batch) {
                    for &u in chunk {
                        one.append_neighbour(g(5), u).unwrap();
                    }
                    many.append_neighbours(g(5), chunk).unwrap();
                }
                assert_eq!(one.entries(), many.entries());
                assert_eq!(
                    one.chain_length(g(5)).unwrap(),
                    many.chain_length(g(5)).unwrap(),
                    "{growth:?} batch={batch}"
                );
                let (mut a, mut b) = (Vec::new(), Vec::new());
                one.read_adjacency(g(5), &mut a).unwrap();
                many.read_adjacency(g(5), &mut b).unwrap();
                assert_eq!(a, b, "{growth:?} batch={batch}");
                assert_eq!(a, us);
            }
        }
    }
}
