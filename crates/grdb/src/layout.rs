//! Slot encoding and sub-block addressing — the bit- and arithmetic-level
//! core of grDB (§3.4.1, §4.1.6).
//!
//! Every 8-byte slot of a sub-block holds one of:
//!
//! | word                     | meaning                                   |
//! |--------------------------|-------------------------------------------|
//! | `0`                      | empty slot                                |
//! | tag `0`, payload `g + 1` | adjacency entry for vertex `g` (biased by |
//! |                          | one so vertex 0 ≠ empty)                  |
//! | tag `ℓ + 1`, payload `s` | pointer to sub-block `s` at level `ℓ`     |
//!
//! The 3-bit tag is the thesis' "3 most significant bits … reserved for the
//! grDB's internal use to mark when the value is a pointer". With tags
//! 1..=6 carrying pointers and tag 7 reserved ([`Gid::NIL`]), six levels
//! are addressable and 61-bit vertex ids remain usable.

use mssg_types::gid::{ID_MASK, TAG_MASK};
use mssg_types::{Gid, GraphStorageError, Result};

/// Decoded contents of one slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Slot {
    /// Unused slot.
    Empty,
    /// An adjacency entry.
    Entry(Gid),
    /// A link to `sub` at `level`.
    Pointer {
        /// Target level.
        level: u8,
        /// Target sub-block id within that level.
        sub: u64,
    },
}

/// Encodes a slot into its 8-byte word.
pub fn encode_slot(slot: Slot) -> Result<u64> {
    match slot {
        Slot::Empty => Ok(0),
        Slot::Entry(g) => {
            if !g.is_vertex() || g.raw() + 1 > ID_MASK {
                return Err(GraphStorageError::InvalidVertex(format!(
                    "vertex {g:?} not storable in a grDB slot"
                )));
            }
            Ok(g.raw() + 1)
        }
        Slot::Pointer { level, sub } => {
            if level >= 6 {
                return Err(GraphStorageError::InvalidVertex(format!(
                    "pointer level {level} out of range (max 5)"
                )));
            }
            if sub & TAG_MASK != 0 {
                return Err(GraphStorageError::InvalidVertex(format!(
                    "sub-block id {sub:#x} overflows the 61-bit pointer payload"
                )));
            }
            Ok(Gid::tagged(level + 1, sub).raw())
        }
    }
}

/// Decodes an 8-byte word into a slot.
pub fn decode_slot(word: u64) -> Result<Slot> {
    if word == 0 {
        return Ok(Slot::Empty);
    }
    let g = Gid::from_raw(word);
    match g.tag() {
        0 => Ok(Slot::Entry(Gid::new(word - 1))),
        t @ 1..=6 => Ok(Slot::Pointer {
            level: t - 1,
            sub: g.payload(),
        }),
        _ => Err(GraphStorageError::corrupt(format!(
            "reserved tag in slot word {word:#x}"
        ))),
    }
}

/// Reads slot `i` from a sub-block byte buffer.
pub fn read_slot(sub: &[u8], i: usize) -> Result<Slot> {
    let off = i * 8;
    let bytes = sub
        .get(off..off + 8)
        .ok_or_else(|| GraphStorageError::corrupt("slot index beyond sub-block"))?;
    decode_slot(u64::from_le_bytes(bytes.try_into().unwrap()))
}

/// Writes slot `i` of a sub-block byte buffer.
pub fn write_slot(sub: &mut [u8], i: usize, slot: Slot) -> Result<()> {
    let word = encode_slot(slot)?;
    let off = i * 8;
    sub.get_mut(off..off + 8)
        .ok_or_else(|| GraphStorageError::corrupt("slot index beyond sub-block"))?
        .copy_from_slice(&word.to_le_bytes());
    Ok(())
}

/// Number of occupied slots. Sub-blocks fill strictly left to right, so
/// the occupancy boundary is found by binary search — O(log d), which
/// matters for the 16K-word top-level sub-blocks.
pub fn occupancy(sub: &[u8], d: usize) -> usize {
    let word_at = |i: usize| u64::from_le_bytes(sub[i * 8..i * 8 + 8].try_into().unwrap());
    let (mut lo, mut hi) = (0usize, d);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if word_at(mid) != 0 {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Position of sub-block `s` within its level: `(block_id, byte_offset)`.
/// `k` is the level's sub-blocks-per-block.
pub fn sub_position(s: u64, k: u64, sub_bytes: usize) -> (u64, usize) {
    (s / k, (s % k) as usize * sub_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_roundtrips() {
        let slots = [
            Slot::Empty,
            Slot::Entry(Gid::new(0)),
            Slot::Entry(Gid::new(12345)),
            Slot::Entry(Gid::new(ID_MASK - 1)),
            Slot::Pointer { level: 0, sub: 0 },
            Slot::Pointer {
                level: 5,
                sub: 999_999,
            },
        ];
        for s in slots {
            assert_eq!(decode_slot(encode_slot(s).unwrap()).unwrap(), s, "{s:?}");
        }
    }

    #[test]
    fn vertex_zero_distinct_from_empty() {
        let w = encode_slot(Slot::Entry(Gid::new(0))).unwrap();
        assert_ne!(w, 0);
        assert_eq!(decode_slot(w).unwrap(), Slot::Entry(Gid::new(0)));
        assert_eq!(decode_slot(0).unwrap(), Slot::Empty);
    }

    #[test]
    fn max_vertex_rejected() {
        // Gid::MAX + 1 would collide with the tag space.
        assert!(encode_slot(Slot::Entry(Gid::new(ID_MASK))).is_err());
    }

    #[test]
    fn pointer_level_range() {
        assert!(encode_slot(Slot::Pointer { level: 6, sub: 0 }).is_err());
        assert!(encode_slot(Slot::Pointer { level: 5, sub: 1 }).is_ok());
    }

    #[test]
    fn reserved_tag_detected() {
        let w = Gid::NIL.raw();
        assert!(decode_slot(w).is_err());
    }

    #[test]
    fn slot_read_write_in_buffer() {
        let mut sub = vec![0u8; 32]; // d = 4
        write_slot(&mut sub, 2, Slot::Entry(Gid::new(7))).unwrap();
        assert_eq!(read_slot(&sub, 2).unwrap(), Slot::Entry(Gid::new(7)));
        assert_eq!(read_slot(&sub, 0).unwrap(), Slot::Empty);
        assert!(read_slot(&sub, 4).is_err());
        assert!(write_slot(&mut sub, 4, Slot::Empty).is_err());
    }

    #[test]
    fn occupancy_binary_search() {
        let d = 16;
        for filled in 0..=d {
            let mut sub = vec![0u8; d * 8];
            for i in 0..filled {
                write_slot(&mut sub, i, Slot::Entry(Gid::new(i as u64))).unwrap();
            }
            assert_eq!(occupancy(&sub, d), filled, "filled={filled}");
        }
    }

    #[test]
    fn occupancy_counts_pointers_too() {
        let mut sub = vec![0u8; 32];
        write_slot(&mut sub, 0, Slot::Entry(Gid::new(1))).unwrap();
        write_slot(&mut sub, 1, Slot::Pointer { level: 1, sub: 3 }).unwrap();
        assert_eq!(occupancy(&sub, 4), 2);
    }

    #[test]
    fn thesis_sub_block_addressing() {
        // §3.4.1: sub-block s is stored in block s/k at offset
        // b·d·(s % k). Level 0 of the thesis config: d=2, B=4096, k=256.
        let (blk, off) = sub_position(0, 256, 16);
        assert_eq!((blk, off), (0, 0));
        let (blk, off) = sub_position(255, 256, 16);
        assert_eq!((blk, off), (0, 255 * 16));
        let (blk, off) = sub_position(256, 256, 16);
        assert_eq!((blk, off), (1, 0));
        let (blk, off) = sub_position(1000, 256, 16);
        assert_eq!((blk, off), (3, (1000 % 256) * 16));
    }
}
