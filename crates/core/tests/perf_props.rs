//! Property tests for the hot-path performance knobs: pooled buffers,
//! parallel ordered ingestion, and batched store flushes are pure
//! optimisations — under any seeded edge stream the stored graph must be
//! **byte-identical** (same per-vertex adjacency order, captured by a
//! digest) to the plain single-front-end baseline, even when the tuned
//! run is killed mid-flight and resumed.

use datacutter::{FaultKind, FaultPlan};
use mssg_core::backend::{BackendKind, BackendOptions};
use mssg_core::ingest::{ingest, IngestOptions};
use mssg_core::MssgCluster;
use mssg_types::Edge;
use proptest::prelude::*;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("core-perf-props-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A seeded stream with repeated sources, so per-vertex adjacency order
/// spans many windows and any reordering shows up in the digest.
fn chaos_stream(seed: u64, edges: usize) -> Vec<Edge> {
    let mut x = seed | 1;
    (0..edges)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            Edge::of(x % 23, (x >> 17) % 200)
        })
        .collect()
}

/// FNV-1a over every node's sorted vertex set with each adjacency list in
/// *stored* order: equal digests ⇔ byte-identical stored graphs.
fn graph_digest(cluster: &MssgCluster) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: [u8; 8]| {
        for b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for i in 0..cluster.nodes() {
        let lists = cluster.with_backend(i, |db| {
            use graphdb::GraphDbExt;
            let mut vs = db.local_vertices().unwrap();
            vs.sort_unstable();
            vs.into_iter()
                .map(|v| (v, db.neighbors(v).unwrap()))
                .collect::<Vec<_>>()
        });
        for (v, ns) in lists {
            eat(v.raw().to_le_bytes());
            for u in ns {
                eat(u.raw().to_le_bytes());
            }
        }
    }
    h
}

fn baseline_digest(seed: u64, kind: BackendKind, opts: &BackendOptions) -> u64 {
    let dir = tmpdir(&format!("base-{}-{seed:x}", kind.name()));
    let mut cluster = MssgCluster::new(&dir, 3, kind, opts).unwrap();
    let plain = IngestOptions {
        window_edges: 16,
        ..Default::default()
    };
    ingest(&mut cluster, chaos_stream(seed, 300).into_iter(), &plain).unwrap();
    graph_digest(&cluster)
}

fn tuned_options() -> IngestOptions {
    IngestOptions {
        front_ends: 3,
        window_edges: 16,
        pool_blocks: 16,
        ordered: true,
        store_batch_edges: 128,
        ..Default::default()
    }
}

proptest! {
    // Each case runs several full filter graphs; keep the count modest.
    #![proptest_config(ProptestConfig { cases: 8 })]

    /// Pooling + parallel front-ends + batching change *when* allocations
    /// and flushes happen, never *what* is stored.
    #[test]
    fn tuned_ingest_is_byte_identical_to_baseline(seed in any::<u64>()) {
        for kind in [BackendKind::HashMap, BackendKind::Grdb] {
            let opts = BackendOptions {
                grdb: Some(grdb::GrdbConfig::tiny()),
                ..Default::default()
            };
            let want = baseline_digest(seed, kind, &opts);
            let dir = tmpdir(&format!("tuned-{}-{seed:x}", kind.name()));
            let mut cluster = MssgCluster::new(&dir, 3, kind, &opts).unwrap();
            ingest(
                &mut cluster,
                chaos_stream(seed, 300).into_iter(),
                &tuned_options(),
            )
            .unwrap();
            prop_assert_eq!(
                graph_digest(&cluster),
                want,
                "tuned {} ingest diverged (seed {seed:x})",
                kind.name()
            );
        }
    }

    /// A tuned run killed mid-batch (its unflushed windows are unmarked)
    /// converges to the exact baseline digest after a resumed replay —
    /// the deferred checkpoint marks never claim durability they lack.
    #[test]
    fn killed_tuned_ingest_resumes_to_baseline_digest(seed in any::<u64>(), op in 2u64..8) {
        let opts = BackendOptions::default();
        let want = baseline_digest(seed, BackendKind::HashMap, &opts);
        let dir = tmpdir(&format!("killed-{seed:x}"));
        let mut cluster = MssgCluster::new(&dir, 3, BackendKind::HashMap, &opts).unwrap();
        let chaos = IngestOptions {
            fault_plan: Some(FaultPlan::new().inject("store", Some(1), op, FaultKind::Panic)),
            ..tuned_options()
        };
        ingest(&mut cluster, chaos_stream(seed, 300).into_iter(), &chaos).unwrap_err();
        let retry = IngestOptions {
            resume: true,
            ..tuned_options()
        };
        ingest(&mut cluster, chaos_stream(seed, 300).into_iter(), &retry).unwrap();
        prop_assert_eq!(graph_digest(&cluster), want, "resume diverged (seed {seed:x})");
    }
}
