//! Property tests for the fault-tolerance layer: under *any* seeded chaos
//! plan, a supervised ingestion either completes with exactly the
//! fault-free edge count or fails with a typed error — never a deadlock,
//! never a silently wrong graph — and a failed run always converges after
//! a resumed retry.

use datacutter::FaultPlan;
use mssg_core::backend::{BackendKind, BackendOptions};
use mssg_core::ingest::{ingest, IngestOptions};
use mssg_core::MssgCluster;
use mssg_types::Edge;
use proptest::prelude::*;
use std::time::{Duration, Instant};

fn ring(n: u64) -> Vec<Edge> {
    (0..n).map(|i| Edge::of(i, (i + 1) % n)).collect()
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("core-fault-props-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

proptest! {
    // Each case spins up a real filter graph; keep the count modest.
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// The headline guarantee: chaos in, either the exact fault-free
    /// result or a typed error out — bounded by the stream timeout, so a
    /// dead filter can never hang the run.
    #[test]
    fn chaos_completes_exactly_or_fails_typed(seed in any::<u64>()) {
        const EDGES: u64 = 80;
        const ENTRIES: u64 = 2 * EDGES; // each undirected edge stored twice
        let dir = tmpdir(&format!("seed{seed:x}"));
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let opts = IngestOptions {
            front_ends: 2,
            window_edges: 8,
            max_restarts: 8,
            stream_timeout: Some(Duration::from_secs(20)),
            fault_plan: Some(FaultPlan::chaos(seed, &[("ingest", 2), ("store", 2)])),
            ..Default::default()
        };
        let start = Instant::now();
        let outcome = ingest(&mut cluster, ring(EDGES).into_iter(), &opts);
        prop_assert!(
            start.elapsed() < Duration::from_secs(60),
            "run must terminate promptly, took {:?}", start.elapsed()
        );
        match outcome {
            // Survived (faults absorbed by supervision or never
            // applicable): the stored graph must be *exactly* right.
            Ok(report) => {
                prop_assert_eq!(report.edges, EDGES);
                prop_assert_eq!(cluster.total_entries(), ENTRIES);
            }
            // Died: must be a typed error, and the checkpoint must make a
            // resumed replay of the same stream converge bit-for-bit.
            Err(err) => {
                use mssg_types::GraphStorageError as E;
                prop_assert!(
                    matches!(err, E::FilterFailed(_) | E::Fault(_) | E::Timeout(_) | E::Unsupported(_)),
                    "untyped failure: {}", err
                );
                let retry = IngestOptions {
                    front_ends: 2,
                    window_edges: 8,
                    resume: true,
                    ..Default::default()
                };
                let report = ingest(&mut cluster, ring(EDGES).into_iter(), &retry).unwrap();
                prop_assert_eq!(report.edges, EDGES);
                prop_assert_eq!(cluster.total_entries(), ENTRIES, "resume converged");
            }
        }
    }

    /// Plans are a pure function of the seed — the determinism every
    /// "re-run the CI failure locally" workflow depends on.
    #[test]
    fn chaos_plans_are_deterministic(seed in any::<u64>()) {
        let a = FaultPlan::chaos(seed, &[("ingest", 2), ("store", 3)]);
        let b = FaultPlan::chaos(seed, &[("ingest", 2), ("store", 3)]);
        prop_assert_eq!(format!("{:?}", a.specs()), format!("{:?}", b.specs()));
        prop_assert!(!a.is_empty());
    }
}
