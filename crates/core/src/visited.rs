//! Visited (level) structures for the search algorithms.
//!
//! The thesis runs most experiments with an in-memory visited structure
//! ("the simplest way to obtain a fair comparison is to simply fix the
//! visited data-structure") but measures Syn-2B with an **external-memory
//! visited structure** as well (Figures 5.8/5.9), since at 10^12 vertices
//! even one bit per vertex outgrows RAM. Both live here behind one trait.

use kvdb::{KvOptions, KvStore};
use mssg_types::{Gid, Result};
use simio::IoStats;
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Which visited structure a search uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum VisitedKind {
    /// Hash map in memory (the thesis' default experimental setup).
    #[default]
    InMemory,
    /// Dense `level[v]` array indexed by vertex id — the literal data
    /// structure of Algorithm 1 (`level[v] = ∞ for v ∈ V`). Fastest, but
    /// memory scales with the vertex-id space rather than the visited set.
    Dense,
    /// B-tree on disk (the Figure 5.8/5.9 configuration).
    External,
}

/// A per-processor level array: remembers the BFS level at which each
/// vertex was first seen.
pub trait VisitedSet: Send {
    /// Marks `v` visited at `level` if unseen. Returns `true` when `v` was
    /// newly marked.
    fn try_visit(&mut self, v: Gid, level: u32) -> Result<bool>;

    /// The level `v` was first seen at, if any.
    fn level(&mut self, v: Gid) -> Result<Option<u32>>;

    /// Number of visited vertices.
    fn len(&self) -> u64;

    /// `true` when nothing is visited.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Hash-map visited structure.
#[derive(Default)]
pub struct InMemoryVisited {
    map: HashMap<Gid, u32>,
}

impl InMemoryVisited {
    /// An empty structure.
    pub fn new() -> InMemoryVisited {
        InMemoryVisited::default()
    }
}

impl VisitedSet for InMemoryVisited {
    fn try_visit(&mut self, v: Gid, level: u32) -> Result<bool> {
        use std::collections::hash_map::Entry;
        match self.map.entry(v) {
            Entry::Occupied(_) => Ok(false),
            Entry::Vacant(e) => {
                e.insert(level);
                Ok(true)
            }
        }
    }

    fn level(&mut self, v: Gid) -> Result<Option<u32>> {
        Ok(self.map.get(&v).copied())
    }

    fn len(&self) -> u64 {
        self.map.len() as u64
    }
}

/// The dense level array of Algorithm 1: `levels[v]` holds the discovery
/// level, `u32::MAX` meaning unvisited. Grows on demand to cover the
/// highest vertex id touched.
#[derive(Default)]
pub struct DenseVisited {
    levels: Vec<u32>,
    visited: u64,
}

const DENSE_UNVISITED: u32 = u32::MAX;

impl DenseVisited {
    /// An empty array.
    pub fn new() -> DenseVisited {
        DenseVisited::default()
    }

    fn slot(&mut self, v: Gid) -> usize {
        let idx = v.index();
        if idx >= self.levels.len() {
            self.levels.resize(idx + 1, DENSE_UNVISITED);
        }
        idx
    }
}

impl VisitedSet for DenseVisited {
    fn try_visit(&mut self, v: Gid, level: u32) -> Result<bool> {
        assert!(
            level != DENSE_UNVISITED,
            "level u32::MAX is the unvisited sentinel"
        );
        let i = self.slot(v);
        if self.levels[i] == DENSE_UNVISITED {
            self.levels[i] = level;
            self.visited += 1;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn level(&mut self, v: Gid) -> Result<Option<u32>> {
        let i = self.slot(v);
        Ok((self.levels[i] != DENSE_UNVISITED).then_some(self.levels[i]))
    }

    fn len(&self) -> u64 {
        self.visited
    }
}

/// Disk-backed visited structure over the `kvdb` B-tree.
pub struct ExternalVisited {
    store: KvStore,
}

impl ExternalVisited {
    /// Creates a fresh structure backed by a file at `path` (any existing
    /// file is replaced — a visited set is per-query state).
    pub fn create(path: &Path, stats: Arc<IoStats>) -> Result<ExternalVisited> {
        let _ = std::fs::remove_file(path);
        Ok(ExternalVisited {
            store: KvStore::open(path, KvOptions::default(), stats)?,
        })
    }
}

impl VisitedSet for ExternalVisited {
    fn try_visit(&mut self, v: Gid, level: u32) -> Result<bool> {
        let key = v.raw().to_be_bytes();
        if self.store.get(&key)?.is_some() {
            return Ok(false);
        }
        self.store.put(&key, &level.to_le_bytes())?;
        Ok(true)
    }

    fn level(&mut self, v: Gid) -> Result<Option<u32>> {
        Ok(self
            .store
            .get(&v.raw().to_be_bytes())?
            .map(|b| u32::from_le_bytes(b.as_slice().try_into().unwrap_or([0; 4]))))
    }

    fn len(&self) -> u64 {
        self.store.len()
    }
}

impl VisitedKind {
    /// Opens a visited structure for one processor of a search.
    pub fn open(
        self,
        scratch_dir: &Path,
        processor: usize,
        stats: Arc<IoStats>,
    ) -> Result<Box<dyn VisitedSet>> {
        Ok(match self {
            VisitedKind::InMemory => Box::new(InMemoryVisited::new()),
            VisitedKind::Dense => Box::new(DenseVisited::new()),
            VisitedKind::External => {
                std::fs::create_dir_all(scratch_dir)?;
                Box::new(ExternalVisited::create(
                    &scratch_dir.join(format!("visited-{processor}.db")),
                    stats,
                )?)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(v: u64) -> Gid {
        Gid::new(v)
    }

    fn check_contract(vs: &mut dyn VisitedSet) {
        assert!(vs.is_empty());
        assert!(vs.try_visit(g(5), 1).unwrap());
        assert!(!vs.try_visit(g(5), 2).unwrap(), "second visit rejected");
        assert_eq!(vs.level(g(5)).unwrap(), Some(1), "first level wins");
        assert_eq!(vs.level(g(6)).unwrap(), None);
        assert!(
            vs.try_visit(g(0), 0).unwrap(),
            "level 0 and vertex 0 are valid"
        );
        assert_eq!(vs.len(), 2);
    }

    #[test]
    fn in_memory_contract() {
        let mut vs = InMemoryVisited::new();
        check_contract(&mut vs);
    }

    #[test]
    fn external_contract() {
        let dir = std::env::temp_dir().join(format!("core-visited-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut vs = ExternalVisited::create(&dir.join("contract.db"), IoStats::new()).unwrap();
        check_contract(&mut vs);
    }

    #[test]
    fn external_is_fresh_per_query() {
        let dir = std::env::temp_dir().join(format!("core-visited-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fresh.db");
        {
            let mut vs = ExternalVisited::create(&path, IoStats::new()).unwrap();
            vs.try_visit(g(1), 1).unwrap();
        }
        let vs = ExternalVisited::create(&path, IoStats::new()).unwrap();
        assert!(vs.is_empty(), "create() must start a fresh query state");
    }

    #[test]
    fn dense_contract() {
        let mut vs = DenseVisited::new();
        check_contract(&mut vs);
    }

    #[test]
    fn dense_grows_sparsely_addressed() {
        let mut vs = DenseVisited::new();
        assert!(vs.try_visit(g(1_000_000), 2).unwrap());
        assert_eq!(vs.level(g(1_000_000)).unwrap(), Some(2));
        assert_eq!(vs.level(g(999_999)).unwrap(), None);
        assert_eq!(vs.len(), 1);
    }

    #[test]
    fn kind_factory() {
        let dir = std::env::temp_dir().join(format!("core-visited-{}-f", std::process::id()));
        for kind in [
            VisitedKind::InMemory,
            VisitedKind::Dense,
            VisitedKind::External,
        ] {
            let mut vs = kind.open(&dir, 3, IoStats::new()).unwrap();
            assert!(vs.try_visit(g(9), 4).unwrap());
            assert_eq!(vs.level(g(9)).unwrap(), Some(4));
        }
    }

    #[test]
    fn external_scales_past_memory_shape() {
        // Not a memory test per se, just bulk-correctness on many keys.
        let dir = std::env::temp_dir().join(format!("core-visited-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut vs = ExternalVisited::create(&dir.join("bulk.db"), IoStats::new()).unwrap();
        for i in 0..5000u64 {
            assert!(vs.try_visit(g(i), (i % 7) as u32).unwrap());
        }
        assert_eq!(vs.len(), 5000);
        for i in 0..5000u64 {
            assert_eq!(vs.level(g(i)).unwrap(), Some((i % 7) as u32));
        }
    }
}
