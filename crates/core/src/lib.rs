#![warn(missing_docs)]
//! `mssg-core` — the MSSG framework: one or more front-end nodes for
//! ingestion and queries, a set of back-end nodes owning GraphDB instances,
//! and the services that tie them together over the DataCutter substrate
//! (thesis chapter 3).
//!
//! - [`backend`] — the GraphDB service registry: open any of the six
//!   storage engines behind one enum,
//! - [`cluster`] — [`MssgCluster`], the simulated cluster: one thread per
//!   back-end node, each with its own GraphDB instance rooted in its own
//!   directory,
//! - [`decluster`] — the Ingestion service's clustering/declustering
//!   strategies (vertex-hash, vertex-round-robin, edge-round-robin),
//! - [`ingest`] — the streaming Ingestion service: windows of edges flow
//!   from front-end filters to back-end store filters,
//! - [`epoch`] — graph epochs: ingestion advances the cluster epoch at
//!   window-checkpoint boundaries, queries pin it for consistent
//!   snapshots (the contract `mssg-serve` builds on),
//! - [`visited`] — in-memory and external-memory visited structures for
//!   the search algorithms (the Figure 5.8/5.9 ablation),
//! - [`bfs`] — parallel out-of-core BFS (Algorithm 1) and its pipelined
//!   variant (Algorithm 2), implemented as DataCutter filter graphs,
//! - [`query`] — the Query service: a registry of analyses executable by
//!   name,
//! - [`telemetry`] — [`TelemetryReport`], the unified per-run observation
//!   record every service returns (wall time, disk and message traffic,
//!   per-filter breakdowns, metrics snapshot).

pub mod backend;
pub mod bfs;
pub mod cluster;
pub mod components;
pub mod decluster;
pub mod degrees;
pub mod epoch;
pub mod ingest;
pub mod msf;
pub mod query;
pub mod telemetry;
pub mod visited;

pub use backend::{BackendKind, BackendOptions};
pub use bfs::{BfsMode, BfsOptions, SearchMetrics};
pub use cluster::MssgCluster;
pub use components::{connected_components, ComponentsOptions, ComponentsResult};
pub use decluster::Declustering;
pub use degrees::{degree_distribution, DegreeReport};
pub use epoch::{EpochManager, EpochPin, EpochUpdate};
pub use ingest::{ingest_typed, IngestOptions, IngestReport, TypedIngestReport};
pub use msf::{minimum_spanning_forest, MsfResult};
pub use query::{k_hop, KHopResult, QueryParams, QueryService};
pub use telemetry::TelemetryReport;
pub use visited::VisitedKind;
