//! The simulated MSSG cluster.
//!
//! A cluster is `p` back-end logical nodes (threads when a service is
//! running), each owning one GraphDB instance rooted in its own directory —
//! its "local disk" — plus per-node I/O statistics. Nothing is shared
//! between nodes except messages, mirroring the distributed-memory target
//! (DESIGN.md §2).

use crate::backend::{open_backend, BackendKind, BackendOptions};
use crate::epoch::EpochManager;
use crate::telemetry::TelemetryReport;
use datacutter::RunReport;
use graphdb::GraphDb;
use mssg_obs::Telemetry;
use mssg_types::{Gid, Result};
use parking_lot::Mutex;
use simio::{IoSnapshot, IoStats};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A back-end node's GraphDB, shareable with the filter threads that run
/// services over it. Only the filter placed on the owning node touches it
/// during a run; the mutex makes that safe, not concurrent.
pub type SharedBackend = Arc<Mutex<Box<dyn GraphDb + Send>>>;

/// The MSSG cluster: back-end storage nodes and their databases.
pub struct MssgCluster {
    backends: Vec<SharedBackend>,
    stats: Vec<Arc<IoStats>>,
    kind: BackendKind,
    dir: PathBuf,
    /// Vertex-owner map published by a `VertexRoundRobin` ingestion; used
    /// by searches that may consult the ingestion service's knowledge.
    pub(crate) owner_map: Option<Arc<HashMap<Gid, usize>>>,
    /// Set by an edge-granularity ingestion: ownership is unknowable, so
    /// searches must broadcast their fringes (Algorithm 1's third case).
    pub(crate) broadcast_fringe: bool,
    /// Telemetry bundle handed to every service run over this cluster.
    telemetry: Telemetry,
    /// Epoch counter/gate advanced by ingestion at checkpoint boundaries
    /// and pinned by snapshot-consistent queries (DESIGN.md §13).
    epoch: Arc<EpochManager>,
}

impl MssgCluster {
    /// Creates a cluster of `nodes` back-ends with `kind` storage, rooted
    /// at `dir/node-<i>/`.
    pub fn new(
        dir: &Path,
        nodes: usize,
        kind: BackendKind,
        options: &BackendOptions,
    ) -> Result<MssgCluster> {
        assert!(nodes > 0, "cluster needs at least one back-end node");
        let mut backends = Vec::with_capacity(nodes);
        let mut stats = Vec::with_capacity(nodes);
        for i in 0..nodes {
            let node_stats = IoStats::new();
            let db = open_backend(
                kind,
                &dir.join(format!("node-{i}")),
                options,
                Arc::clone(&node_stats),
            )?;
            backends.push(Arc::new(Mutex::new(db)));
            stats.push(node_stats);
        }
        Ok(MssgCluster {
            backends,
            stats,
            kind,
            dir: dir.to_path_buf(),
            owner_map: None,
            broadcast_fringe: false,
            telemetry: Telemetry::disabled(),
            epoch: Arc::new(EpochManager::new()),
        })
    }

    /// Attaches a telemetry bundle: every subsequent service run (ingest,
    /// BFS, components, …) emits spans into its tracer and records metrics
    /// into its registry. Disabled by default.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The cluster's telemetry bundle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The cluster's epoch manager. Ingestion bumps it at window-checkpoint
    /// boundaries; queries that need snapshot consistency pin it. The
    /// `Arc` lets a serving layer hold the gate without borrowing the
    /// cluster itself.
    pub fn epoch_manager(&self) -> &Arc<EpochManager> {
        &self.epoch
    }

    /// The current graph epoch (completed checkpoint boundaries).
    pub fn epoch(&self) -> u64 {
        self.epoch.current()
    }

    /// Folds a substrate run report with the cluster's disk-I/O delta
    /// since `io_before` and the current metrics snapshot.
    pub(crate) fn telemetry_report(
        &self,
        run: RunReport,
        io_before: &simio::IoSnapshot,
    ) -> TelemetryReport {
        // Publish the block-cache counters as gauges (cumulative values,
        // `set` rather than `add`, so repeated service runs stay truthful).
        let mut cache = (0u64, 0u64, 0u64);
        let mut cached_backend = false;
        for b in &self.backends {
            if let Some((h, m, e)) = b.lock().cache_counters() {
                cached_backend = true;
                cache = (cache.0 + h, cache.1 + m, cache.2 + e);
            }
        }
        if cached_backend {
            let metrics = &self.telemetry.metrics;
            metrics.gauge("grdb.cache.hits").set(cache.0 as i64);
            metrics.gauge("grdb.cache.misses").set(cache.1 as i64);
            metrics.gauge("grdb.cache.evictions").set(cache.2 as i64);
        }
        TelemetryReport::from_run(
            run,
            self.io_snapshot().since(io_before),
            self.telemetry.metrics.snapshot(),
        )
    }

    /// Number of back-end nodes.
    pub fn nodes(&self) -> usize {
        self.backends.len()
    }

    /// The storage engine in use.
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// The cluster's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Shared handle to node `i`'s backend.
    pub fn backend(&self, i: usize) -> SharedBackend {
        Arc::clone(&self.backends[i])
    }

    /// Runs a closure against node `i`'s backend.
    pub fn with_backend<T>(&self, i: usize, f: impl FnOnce(&mut (dyn GraphDb + Send)) -> T) -> T {
        let mut guard = self.backends[i].lock();
        f(guard.as_mut())
    }

    /// Node `i`'s I/O statistics handle.
    pub fn io_stats(&self, i: usize) -> Arc<IoStats> {
        Arc::clone(&self.stats[i])
    }

    /// Aggregate I/O snapshot across all nodes.
    pub fn io_snapshot(&self) -> IoSnapshot {
        self.stats
            .iter()
            .map(|s| s.snapshot())
            .fold(IoSnapshot::default(), |acc, s| acc.merged(&s))
    }

    /// Resets every node's I/O counters (between experiment phases).
    pub fn reset_io(&self) {
        for s in &self.stats {
            s.reset();
        }
    }

    /// Flushes every backend to disk.
    pub fn flush_all(&self) -> Result<()> {
        for b in &self.backends {
            b.lock().flush()?;
        }
        Ok(())
    }

    /// Total directed adjacency entries stored across the cluster.
    pub fn total_entries(&self) -> u64 {
        self.backends
            .iter()
            .map(|b| b.lock().stored_entries())
            .sum()
    }

    /// The owner map published by a vertex-round-robin ingestion, if any.
    pub fn owner_map(&self) -> Option<&Arc<HashMap<Gid, usize>>> {
        self.owner_map.as_ref()
    }

    /// `true` when searches must broadcast fringes (edge granularity).
    pub fn broadcast_fringe(&self) -> bool {
        self.broadcast_fringe
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mssg_types::Edge;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("core-cluster-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn nodes_have_independent_storage() {
        let dir = tmpdir("indep");
        let cluster =
            MssgCluster::new(&dir, 3, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        cluster.with_backend(0, |db| db.store_edges(&[Edge::of(1, 2)]).unwrap());
        cluster.with_backend(1, |db| db.store_edges(&[Edge::of(1, 3)]).unwrap());
        // Node 2 knows nothing about vertex 1.
        let n2 = cluster.with_backend(2, |db| {
            use graphdb::GraphDbExt;
            db.neighbors(Gid::new(1)).unwrap()
        });
        assert!(n2.is_empty());
        assert_eq!(cluster.total_entries(), 2);
    }

    #[test]
    fn per_node_directories() {
        let dir = tmpdir("dirs");
        let _cluster =
            MssgCluster::new(&dir, 2, BackendKind::Grdb, &BackendOptions::default()).unwrap();
        assert!(dir.join("node-0").join("grdb").exists());
        assert!(dir.join("node-1").join("grdb").exists());
    }

    #[test]
    fn io_snapshot_aggregates() {
        let dir = tmpdir("io");
        let cluster =
            MssgCluster::new(&dir, 2, BackendKind::StreamDb, &BackendOptions::default()).unwrap();
        cluster.with_backend(0, |db| {
            db.store_edges(&[Edge::of(0, 1)]).unwrap();
            db.flush().unwrap();
        });
        cluster.with_backend(1, |db| {
            db.store_edges(&[Edge::of(2, 3)]).unwrap();
            db.flush().unwrap();
        });
        let snap = cluster.io_snapshot();
        assert_eq!(snap.bytes_written, 32);
        cluster.reset_io();
        assert_eq!(cluster.io_snapshot().bytes_written, 0);
    }
}
