//! Parallel out-of-core breadth-first search — Algorithm 1 (`oocBFS`) and
//! the pipelined Algorithm 2 (`pOOCBFS`) of thesis §4.2.
//!
//! The search runs as `p` BFS filters (one per back-end node, each holding
//! its node's GraphDB) connected all-to-all on a `peers` stream. Rounds are
//! synchronized by per-round `ROUND_DONE` markers carrying each
//! processor's emission count; a global round with zero emissions
//! terminates the search, and a `FOUND` message short-circuits it.
//!
//! Fringe routing handles the three distribution cases of Algorithm 1:
//!
//! - **vertex granularity + globally known mapping** (`GID % p`): fringe
//!   vertices are sent straight to their owners,
//! - **vertex granularity + ingestion-published map**: likewise, using the
//!   owner map published by the round-robin ingestion,
//! - **edge granularity / unknown ownership**: the fringe is broadcast to
//!   all processors.
//!
//! Algorithm 2 differs only in the send discipline: fringe chunks go out
//! as soon as they reach `threshold` vertices, overlapping communication
//! with the remaining expansion, and waiting messages are drained
//! opportunistically during expansion (lines 16–27 of the listing).

use crate::cluster::{MssgCluster, SharedBackend};
use crate::telemetry::TelemetryReport;
use crate::visited::{VisitedKind, VisitedSet};
use datacutter::{DataBuffer, Filter, FilterContext, GraphBuilder, OutPort};
use mssg_types::{AdjBuffer, Gid, GraphStorageError, MetaOp, Result};
use parking_lot::Mutex;
use simio::IoStats;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

/// Which algorithm variant to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BfsMode {
    /// Algorithm 1: send each round's fringe in one batch per destination.
    Standard,
    /// Algorithm 2: send fringe chunks once they reach `threshold`
    /// vertices, overlapping communication with expansion.
    Pipelined {
        /// Chunk size in vertices.
        threshold: usize,
    },
}

/// Search configuration.
#[derive(Clone, Debug)]
pub struct BfsOptions {
    /// Algorithm variant.
    pub mode: BfsMode,
    /// Visited-structure choice (the Figures 5.8/5.9 ablation).
    pub visited: VisitedKind,
    /// Push visited filtering down into the storage engine: locally
    /// visited vertices are marked in the GraphDB's per-vertex metadata
    /// word, and fringe expansion asks for "neighbours whose metadata ≠
    /// visited" — the fused `getAdjacencyListUsingMetadata` path of
    /// Listing 3.1. Reduces routed traffic; results are identical.
    pub db_filter: bool,
    /// Record parent pointers and reconstruct the actual shortest path
    /// (returned in [`SearchMetrics::path`]). Expansion switches to
    /// per-vertex adjacency lookups to attribute each neighbour to its
    /// parent, and fringe messages carry (vertex, parent) pairs.
    pub record_parents: bool,
    /// Safety bound on rounds.
    pub max_rounds: u32,
    /// Scratch directory for external visited structures; defaults to
    /// `<cluster dir>/scratch`.
    pub scratch: Option<PathBuf>,
    /// Per-stream send/recv deadline. BFS's all-to-all exchange blocks on
    /// `ROUND_DONE` markers from every peer, so a dead storage filter
    /// would otherwise hang the search forever; with the deadline it
    /// surfaces as a typed `Timeout`/`FilterFailed` error instead.
    /// Defaults to 120 s; `None` blocks indefinitely (classic semantics).
    pub recv_timeout: Option<std::time::Duration>,
    /// Deterministic fault plan for chaos testing the search pipeline.
    /// Note BFS filters are deliberately *not* supervised: a restarted
    /// peer would have lost its visited set, so mid-search crashes are
    /// fail-stop and the caller retries the whole (idempotent, read-only)
    /// search.
    pub fault_plan: Option<datacutter::FaultPlan>,
}

impl Default for BfsOptions {
    fn default() -> Self {
        BfsOptions {
            mode: BfsMode::Standard,
            visited: VisitedKind::InMemory,
            db_filter: false,
            record_parents: false,
            max_rounds: 10_000,
            scratch: None,
            recv_timeout: Some(std::time::Duration::from_secs(120)),
            fault_plan: None,
        }
    }
}

/// Metadata word the `db_filter` mode writes for locally-visited vertices.
const VISITED_MARK: mssg_types::Meta = 1;

/// Measurements from one search.
#[derive(Clone, Debug)]
pub struct SearchMetrics {
    /// Shortest path length in edges, if the destination was reached.
    pub path_length: Option<u32>,
    /// The vertices of one shortest path (source first, destination
    /// last); only populated under [`BfsOptions::record_parents`].
    pub path: Option<Vec<Gid>>,
    /// BFS rounds executed (maximum over processors).
    pub rounds: u32,
    /// Aggregate adjacency entries scanned — the numerator of the paper's
    /// edges/s metric (Figures 5.7, 5.9).
    pub edges_scanned: u64,
    /// Vertices marked visited across all processors.
    pub vertices_visited: u64,
    /// Time, traffic, and per-filter breakdown of the run.
    pub telemetry: TelemetryReport,
}

impl SearchMetrics {
    /// Aggregate edges scanned per second.
    pub fn edges_per_sec(&self) -> f64 {
        if self.telemetry.elapsed.is_zero() {
            0.0
        } else {
            self.edges_scanned as f64 / self.telemetry.elapsed.as_secs_f64()
        }
    }
}

/// How fringe vertices find their owners.
#[derive(Clone)]
enum Routing {
    /// `GID % p`.
    Hash(usize),
    /// Ingestion-published ownership.
    Map(Arc<HashMap<Gid, usize>>),
    /// Unknown ownership: broadcast.
    Broadcast,
}

impl Routing {
    /// The processor to send `v` to; `None` means broadcast.
    fn target(&self, v: Gid) -> Option<usize> {
        match self {
            Routing::Hash(p) => Some((v.raw() % *p as u64) as usize),
            Routing::Map(m) => m.get(&v).copied(),
            Routing::Broadcast => None,
        }
    }

    fn is_broadcast(&self) -> bool {
        matches!(self, Routing::Broadcast)
    }
}

// Message kinds on the `peers` stream. Tag layout:
// [kind: 8 bits][round: 32 bits][sender: 24 bits].
const KIND_FRINGE: u64 = 0;
const KIND_ROUND_DONE: u64 = 1;
const KIND_FOUND: u64 = 2;

fn tag(kind: u64, round: u32, sender: usize) -> u64 {
    (kind << 56) | ((round as u64) << 24) | sender as u64
}

fn tag_kind(t: u64) -> u64 {
    t >> 56
}

fn tag_round(t: u64) -> u32 {
    ((t >> 24) & 0xffff_ffff) as u32
}

fn tag_sender(t: u64) -> usize {
    (t & 0xff_ffff) as usize
}

/// Shared result sink: each BFS filter merges its contribution on exit.
#[derive(Default)]
struct Outcome {
    found: Option<u32>,
    edges_scanned: u64,
    vertices_visited: u64,
    rounds: u32,
    /// Parent pointers merged from every processor (record_parents mode).
    parents: HashMap<Gid, Gid>,
}

impl Outcome {
    fn merge_found(&mut self, level: u32) {
        self.found = Some(self.found.map_or(level, |f| f.min(level)));
    }
}

/// Runs a BFS from `source` to `dest` over the cluster's stored graph.
pub fn bfs(
    cluster: &MssgCluster,
    source: Gid,
    dest: Gid,
    options: &BfsOptions,
) -> Result<SearchMetrics> {
    let p = cluster.nodes();
    let io_before = cluster.io_snapshot();
    if source == dest {
        return Ok(SearchMetrics {
            path_length: Some(0),
            path: options.record_parents.then(|| vec![source]),
            rounds: 0,
            edges_scanned: 0,
            vertices_visited: 1,
            telemetry: TelemetryReport::default(),
        });
    }
    let routing = if cluster.broadcast_fringe() {
        Routing::Broadcast
    } else if let Some(map) = cluster.owner_map() {
        Routing::Map(Arc::clone(map))
    } else {
        Routing::Hash(p)
    };
    let scratch = options
        .scratch
        .clone()
        .unwrap_or_else(|| cluster.dir().join("scratch"));
    let outcome = Arc::new(Mutex::new(Outcome::default()));

    let mut g = GraphBuilder::new();
    g.channel_capacity(8192);
    g.telemetry(cluster.telemetry().clone());
    if let Some(t) = options.recv_timeout {
        g.stream_timeout(t);
    }
    if let Some(plan) = &options.fault_plan {
        g.fault_plan(plan.clone());
    }
    let backends: Vec<SharedBackend> = (0..p).map(|i| cluster.backend(i)).collect();
    let io_stats: Vec<Arc<IoStats>> = (0..p).map(|i| cluster.io_stats(i)).collect();
    let routing2 = routing.clone();
    let outcome2 = Arc::clone(&outcome);
    let opts = options.clone();
    let filter = g.add_filter("bfs", (0..p).collect(), move |i| {
        Box::new(BfsFilter {
            backend: backends[i].clone(),
            visited_kind: opts.visited,
            scratch: scratch.clone(),
            io_stats: io_stats[i].clone(),
            routing: routing2.clone(),
            source,
            dest,
            mode: opts.mode,
            db_filter: opts.db_filter,
            record_parents: opts.record_parents,
            max_rounds: opts.max_rounds,
            outcome: Arc::clone(&outcome2),
        })
    })?;
    g.declare_ports(filter, &["peers"], &["peers"]);
    g.expect_consumers(filter, "peers", p);
    // Per round a copy drains opportunistically, but may burst up to one
    // fringe batch per destination plus the ROUND_DONE marker before its
    // first recv; 4 rounds of headroom keeps the declaration honest for
    // the pipelined mode's chunked sends.
    g.send_window(filter, "peers", 4 * (p as u64 + 1));
    g.connect(filter, "peers", filter, "peers")?;
    let report = g.run()?;

    let out = outcome.lock();
    let path = match (options.record_parents, out.found) {
        (true, Some(len)) => reconstruct_path(&out.parents, source, dest, len),
        _ => None,
    };
    Ok(SearchMetrics {
        path_length: out.found,
        path,
        rounds: out.rounds,
        edges_scanned: out.edges_scanned,
        vertices_visited: out.vertices_visited,
        telemetry: cluster.telemetry_report(report, &io_before),
    })
}

/// Walks parent pointers from `dest` back to `source`. Returns `None` if
/// the chain is broken (should not happen when the search found a path).
fn reconstruct_path(
    parents: &HashMap<Gid, Gid>,
    source: Gid,
    dest: Gid,
    len: u32,
) -> Option<Vec<Gid>> {
    let mut path = vec![dest];
    let mut cursor = dest;
    for _ in 0..len {
        let &p = parents.get(&cursor)?;
        path.push(p);
        cursor = p;
        if cursor == source {
            path.reverse();
            return Some(path);
        }
    }
    None
}

struct BfsFilter {
    backend: SharedBackend,
    visited_kind: VisitedKind,
    scratch: PathBuf,
    io_stats: Arc<IoStats>,
    routing: Routing,
    source: Gid,
    dest: Gid,
    mode: BfsMode,
    db_filter: bool,
    record_parents: bool,
    max_rounds: u32,
    outcome: Arc<Mutex<Outcome>>,
}

/// Sends that race filter shutdown (a peer found the target and exited)
/// must not fail the run.
fn send_quiet(port: &mut OutPort, copy: usize, buf: DataBuffer) -> Result<()> {
    match port.send_to(copy, buf) {
        Ok(()) => Ok(()),
        Err(GraphStorageError::Unsupported(m)) if m.contains("hung up") => Ok(()),
        Err(e) => Err(e),
    }
}

fn broadcast_quiet(port: &mut OutPort, buf: DataBuffer) -> Result<()> {
    for copy in 0..port.consumers() {
        send_quiet(port, copy, buf.clone())?;
    }
    Ok(())
}

/// Per-round send-side state: one pending batch per destination (index
/// `p` holds the broadcast batch).
struct SendState {
    batches: Vec<Vec<u64>>,
    emitted: u64,
}

impl BfsFilter {
    /// Routes one freshly discovered vertex, flushing a chunk early in
    /// pipelined mode.
    fn route_vertex(
        &self,
        ctx: &mut FilterContext,
        state: &mut SendState,
        round: u32,
        me: usize,
        u: Gid,
        parent: Gid,
    ) -> Result<()> {
        let slot = self.routing.target(u).unwrap_or(state.batches.len() - 1);
        state.batches[slot].push(u.raw());
        if self.record_parents {
            state.batches[slot].push(parent.raw());
        }
        state.emitted += 1;
        if let BfsMode::Pipelined { threshold } = self.mode {
            let words_per_entry = if self.record_parents { 2 } else { 1 };
            if state.batches[slot].len() >= threshold * words_per_entry {
                self.flush_slot(ctx, state, round, me, slot)?;
            }
        }
        Ok(())
    }

    fn flush_slot(
        &self,
        ctx: &mut FilterContext,
        state: &mut SendState,
        round: u32,
        me: usize,
        slot: usize,
    ) -> Result<()> {
        if state.batches[slot].is_empty() {
            return Ok(());
        }
        let words = std::mem::take(&mut state.batches[slot]);
        let buf = DataBuffer::from_words(tag(KIND_FRINGE, round, me), &words);
        let port = ctx.output("peers")?;
        if slot == port.consumers() {
            broadcast_quiet(port, buf)
        } else {
            send_quiet(port, slot, buf)
        }
    }

    fn flush_all(
        &self,
        ctx: &mut FilterContext,
        state: &mut SendState,
        round: u32,
        me: usize,
    ) -> Result<()> {
        for slot in 0..state.batches.len() {
            self.flush_slot(ctx, state, round, me, slot)?;
        }
        Ok(())
    }
}

/// What a message did to the receive loop.
enum Handled {
    Consumed,
    Stashed(DataBuffer),
    Found(u32),
}

#[allow(clippy::too_many_arguments)]
fn handle_message(
    msg: DataBuffer,
    round: u32,
    me: usize,
    visited: &mut dyn VisitedSet,
    db_mark: &mut dyn FnMut(Gid) -> Result<()>,
    parents: Option<&mut HashMap<Gid, Gid>>,
    next: &mut Vec<Gid>,
    done_from: &mut usize,
    emitted_sum: &mut u64,
    visited_count: &mut u64,
) -> Result<Handled> {
    match tag_kind(msg.tag) {
        KIND_FOUND => Ok(Handled::Found(msg.words()[0] as u32)),
        KIND_FRINGE => {
            if tag_round(msg.tag) != round {
                return Ok(Handled::Stashed(msg));
            }
            let from_self = tag_sender(msg.tag) == me;
            let words = msg.words();
            match parents {
                Some(parents) => {
                    // record_parents wire format: (vertex, parent) pairs.
                    if !words.len().is_multiple_of(2) {
                        return Err(GraphStorageError::corrupt(
                            "fringe pair payload has odd length",
                        ));
                    }
                    for pair in words.chunks_exact(2) {
                        let v = Gid::from_raw(pair[0]);
                        let parent = Gid::from_raw(pair[1]);
                        if from_self {
                            next.push(v);
                        } else if visited.try_visit(v, round)? {
                            *visited_count += 1;
                            db_mark(v)?;
                            parents.entry(v).or_insert(parent);
                            next.push(v);
                        }
                    }
                }
                None => {
                    for w in words {
                        let v = Gid::from_raw(w);
                        if from_self {
                            // Already marked at send time; trust our own gate.
                            next.push(v);
                        } else if visited.try_visit(v, round)? {
                            *visited_count += 1;
                            db_mark(v)?;
                            next.push(v);
                        }
                    }
                }
            }
            Ok(Handled::Consumed)
        }
        KIND_ROUND_DONE => {
            if tag_round(msg.tag) != round {
                return Ok(Handled::Stashed(msg));
            }
            *done_from += 1;
            *emitted_sum += msg.words()[0];
            Ok(Handled::Consumed)
        }
        k => Err(GraphStorageError::corrupt(format!(
            "unknown BFS message kind {k}"
        ))),
    }
}

impl Filter for BfsFilter {
    fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
        let me = ctx.copy_index;
        let p = ctx.copies;
        let mut visited = self
            .visited_kind
            .open(&self.scratch, me, Arc::clone(&self.io_stats))?;
        let mut frontier: Vec<Gid> = Vec::new();
        let mut edges_scanned = 0u64;
        let mut visited_count = 0u64;
        let mut found: Option<u32> = None;
        let mut stash: Vec<DataBuffer> = Vec::new();
        let mut adj = AdjBuffer::new();
        let mut parents: HashMap<Gid, Gid> = HashMap::new();
        let mut round: u32 = 1;
        let db_filter = self.db_filter;
        // Vertices whose DB metadata this query marks; reset afterwards so
        // the next query starts from level[v] = ∞, as Algorithm 1 requires.
        let marked = std::rc::Rc::new(std::cell::RefCell::new(Vec::<Gid>::new()));
        let mark_backend = self.backend.clone();
        let marked_in_closure = std::rc::Rc::clone(&marked);
        let mut db_mark = move |v: Gid| -> Result<()> {
            if db_filter {
                mark_backend.lock().set_metadata(v, VISITED_MARK)?;
                marked_in_closure.borrow_mut().push(v);
            }
            Ok(())
        };

        // Initialisation: the source's owner (everyone, under broadcast
        // routing) seeds the frontier.
        let owns_source =
            self.routing.is_broadcast() || self.routing.target(self.source) == Some(me);
        if owns_source {
            visited.try_visit(self.source, 0)?;
            visited_count += 1;
            frontier.push(self.source);
            db_mark(self.source)?;
        }

        'rounds: while round <= self.max_rounds {
            let visited_at_level_start = visited_count;
            let mut level_span = ctx
                .telemetry()
                .tracer
                .span("bfs.level")
                .with("level", round as u64)
                .with("frontier", frontier.len() as u64);
            // ---- expansion ----
            let mut state = SendState {
                batches: vec![Vec::new(); p + 1],
                emitted: 0,
            };
            // (neighbour, parent) pairs; parent is NIL when not recorded.
            let mut expanded: Vec<(Gid, Gid)> = Vec::new();
            if !frontier.is_empty() {
                let mut db = self.backend.lock();
                let (meta, op) = if self.db_filter {
                    // The engine filters out locally-visited neighbours
                    // while its blocks are hot (Listing 3.1's fused path).
                    (VISITED_MARK, MetaOp::NotEqual)
                } else {
                    (0, MetaOp::Ignore)
                };
                if self.record_parents {
                    // Per-vertex lookups so each neighbour knows its parent.
                    for &v in &frontier {
                        adj.clear();
                        db.adjacency(v, &mut adj, meta, op)?;
                        edges_scanned += adj.len() as u64;
                        expanded.extend(adj.as_slice().iter().map(|&u| (u, v)));
                    }
                } else {
                    adj.clear();
                    db.expand_fringe(&frontier, &mut adj, meta, op)?;
                    edges_scanned += adj.len() as u64;
                    expanded.extend(adj.as_slice().iter().map(|&u| (u, Gid::NIL)));
                }
            }
            let mut next: Vec<Gid> = Vec::new();
            let mut done_from = 0usize;
            let mut emitted_sum = 0u64;
            for &(u, parent) in &expanded {
                if u == self.dest {
                    if self.record_parents {
                        parents.insert(u, parent);
                    }
                    found = Some(round);
                    break;
                }
                if visited.try_visit(u, round)? {
                    visited_count += 1;
                    db_mark(u)?;
                    // Record the parent only where the mark is
                    // authoritative: at u's owner, or under broadcast
                    // routing (where every local visited set is globally
                    // complete). A non-owner's local gate can wrongly pass
                    // an already-visited vertex — its owner will reject
                    // the vertex, so its parent guess must not survive.
                    if self.record_parents {
                        let target = self.routing.target(u);
                        if target == Some(me) || target.is_none() {
                            parents.insert(u, parent);
                        }
                    }
                    self.route_vertex(ctx, &mut state, round, me, u, parent)?;
                }
                // Algorithm 2: drain waiting messages while expanding.
                if matches!(self.mode, BfsMode::Pipelined { .. }) {
                    while let Some(msg) = ctx.input("peers")?.try_recv() {
                        match handle_message(
                            msg,
                            round,
                            me,
                            visited.as_mut(),
                            &mut db_mark,
                            self.record_parents.then_some(&mut parents),
                            &mut next,
                            &mut done_from,
                            &mut emitted_sum,
                            &mut visited_count,
                        )? {
                            Handled::Consumed => {}
                            Handled::Stashed(m) => stash.push(m),
                            Handled::Found(l) => {
                                found = Some(found.map_or(l, |f| f.min(l)));
                                break 'rounds;
                            }
                        }
                    }
                }
            }
            if let Some(level) = found {
                let port = ctx.output("peers")?;
                broadcast_quiet(
                    port,
                    DataBuffer::from_words(tag(KIND_FOUND, round, me), &[level as u64]),
                )?;
                break 'rounds;
            }
            self.flush_all(ctx, &mut state, round, me)?;
            broadcast_quiet(
                ctx.output("peers")?,
                DataBuffer::from_words(tag(KIND_ROUND_DONE, round, me), &[state.emitted]),
            )?;

            // ---- receive ----
            // Re-examine stashed messages now that the round advanced.
            for msg in std::mem::take(&mut stash) {
                match handle_message(
                    msg,
                    round,
                    me,
                    visited.as_mut(),
                    &mut db_mark,
                    self.record_parents.then_some(&mut parents),
                    &mut next,
                    &mut done_from,
                    &mut emitted_sum,
                    &mut visited_count,
                )? {
                    Handled::Consumed => {}
                    Handled::Stashed(m) => stash.push(m),
                    Handled::Found(l) => {
                        found = Some(found.map_or(l, |f| f.min(l)));
                        break 'rounds;
                    }
                }
            }
            while done_from < p {
                let Some(msg) = ctx.input("peers")?.recv()? else {
                    // A peer exited (it found the target): terminate.
                    break 'rounds;
                };
                match handle_message(
                    msg,
                    round,
                    me,
                    visited.as_mut(),
                    &mut db_mark,
                    self.record_parents.then_some(&mut parents),
                    &mut next,
                    &mut done_from,
                    &mut emitted_sum,
                    &mut visited_count,
                )? {
                    Handled::Consumed => {}
                    Handled::Stashed(m) => stash.push(m),
                    Handled::Found(l) => {
                        found = Some(found.map_or(l, |f| f.min(l)));
                        break 'rounds;
                    }
                }
            }
            // Visited hits this level (local marks from any peer's fringe).
            level_span.record("visited", visited_count - visited_at_level_start);
            if emitted_sum == 0 {
                break 'rounds; // Graph exhausted without reaching dest.
            }
            frontier = next;
            round += 1;
        }

        // Per-query cleanup: restore level[v] = ∞ in the engine metadata.
        if self.db_filter {
            let mut db = self.backend.lock();
            for v in marked.borrow().iter() {
                db.set_metadata(*v, mssg_types::UNVISITED)?;
            }
        }

        let mut out = self.outcome.lock();
        if let Some(level) = found {
            out.merge_found(level);
        }
        out.edges_scanned += edges_scanned;
        out.vertices_visited += visited_count;
        out.rounds = out.rounds.max(round.min(self.max_rounds));
        for (v, parent) in parents {
            out.parents.entry(v).or_insert(parent);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendKind, BackendOptions};
    use crate::ingest::{ingest, DeclusterKind, IngestOptions};
    use mssg_types::Edge;
    use std::time::Duration;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("core-bfs-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn g(v: u64) -> Gid {
        Gid::new(v)
    }

    /// Path graph 0-1-2-…-n.
    fn path_edges(n: u64) -> Vec<Edge> {
        (0..n).map(|i| Edge::of(i, i + 1)).collect()
    }

    fn build_cluster(
        tag: &str,
        nodes: usize,
        kind: BackendKind,
        edges: Vec<Edge>,
        decluster: DeclusterKind,
    ) -> MssgCluster {
        let dir = tmpdir(tag);
        let mut cluster = MssgCluster::new(&dir, nodes, kind, &BackendOptions::default()).unwrap();
        let opts = IngestOptions {
            declustering: decluster,
            ..Default::default()
        };
        ingest(&mut cluster, edges.into_iter(), &opts).unwrap();
        cluster
    }

    #[test]
    fn finds_exact_path_lengths_on_path_graph() {
        let cluster = build_cluster(
            "path",
            3,
            BackendKind::HashMap,
            path_edges(20),
            DeclusterKind::VertexHash,
        );
        for target in [1u64, 5, 13, 20] {
            let m = bfs(&cluster, g(0), g(target), &BfsOptions::default()).unwrap();
            assert_eq!(m.path_length, Some(target as u32), "target {target}");
        }
    }

    #[test]
    fn source_equals_dest() {
        let cluster = build_cluster(
            "self",
            2,
            BackendKind::HashMap,
            path_edges(3),
            DeclusterKind::VertexHash,
        );
        let m = bfs(&cluster, g(1), g(1), &BfsOptions::default()).unwrap();
        assert_eq!(m.path_length, Some(0));
    }

    #[test]
    fn unreachable_reports_none() {
        // Two disconnected components.
        let mut edges = path_edges(3);
        edges.push(Edge::of(100, 101));
        let cluster = build_cluster(
            "unreach",
            3,
            BackendKind::HashMap,
            edges,
            DeclusterKind::VertexHash,
        );
        let m = bfs(&cluster, g(0), g(101), &BfsOptions::default()).unwrap();
        assert_eq!(m.path_length, None);
        assert!(m.rounds >= 1);
    }

    #[test]
    fn undirected_search_works_backwards() {
        let cluster = build_cluster(
            "backwards",
            2,
            BackendKind::HashMap,
            path_edges(6),
            DeclusterKind::VertexHash,
        );
        let m = bfs(&cluster, g(6), g(0), &BfsOptions::default()).unwrap();
        assert_eq!(m.path_length, Some(6));
    }

    #[test]
    fn shortest_path_wins_over_longer() {
        // Triangle plus a long way round: 0-1, 1-5, and 0-2-3-4-5.
        let edges = vec![
            Edge::of(0, 1),
            Edge::of(1, 5),
            Edge::of(0, 2),
            Edge::of(2, 3),
            Edge::of(3, 4),
            Edge::of(4, 5),
        ];
        let cluster = build_cluster(
            "short",
            3,
            BackendKind::HashMap,
            edges,
            DeclusterKind::VertexHash,
        );
        let m = bfs(&cluster, g(0), g(5), &BfsOptions::default()).unwrap();
        assert_eq!(m.path_length, Some(2));
    }

    #[test]
    fn every_backend_agrees() {
        let edges = {
            // Deterministic scale-free-ish test graph.
            let mut x = 33u64;
            let mut es = Vec::new();
            for _ in 0..400 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let a = x % 50;
                let b = (x >> 17) % 50;
                if a != b {
                    es.push(Edge::of(a, b));
                }
            }
            es
        };
        let reference = {
            let cluster = build_cluster(
                "agree-ref",
                2,
                BackendKind::HashMap,
                edges.clone(),
                DeclusterKind::VertexHash,
            );
            bfs(&cluster, g(0), g(47), &BfsOptions::default())
                .unwrap()
                .path_length
        };
        for kind in BackendKind::ALL {
            let cluster = build_cluster(
                &format!("agree-{}", kind.name()),
                2,
                kind,
                edges.clone(),
                DeclusterKind::VertexHash,
            );
            let m = bfs(&cluster, g(0), g(47), &BfsOptions::default()).unwrap();
            assert_eq!(m.path_length, reference, "{} disagrees", kind.name());
        }
    }

    #[test]
    fn broadcast_routing_for_edge_granularity() {
        let cluster = build_cluster(
            "edgegran",
            3,
            BackendKind::HashMap,
            path_edges(10),
            DeclusterKind::EdgeRoundRobin,
        );
        let m = bfs(&cluster, g(0), g(10), &BfsOptions::default()).unwrap();
        assert_eq!(m.path_length, Some(10));
    }

    #[test]
    fn owner_map_routing_for_vertex_rr() {
        let cluster = build_cluster(
            "rrmap",
            3,
            BackendKind::HashMap,
            path_edges(10),
            DeclusterKind::VertexRoundRobin,
        );
        assert!(cluster.owner_map().is_some());
        let m = bfs(&cluster, g(0), g(7), &BfsOptions::default()).unwrap();
        assert_eq!(m.path_length, Some(7));
    }

    #[test]
    fn pipelined_matches_standard() {
        let edges = {
            let mut x = 77u64;
            let mut es = Vec::new();
            for _ in 0..600 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let a = x % 80;
                let b = (x >> 23) % 80;
                if a != b {
                    es.push(Edge::of(a, b));
                }
            }
            es
        };
        let standard = build_cluster(
            "pipe-std",
            4,
            BackendKind::HashMap,
            edges.clone(),
            DeclusterKind::VertexHash,
        );
        let pipelined = build_cluster(
            "pipe-pip",
            4,
            BackendKind::HashMap,
            edges,
            DeclusterKind::VertexHash,
        );
        for dest in [9u64, 33, 61, 79] {
            let a = bfs(&standard, g(0), g(dest), &BfsOptions::default()).unwrap();
            let b = bfs(
                &pipelined,
                g(0),
                g(dest),
                &BfsOptions {
                    mode: BfsMode::Pipelined { threshold: 4 },
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(a.path_length, b.path_length, "dest {dest}");
        }
    }

    #[test]
    fn external_visited_matches_in_memory() {
        let cluster = build_cluster(
            "extvis",
            2,
            BackendKind::HashMap,
            path_edges(12),
            DeclusterKind::VertexHash,
        );
        let a = bfs(&cluster, g(0), g(12), &BfsOptions::default()).unwrap();
        let b = bfs(
            &cluster,
            g(0),
            g(12),
            &BfsOptions {
                visited: VisitedKind::External,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a.path_length, b.path_length);
        assert_eq!(a.path_length, Some(12));
    }

    #[test]
    fn dead_storage_filter_is_a_typed_error_not_a_hang() {
        use datacutter::{FaultKind, FaultPlan};
        use mssg_types::GraphStorageError;
        let cluster = build_cluster(
            "deadpeer",
            2,
            BackendKind::HashMap,
            path_edges(12),
            DeclusterKind::VertexHash,
        );
        // Kill one BFS storage filter on its first port operation. The
        // surviving peer blocks waiting for that peer's ROUND_DONE, which
        // would classically hang forever; the stream deadline turns it
        // into a typed error instead.
        let start = std::time::Instant::now();
        let err = bfs(
            &cluster,
            g(0),
            g(12),
            &BfsOptions {
                recv_timeout: Some(Duration::from_secs(2)),
                fault_plan: Some(FaultPlan::new().inject("bfs", Some(1), 1, FaultKind::Panic)),
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(
            matches!(
                err,
                GraphStorageError::FilterFailed(_) | GraphStorageError::Timeout(_)
            ),
            "got: {err}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "search must give up quickly, took {:?}",
            start.elapsed()
        );
        // The search is read-only and idempotent: simply retrying without
        // the fault succeeds.
        let ok = bfs(&cluster, g(0), g(12), &BfsOptions::default()).unwrap();
        assert_eq!(ok.path_length, Some(12));
    }

    #[test]
    fn metrics_are_plausible() {
        let cluster = build_cluster(
            "metrics",
            2,
            BackendKind::HashMap,
            path_edges(8),
            DeclusterKind::VertexHash,
        );
        let m = bfs(&cluster, g(0), g(8), &BfsOptions::default()).unwrap();
        assert_eq!(m.path_length, Some(8));
        assert!(m.edges_scanned >= 8, "scanned {}", m.edges_scanned);
        assert!(m.vertices_visited >= 8);
        assert!(m.rounds >= 8);
        assert!(m.edges_per_sec() > 0.0);
    }

    #[test]
    fn db_filter_equivalent_and_reduces_traffic() {
        // The fused getAdjacencyListUsingMetadata path must return the
        // same shortest paths while routing fewer fringe vertices.
        let edges = {
            let mut x = 91u64;
            let mut es = Vec::new();
            for _ in 0..800 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let a = x % 60;
                let b = (x >> 19) % 60;
                if a != b {
                    es.push(Edge::of(a, b));
                }
            }
            es
        };
        let plain = build_cluster(
            "dbf-plain",
            3,
            BackendKind::HashMap,
            edges.clone(),
            DeclusterKind::VertexHash,
        );
        let filtered = build_cluster(
            "dbf-filtered",
            3,
            BackendKind::HashMap,
            edges,
            DeclusterKind::VertexHash,
        );
        for dest in [7u64, 23, 59] {
            let a = bfs(&plain, g(0), g(dest), &BfsOptions::default()).unwrap();
            let b = bfs(
                &filtered,
                g(0),
                g(dest),
                &BfsOptions {
                    db_filter: true,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(a.path_length, b.path_length, "dest {dest}");
            assert!(
                b.edges_scanned <= a.edges_scanned,
                "dest {dest}: filter must not increase scanned entries \
                 ({} vs {})",
                b.edges_scanned,
                a.edges_scanned
            );
        }
        // The per-query metadata reset means a second round of identical
        // queries must behave identically (no marks leak between queries).
        let again = bfs(
            &filtered,
            g(0),
            g(23),
            &BfsOptions {
                db_filter: true,
                ..Default::default()
            },
        )
        .unwrap();
        let reference = bfs(&plain, g(0), g(23), &BfsOptions::default()).unwrap();
        assert_eq!(again.path_length, reference.path_length);
    }

    #[test]
    fn path_reconstruction_on_path_graph() {
        let cluster = build_cluster(
            "parents-path",
            3,
            BackendKind::HashMap,
            path_edges(8),
            DeclusterKind::VertexHash,
        );
        let m = bfs(
            &cluster,
            g(0),
            g(8),
            &BfsOptions {
                record_parents: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(m.path_length, Some(8));
        assert_eq!(m.path, Some((0..=8).map(g).collect::<Vec<_>>()));
    }

    #[test]
    fn path_reconstruction_is_a_valid_shortest_path() {
        let edges = {
            let mut x = 13u64;
            let mut es = Vec::new();
            for _ in 0..500 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let a = x % 70;
                let b = (x >> 21) % 70;
                if a != b {
                    es.push(Edge::of(a, b));
                }
            }
            es
        };
        let edge_set: std::collections::HashSet<(u64, u64)> = edges
            .iter()
            .flat_map(|e| [(e.src.raw(), e.dst.raw()), (e.dst.raw(), e.src.raw())])
            .collect();
        let cluster = build_cluster(
            "parents-random",
            4,
            BackendKind::Grdb,
            edges,
            DeclusterKind::VertexHash,
        );
        for dest in [9u64, 33, 69] {
            let m = bfs(
                &cluster,
                g(0),
                g(dest),
                &BfsOptions {
                    record_parents: true,
                    ..Default::default()
                },
            )
            .unwrap();
            let Some(len) = m.path_length else { continue };
            let path = m.path.expect("path recorded when found");
            assert_eq!(path.len() as u32, len + 1, "dest {dest}");
            assert_eq!(path[0], g(0));
            assert_eq!(*path.last().unwrap(), g(dest));
            for w in path.windows(2) {
                assert!(
                    edge_set.contains(&(w[0].raw(), w[1].raw())),
                    "dest {dest}: {:?}-{:?} is not an edge",
                    w[0],
                    w[1]
                );
            }
            // It is also shortest: same length without recording.
            let plain = bfs(&cluster, g(0), g(dest), &BfsOptions::default()).unwrap();
            assert_eq!(plain.path_length, Some(len));
        }
    }

    #[test]
    fn path_none_when_not_recording_or_unreachable() {
        let cluster = build_cluster(
            "parents-none",
            2,
            BackendKind::HashMap,
            path_edges(3),
            DeclusterKind::VertexHash,
        );
        let m = bfs(&cluster, g(0), g(3), &BfsOptions::default()).unwrap();
        assert!(m.path.is_none());
        let m = bfs(
            &cluster,
            g(0),
            g(999),
            &BfsOptions {
                record_parents: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(m.path_length, None);
        assert!(m.path.is_none());
        // Source == dest still yields the trivial path.
        let m = bfs(
            &cluster,
            g(2),
            g(2),
            &BfsOptions {
                record_parents: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(m.path, Some(vec![g(2)]));
    }

    #[test]
    fn level_spans_cover_every_round() {
        let dir = tmpdir("spans");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        ingest(
            &mut cluster,
            path_edges(6).into_iter(),
            &IngestOptions::default(),
        )
        .unwrap();
        let telemetry = mssg_obs::Telemetry::enabled();
        cluster.set_telemetry(telemetry.clone());
        let m = bfs(&cluster, g(0), g(6), &BfsOptions::default()).unwrap();
        assert_eq!(m.path_length, Some(6));

        let spans = telemetry.tracer.finished_spans();
        let levels: Vec<_> = spans.iter().filter(|s| s.name == "bfs.level").collect();
        for level in 1..=6u64 {
            assert!(
                levels.iter().any(|s| s.field_u64("level") == Some(level)),
                "no bfs.level span for level {level}"
            );
        }
        // Every level span carries its frontier size and nests under the
        // runtime's per-copy span.
        assert!(levels.iter().all(|s| s.field_u64("frontier").is_some()));
        assert!(levels.iter().all(|s| s.path == "filter.run;bfs.level"));
        // The unified report has the per-copy breakdown too.
        assert_eq!(m.telemetry.filter("bfs").len(), 2);
    }

    #[test]
    fn single_node_cluster_works() {
        let cluster = build_cluster(
            "single",
            1,
            BackendKind::Grdb,
            path_edges(5),
            DeclusterKind::VertexHash,
        );
        let m = bfs(&cluster, g(0), g(5), &BfsOptions::default()).unwrap();
        assert_eq!(m.path_length, Some(5));
    }

    #[test]
    fn hub_graph_found_in_two_rounds() {
        // Star: 0 connected to 1..=50, dest 50 reachable via hub in 2 hops
        // from any leaf.
        let edges: Vec<Edge> = (1..=50).map(|i| Edge::of(0, i)).collect();
        let cluster = build_cluster(
            "hub",
            4,
            BackendKind::Grdb,
            edges,
            DeclusterKind::VertexHash,
        );
        let m = bfs(&cluster, g(3), g(42), &BfsOptions::default()).unwrap();
        assert_eq!(m.path_length, Some(2));
        assert!(m.rounds <= 3);
    }
}
