//! Distributed degree-distribution analysis.
//!
//! The degree histogram is the fingerprint of a scale-free graph — the
//! thesis' Table 5.1 columns and the power-law property both derive from
//! it. This analysis computes it over the *stored* graph (not the input
//! stream): each processor measures the degrees of its local partition and
//! ships `(vertex, partial degree)` pairs to hash owners, which sum the
//! partials (under edge granularity a vertex's adjacency is spread over
//! many nodes) and fold the totals into a histogram.

use crate::cluster::{MssgCluster, SharedBackend};
use crate::telemetry::TelemetryReport;
use datacutter::{DataBuffer, Filter, FilterContext, GraphBuilder, OutPort};
use mssg_types::{GraphStorageError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Result of a degree-distribution run.
#[derive(Clone, Debug)]
pub struct DegreeReport {
    /// `histogram[d]` = number of vertices with degree `d` (index 0 unused
    /// for graphs without isolated vertices).
    pub histogram: Vec<u64>,
    /// Distinct vertices.
    pub vertices: u64,
    /// Sum of all degrees (= 2 × undirected edges when both directions are
    /// stored).
    pub degree_sum: u64,
    /// Maximum degree.
    pub max_degree: u64,
    /// Mean degree.
    pub avg_degree: f64,
    /// Least-squares power-law exponent fit of the histogram tail, when
    /// enough points exist.
    pub powerlaw_exponent: Option<f64>,
    /// Time, traffic, and per-filter breakdown of the run.
    pub telemetry: TelemetryReport,
}

const K_PARTIAL: u64 = 0;
const K_DONE: u64 = 1;

fn tag(kind: u64, sender: usize) -> u64 {
    (kind << 56) | sender as u64
}

/// Computes the degree distribution of the stored graph.
pub fn degree_distribution(cluster: &MssgCluster) -> Result<DegreeReport> {
    let p = cluster.nodes();
    let io_before = cluster.io_snapshot();
    let totals: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut g = GraphBuilder::new();
    g.channel_capacity(8192);
    g.telemetry(cluster.telemetry().clone());
    // Each copy blocks on a DONE marker from every peer before folding
    // totals; a dead filter must time out rather than hang the run.
    g.stream_timeout(std::time::Duration::from_secs(120));
    let backends: Vec<SharedBackend> = (0..p).map(|i| cluster.backend(i)).collect();
    let totals2 = Arc::clone(&totals);
    let filter = g.add_filter("degrees", (0..p).collect(), move |i| {
        Box::new(DegreeFilter {
            backend: backends[i].clone(),
            totals: Arc::clone(&totals2),
        })
    })?;
    g.declare_ports(filter, &["peers"], &["peers"]);
    g.expect_consumers(filter, "peers", p);
    // One partial-degree batch per destination plus a DONE marker.
    g.send_window(filter, "peers", 2 * (p as u64 + 1));
    g.connect(filter, "peers", filter, "peers")?;
    let report = g.run()?;

    let totals = totals.lock();
    let vertices = totals.len() as u64;
    let degree_sum: u64 = totals.values().sum();
    let max_degree = totals.values().copied().max().unwrap_or(0);
    let mut histogram = vec![0u64; max_degree as usize + 1];
    for &d in totals.values() {
        histogram[d as usize] += 1;
    }
    let powerlaw_exponent = graphgen::stats::powerlaw_exponent(&histogram);
    Ok(DegreeReport {
        histogram,
        vertices,
        degree_sum,
        max_degree,
        avg_degree: if vertices == 0 {
            0.0
        } else {
            degree_sum as f64 / vertices as f64
        },
        powerlaw_exponent,
        telemetry: cluster.telemetry_report(report, &io_before),
    })
}

struct DegreeFilter {
    backend: SharedBackend,
    totals: Arc<Mutex<HashMap<u64, u64>>>,
}

impl Filter for DegreeFilter {
    fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
        use graphdb::GraphDbExt;
        let me = ctx.copy_index;
        let p = ctx.copies;
        // Measure the local partition.
        let mut per_owner: Vec<Vec<u64>> = vec![Vec::new(); p];
        {
            let mut db = self.backend.lock();
            for v in db.local_vertices()? {
                let deg = db.degree(v)? as u64;
                let owner = (v.raw() % p as u64) as usize;
                per_owner[owner].push(v.raw());
                per_owner[owner].push(deg);
            }
        }
        {
            let port: &mut OutPort = ctx.output("peers")?;
            for (owner, words) in per_owner.iter().enumerate() {
                if !words.is_empty() {
                    port.send_to(owner, DataBuffer::from_words(tag(K_PARTIAL, me), words))?;
                }
            }
            port.broadcast(DataBuffer::control(tag(K_DONE, me)))?;
        }
        // Sum partials for the vertices this processor hash-owns.
        let mut owned: HashMap<u64, u64> = HashMap::new();
        let mut done = 0usize;
        while done < p {
            let Some(msg) = ctx.input("peers")?.recv()? else {
                return Err(GraphStorageError::Unsupported(
                    "peer exited during degree analysis".into(),
                ));
            };
            match msg.tag >> 56 {
                K_DONE => done += 1,
                K_PARTIAL => {
                    let words = msg.words();
                    for pair in words.chunks_exact(2) {
                        *owned.entry(pair[0]).or_insert(0) += pair[1];
                    }
                }
                k => {
                    return Err(GraphStorageError::corrupt(format!(
                        "unknown degree message kind {k}"
                    )))
                }
            }
        }
        let mut totals = self.totals.lock();
        for (v, d) in owned {
            *totals.entry(v).or_insert(0) += d;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendKind, BackendOptions};
    use crate::ingest::{ingest, DeclusterKind, IngestOptions};
    use mssg_types::Edge;

    fn run(
        tag: &str,
        nodes: usize,
        kind: BackendKind,
        edges: Vec<Edge>,
        decl: DeclusterKind,
    ) -> DegreeReport {
        let dir = std::env::temp_dir().join(format!("core-deg-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cluster = MssgCluster::new(&dir, nodes, kind, &BackendOptions::default()).unwrap();
        ingest(
            &mut cluster,
            edges.into_iter(),
            &IngestOptions {
                declustering: decl,
                ..Default::default()
            },
        )
        .unwrap();
        degree_distribution(&cluster).unwrap()
    }

    #[test]
    fn star_graph_histogram() {
        let edges: Vec<Edge> = (1..=6).map(|i| Edge::of(0, i)).collect();
        let r = run(
            "star",
            3,
            BackendKind::HashMap,
            edges,
            DeclusterKind::VertexHash,
        );
        assert_eq!(r.vertices, 7);
        assert_eq!(r.max_degree, 6);
        assert_eq!(r.degree_sum, 12);
        assert_eq!(r.histogram[1], 6, "six leaves");
        assert_eq!(r.histogram[6], 1, "one hub");
        assert!((r.avg_degree - 12.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn edge_granularity_sums_partials() {
        // Under edge round-robin a vertex's adjacency is spread over many
        // nodes; the analysis must sum the partial degrees.
        let edges: Vec<Edge> = (1..=8).map(|i| Edge::of(0, i)).collect();
        let r = run(
            "edgerr",
            4,
            BackendKind::HashMap,
            edges,
            DeclusterKind::EdgeRoundRobin,
        );
        assert_eq!(r.max_degree, 8);
        assert_eq!(r.vertices, 9);
        assert_eq!(r.histogram[8], 1);
    }

    #[test]
    fn scale_free_graph_fits_powerlaw() {
        let w = graphgen::GraphPreset::PubMedS.workload(16384, 6);
        let dir = std::env::temp_dir().join(format!("core-deg-{}-sf", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cluster =
            MssgCluster::new(&dir, 4, BackendKind::Grdb, &BackendOptions::default()).unwrap();
        ingest(&mut cluster, w.edge_stream(), &IngestOptions::default()).unwrap();
        let r = degree_distribution(&cluster).unwrap();
        assert_eq!(r.degree_sum, 2 * w.edges());
        let beta = r.powerlaw_exponent.expect("enough histogram points");
        assert!(beta > 0.1 && beta < 5.0, "implausible exponent {beta}");
        // Agrees with the generator-side statistics.
        let gen_stats = graphgen::degree_stats(w.edge_stream(), w.vertices());
        assert_eq!(r.vertices, gen_stats.vertices);
        assert_eq!(r.max_degree, gen_stats.max_degree);
    }

    #[test]
    fn empty_cluster() {
        let dir = std::env::temp_dir().join(format!("core-deg-{}-empty", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let r = degree_distribution(&cluster).unwrap();
        assert_eq!(r.vertices, 0);
        assert_eq!(r.max_degree, 0);
        assert_eq!(r.avg_degree, 0.0);
    }
}
