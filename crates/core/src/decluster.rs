//! Clustering / declustering strategies for the Ingestion service
//! (thesis §3.2).
//!
//! MSSG stores graphs at two granularities: *vertex* granularity (all of a
//! vertex's edges on one node) and *edge* granularity (each edge an
//! independent entity). At vertex granularity the critical question is
//! whether vertex ownership is **globally known**: with a deterministic
//! mapping like `GID % p` the search can send fringe vertices straight to
//! their owners; with a first-come assignment the mapping lives only at
//! the ingestion service and the search must broadcast (Algorithm 1's
//! three cases).

use mssg_types::{Edge, Gid};
use std::collections::HashMap;

/// A declustering strategy instance. Stateful: the round-robin variants
/// remember assignments made earlier in the stream.
#[derive(Clone, Debug)]
pub enum Declustering {
    /// Vertex granularity with the globally known mapping `GID % p`.
    VertexHash {
        /// Number of back-end nodes.
        nodes: usize,
    },
    /// Vertex granularity, first-seen round-robin assignment. Ownership is
    /// known only to the ingestion service, so searches broadcast.
    VertexRoundRobin {
        /// Number of back-end nodes.
        nodes: usize,
        /// Assignments made so far.
        owners: HashMap<Gid, usize>,
        /// Next node in rotation.
        next: usize,
    },
    /// Edge granularity round-robin: each *directed entry* goes to the next
    /// node; a vertex's adjacency list ends up spread everywhere.
    EdgeRoundRobin {
        /// Number of back-end nodes.
        nodes: usize,
        /// Next node in rotation.
        next: usize,
    },
}

impl Declustering {
    /// Creates the `GID % p` strategy.
    pub fn vertex_hash(nodes: usize) -> Declustering {
        assert!(nodes > 0);
        Declustering::VertexHash { nodes }
    }

    /// Creates the vertex round-robin strategy.
    pub fn vertex_round_robin(nodes: usize) -> Declustering {
        assert!(nodes > 0);
        Declustering::VertexRoundRobin {
            nodes,
            owners: HashMap::new(),
            next: 0,
        }
    }

    /// Creates the edge round-robin strategy.
    pub fn edge_round_robin(nodes: usize) -> Declustering {
        assert!(nodes > 0);
        Declustering::EdgeRoundRobin { nodes, next: 0 }
    }

    /// Number of back-end nodes.
    pub fn nodes(&self) -> usize {
        match self {
            Declustering::VertexHash { nodes }
            | Declustering::VertexRoundRobin { nodes, .. }
            | Declustering::EdgeRoundRobin { nodes, .. } => *nodes,
        }
    }

    /// `true` when every processor can compute vertex ownership locally —
    /// the condition for Algorithm 1's targeted sends.
    pub fn globally_known_mapping(&self) -> bool {
        matches!(self, Declustering::VertexHash { .. })
    }

    /// The owner of vertex `v` under a globally known mapping.
    pub fn owner(&self, v: Gid) -> Option<usize> {
        match self {
            Declustering::VertexHash { nodes } => Some((v.raw() % *nodes as u64) as usize),
            Declustering::VertexRoundRobin { owners, .. } => owners.get(&v).copied(),
            Declustering::EdgeRoundRobin { .. } => None,
        }
    }

    /// Assigns the two directed entries of an undirected edge, returning
    /// `(node, directed_entry)` pairs. Vertex strategies route each entry
    /// to the source vertex's owner; the edge strategy rotates.
    pub fn assign(&mut self, e: Edge) -> [(usize, Edge); 2] {
        let fwd = e;
        let bwd = e.reversed();
        match self {
            Declustering::VertexHash { nodes } => {
                let p = *nodes as u64;
                [
                    ((fwd.src.raw() % p) as usize, fwd),
                    ((bwd.src.raw() % p) as usize, bwd),
                ]
            }
            Declustering::VertexRoundRobin {
                nodes,
                owners,
                next,
            } => {
                let mut own = |v: Gid| -> usize {
                    *owners.entry(v).or_insert_with(|| {
                        let n = *next;
                        *next = (*next + 1) % *nodes;
                        n
                    })
                };
                [(own(fwd.src), fwd), (own(bwd.src), bwd)]
            }
            Declustering::EdgeRoundRobin { nodes, next } => {
                let a = *next;
                let b = (*next + 1) % *nodes;
                *next = (*next + 2) % *nodes;
                [(a, fwd), (b, bwd)]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(v: u64) -> Gid {
        Gid::new(v)
    }

    #[test]
    fn vertex_hash_is_deterministic_and_known() {
        let mut d = Declustering::vertex_hash(4);
        assert!(d.globally_known_mapping());
        assert_eq!(d.owner(g(7)), Some(3));
        let [(n1, e1), (n2, e2)] = d.assign(Edge::of(7, 9));
        assert_eq!(n1, 3);
        assert_eq!(e1, Edge::of(7, 9));
        assert_eq!(n2, 1); // 9 % 4
        assert_eq!(e2, Edge::of(9, 7));
    }

    #[test]
    fn vertex_rr_sticky_ownership() {
        let mut d = Declustering::vertex_round_robin(3);
        assert!(!d.globally_known_mapping());
        let [(n1, _), (n2, _)] = d.assign(Edge::of(10, 20));
        assert_eq!((n1, n2), (0, 1));
        // Same vertices keep their owners on later edges.
        let [(m1, _), (m2, _)] = d.assign(Edge::of(10, 20));
        assert_eq!((m1, m2), (0, 1));
        assert_eq!(d.owner(g(10)), Some(0));
        // A new vertex continues the rotation.
        let [(k1, _), _] = d.assign(Edge::of(30, 10));
        assert_eq!(k1, 2);
    }

    #[test]
    fn vertex_strategies_keep_adjacency_together() {
        // All directed entries with the same source land on one node.
        for mut d in [
            Declustering::vertex_hash(4),
            Declustering::vertex_round_robin(4),
        ] {
            let mut seen: HashMap<Gid, usize> = HashMap::new();
            let mut x = 5u64;
            for _ in 0..500 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let e = Edge::of(x % 20, (x >> 16) % 20);
                for (node, entry) in d.assign(e) {
                    let prior = seen.insert(entry.src, node);
                    if let Some(p) = prior {
                        assert_eq!(p, node, "vertex {} split across nodes", entry.src);
                    }
                }
            }
        }
    }

    #[test]
    fn edge_rr_spreads_adjacency() {
        let mut d = Declustering::edge_round_robin(4);
        assert_eq!(d.owner(g(1)), None);
        let mut nodes_for_1 = std::collections::HashSet::new();
        for i in 0..8u64 {
            for (node, entry) in d.assign(Edge::of(1, 100 + i)) {
                if entry.src == g(1) {
                    nodes_for_1.insert(node);
                }
            }
        }
        assert!(
            nodes_for_1.len() > 1,
            "edge granularity must spread the list"
        );
    }

    #[test]
    fn assign_covers_both_directions() {
        let mut d = Declustering::vertex_hash(2);
        let [(_, e1), (_, e2)] = d.assign(Edge::of(3, 4));
        assert_eq!(e1.reversed(), e2);
    }
}
