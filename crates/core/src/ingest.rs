//! The Ingestion service (thesis §3.2), as a DataCutter filter graph.
//!
//! ```text
//!  external stream          front-end nodes                back-end nodes
//!  ┌────────┐  windows   ┌───────────────┐  edge batches  ┌───────────┐
//!  │ source │ ─────────> │ ingestion × F │ ─────────────> │ store × P │
//!  └────────┘   (RR)     │  (decluster)  │  (by owner)    │ (GraphDB) │
//!                        └───────────────┘                └───────────┘
//! ```
//!
//! The source models the external data feed: it cuts the incoming edge
//! stream into fixed-size *windows* ("blocks") and deals them round-robin
//! to the front-end ingestion nodes. Each ingestion filter runs the
//! declustering strategy over its windows and ships per-back-end batches
//! of *directed* entries to the store filters, which append them to their
//! local GraphDB instances. Varying the number of front-ends reproduces
//! the Figure 5.3 experiment; varying back-ends, Figure 5.5.

use crate::cluster::MssgCluster;
use crate::decluster::Declustering;
use crate::telemetry::TelemetryReport;
use datacutter::{DataBuffer, Filter, FilterContext, GraphBuilder};
use mssg_types::{Edge, Gid, Ontology, Result, TypedEdge};
use parking_lot::Mutex;
use std::sync::Arc;

/// Which declustering strategy the ingestion runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DeclusterKind {
    /// Vertex granularity, `GID % p` (globally known).
    #[default]
    VertexHash,
    /// Vertex granularity, first-seen round-robin.
    VertexRoundRobin,
    /// Edge granularity round-robin.
    EdgeRoundRobin,
}

/// Ingestion configuration.
#[derive(Clone, Debug)]
pub struct IngestOptions {
    /// Number of front-end ingestion nodes.
    pub front_ends: usize,
    /// Edges per streaming window (thesis "blocks of a predetermined
    /// size, each of which fits into memory").
    pub window_edges: usize,
    /// Declustering strategy.
    pub declustering: DeclusterKind,
    /// Distribute windows to the front-ends through a River-style shared
    /// demand queue instead of round-robin: faster ingestion nodes pull
    /// more windows, adapting to load imbalance (thesis chapter 2's River
    /// discussion).
    pub demand_driven: bool,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            front_ends: 1,
            window_edges: 4096,
            declustering: DeclusterKind::VertexHash,
            demand_driven: false,
        }
    }
}

/// Outcome of an ingestion run.
#[derive(Clone, Debug)]
pub struct IngestReport {
    /// Undirected edges ingested.
    pub edges: u64,
    /// Time, traffic, and per-filter breakdown of the run.
    pub telemetry: TelemetryReport,
}

/// Streams `edges` into the cluster. Returns when every back-end has
/// stored and flushed its partition.
pub fn ingest(
    cluster: &mut MssgCluster,
    edges: impl Iterator<Item = Edge> + Send + 'static,
    options: &IngestOptions,
) -> Result<IngestReport> {
    assert!(options.front_ends > 0, "need at least one ingestion node");
    assert!(
        options.window_edges > 0,
        "window must hold at least one edge"
    );
    let p = cluster.nodes();
    let f = options.front_ends;
    let io_before = cluster.io_snapshot();

    let strategy = Arc::new(Mutex::new(match options.declustering {
        DeclusterKind::VertexHash => Declustering::vertex_hash(p),
        DeclusterKind::VertexRoundRobin => Declustering::vertex_round_robin(p),
        DeclusterKind::EdgeRoundRobin => Declustering::edge_round_robin(p),
    }));

    let mut g = GraphBuilder::new();
    g.telemetry(cluster.telemetry().clone());
    // Node layout: back-ends 0..p, front-ends p..p+f, source at p+f.
    let mut source_holder = Some(SourceFilter {
        edges: Box::new(edges),
        window: options.window_edges,
        count: Arc::new(Mutex::new(0)),
    });
    let edge_count = Arc::clone(&source_holder.as_ref().unwrap().count);
    let src = g.add_filter("source", vec![p + f], move |_| {
        Box::new(source_holder.take().expect("source filter built once"))
    });
    let strat = Arc::clone(&strategy);
    let window = options.window_edges;
    let ing = g.add_filter("ingest", (p..p + f).collect(), move |_| {
        Box::new(IngestFilter {
            strategy: Arc::clone(&strat),
            batch_edges: window,
            batches: Vec::new(),
        })
    });
    let backends: Vec<_> = (0..p).map(|i| cluster.backend(i)).collect();
    let store = g.add_filter("store", (0..p).collect(), move |i| {
        Box::new(StoreFilter {
            backend: backends[i].clone(),
        })
    });
    if options.demand_driven {
        g.connect_shared(src, "windows", ing, "windows");
    } else {
        g.connect(src, "windows", ing, "windows");
    }
    g.connect(ing, "batches", store, "batches");
    let report = g.run()?;

    // Publish round-robin ownership for later queries.
    if options.declustering == DeclusterKind::VertexRoundRobin {
        if let Declustering::VertexRoundRobin { owners, .. } = &*strategy.lock() {
            cluster.owner_map = Some(Arc::new(owners.clone()));
        }
    } else {
        cluster.owner_map = None;
    }
    cluster.broadcast_fringe = options.declustering == DeclusterKind::EdgeRoundRobin;

    let edges = *edge_count.lock();
    Ok(IngestReport {
        edges,
        telemetry: cluster.telemetry_report(report, &io_before),
    })
}

struct SourceFilter {
    edges: Box<dyn Iterator<Item = Edge> + Send>,
    window: usize,
    count: Arc<Mutex<u64>>,
}

impl Filter for SourceFilter {
    fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
        let mut total = 0u64;
        let mut buf = Vec::with_capacity(self.window);
        loop {
            buf.clear();
            buf.extend(self.edges.by_ref().take(self.window));
            if buf.is_empty() {
                break;
            }
            total += buf.len() as u64;
            ctx.output("windows")?
                .send_rr(DataBuffer::from_edges(0, &buf))?;
        }
        *self.count.lock() = total;
        Ok(())
    }
}

struct IngestFilter {
    strategy: Arc<Mutex<Declustering>>,
    batch_edges: usize,
    /// Per-back-end pending directed entries.
    batches: Vec<Vec<Edge>>,
}

impl IngestFilter {
    fn flush_batch(&mut self, ctx: &mut FilterContext, node: usize) -> Result<()> {
        if self.batches[node].is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.batches[node]);
        ctx.output("batches")?
            .send_to(node, DataBuffer::from_edges(0, &batch))?;
        Ok(())
    }
}

impl Filter for IngestFilter {
    fn init(&mut self, _ctx: &mut FilterContext) -> Result<()> {
        let nodes = self.strategy.lock().nodes();
        self.batches = vec![Vec::new(); nodes];
        Ok(())
    }

    fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
        while let Some(window) = ctx.input("windows")?.recv() {
            let _span = ctx
                .telemetry()
                .tracer
                .span("ingest.window")
                .with("edges", window.edges().len() as u64)
                .with("bytes", window.len() as u64);
            for e in window.edges() {
                let assignments = self.strategy.lock().assign(e);
                for (node, entry) in assignments {
                    self.batches[node].push(entry);
                    if self.batches[node].len() >= self.batch_edges {
                        self.flush_batch(ctx, node)?;
                    }
                }
            }
        }
        for node in 0..self.batches.len() {
            self.flush_batch(ctx, node)?;
        }
        Ok(())
    }
}

struct StoreFilter {
    backend: crate::cluster::SharedBackend,
}

impl Filter for StoreFilter {
    fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
        let mut db = self.backend.lock();
        while let Some(batch) = ctx.input("batches")?.recv() {
            db.store_edges(&batch.edges())?;
        }
        db.flush()
    }
}

/// Outcome of a typed (ontology-validated) ingestion.
#[derive(Clone, Debug)]
pub struct TypedIngestReport {
    /// The underlying ingestion report for the accepted edges.
    pub report: IngestReport,
    /// Edges rejected because their type triple violates the ontology.
    pub rejected: u64,
}

/// Streams a *semantic* (typed) edge feed into the cluster, validating
/// every assertion against the ontology first — the blueprint role of
/// thesis Figure 1.1. Edges whose `(src_type, edge_type, dst_type)` triple
/// the schema does not allow are counted and dropped; the survivors are
/// ingested untyped.
pub fn ingest_typed(
    cluster: &mut MssgCluster,
    edges: impl Iterator<Item = TypedEdge> + Send + 'static,
    ontology: &Ontology,
    options: &IngestOptions,
) -> Result<TypedIngestReport> {
    let ontology = ontology.clone();
    let rejected = Arc::new(Mutex::new(0u64));
    let rejected2 = Arc::clone(&rejected);
    let valid = edges.filter_map(move |te| {
        if ontology.validate(&te).is_ok() {
            Some(te.untyped())
        } else {
            *rejected2.lock() += 1;
            None
        }
    });
    let report = ingest(cluster, valid, options)?;
    let rejected = *rejected.lock();
    Ok(TypedIngestReport { report, rejected })
}

/// Convenience for tests and examples: where each vertex's adjacency can
/// be found after a `VertexHash` ingestion.
pub fn hash_owner(v: Gid, nodes: usize) -> usize {
    (v.raw() % nodes as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendKind, BackendOptions};
    use graphdb::GraphDbExt;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("core-ingest-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn ring(n: u64) -> Vec<Edge> {
        (0..n).map(|i| Edge::of(i, (i + 1) % n)).collect()
    }

    #[test]
    fn vertex_hash_places_adjacency_at_owner() {
        let dir = tmpdir("hash");
        let mut cluster =
            MssgCluster::new(&dir, 3, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let report = ingest(
            &mut cluster,
            ring(30).into_iter(),
            &IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(report.edges, 30);
        // Each undirected edge became two directed entries.
        assert_eq!(cluster.total_entries(), 60);
        for v in 0..30u64 {
            let owner = hash_owner(Gid::new(v), 3);
            let n = cluster.with_backend(owner, |db| db.neighbors(Gid::new(v)).unwrap());
            assert_eq!(n.len(), 2, "ring vertex {v} has two neighbours");
            for other in 0..3 {
                if other != owner {
                    let n = cluster.with_backend(other, |db| db.neighbors(Gid::new(v)).unwrap());
                    assert!(n.is_empty(), "vertex {v} leaked to node {other}");
                }
            }
        }
    }

    #[test]
    fn multiple_front_ends_store_everything() {
        let dir = tmpdir("fe4");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let opts = IngestOptions {
            front_ends: 4,
            window_edges: 7,
            ..Default::default()
        };
        let report = ingest(&mut cluster, ring(100).into_iter(), &opts).unwrap();
        assert_eq!(report.edges, 100);
        assert_eq!(cluster.total_entries(), 200);
    }

    #[test]
    fn vertex_rr_publishes_owner_map() {
        let dir = tmpdir("rr");
        let mut cluster =
            MssgCluster::new(&dir, 4, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let opts = IngestOptions {
            declustering: DeclusterKind::VertexRoundRobin,
            ..Default::default()
        };
        ingest(&mut cluster, ring(20).into_iter(), &opts).unwrap();
        let owners = cluster
            .owner_map()
            .expect("RR ingestion publishes ownership");
        assert_eq!(owners.len(), 20);
        // The published map is truthful: the owner really holds the list.
        for (v, &node) in owners.iter() {
            let n = cluster.with_backend(node, |db| db.neighbors(*v).unwrap());
            assert_eq!(n.len(), 2);
        }
    }

    #[test]
    fn edge_rr_spreads_and_keeps_everything() {
        let dir = tmpdir("edge");
        let mut cluster =
            MssgCluster::new(&dir, 4, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let opts = IngestOptions {
            declustering: DeclusterKind::EdgeRoundRobin,
            ..Default::default()
        };
        ingest(&mut cluster, ring(40).into_iter(), &opts).unwrap();
        assert_eq!(cluster.total_entries(), 80);
        // Union of all nodes' views of vertex 0 is its full neighbourhood.
        let mut all = Vec::new();
        for i in 0..4 {
            all.extend(cluster.with_backend(i, |db| db.neighbors(Gid::new(0)).unwrap()));
        }
        all.sort_unstable();
        assert_eq!(all, vec![Gid::new(1), Gid::new(39)]);
    }

    #[test]
    fn out_of_core_backend_roundtrip() {
        let dir = tmpdir("grdb");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::Grdb, &BackendOptions::default()).unwrap();
        ingest(
            &mut cluster,
            ring(16).into_iter(),
            &IngestOptions::default(),
        )
        .unwrap();
        let report_io = cluster.io_snapshot();
        assert!(report_io.block_writes > 0, "grDB must have hit the disk");
        for v in 0..16u64 {
            let owner = hash_owner(Gid::new(v), 2);
            let n = cluster.with_backend(owner, |db| db.neighbors(Gid::new(v)).unwrap());
            assert_eq!(n.len(), 2, "vertex {v}");
        }
    }

    #[test]
    fn demand_driven_ingestion_stores_everything() {
        let dir = tmpdir("demand");
        let mut cluster =
            MssgCluster::new(&dir, 3, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let opts = IngestOptions {
            front_ends: 4,
            window_edges: 5,
            demand_driven: true,
            ..Default::default()
        };
        let report = ingest(&mut cluster, ring(100).into_iter(), &opts).unwrap();
        assert_eq!(report.edges, 100);
        assert_eq!(cluster.total_entries(), 200);
        // Same stored graph as round-robin distribution.
        for v in 0..100u64 {
            let owner = hash_owner(Gid::new(v), 3);
            let n = cluster.with_backend(owner, |db| {
                use graphdb::GraphDbExt;
                db.neighbors(Gid::new(v)).unwrap()
            });
            assert_eq!(n.len(), 2, "vertex {v}");
        }
    }

    #[test]
    fn typed_ingestion_enforces_the_ontology() {
        use mssg_types::TypedEdge;
        let dir = tmpdir("typed");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let ont = mssg_types::Ontology::example_meetings();
        let person = ont.vertex_type("Person").unwrap();
        let meeting = ont.vertex_type("Meeting").unwrap();
        let date = ont.vertex_type("Date").unwrap();
        let attends = ont.edge_type("attends").unwrap();
        let occurred = ont.edge_type("occurred on").unwrap();
        let feed = vec![
            TypedEdge::new(Edge::of(0, 100), person, attends, meeting),
            TypedEdge::new(Edge::of(100, 200), meeting, occurred, date),
            // Violations: Person-Date directly, and attends to a Date.
            TypedEdge::new(Edge::of(0, 200), person, attends, date),
            TypedEdge::new(Edge::of(1, 200), person, occurred, date),
        ];
        let out = ingest_typed(
            &mut cluster,
            feed.into_iter(),
            &ont,
            &IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(out.rejected, 2);
        assert_eq!(out.report.edges, 2);
        assert_eq!(cluster.total_entries(), 4);
    }

    #[test]
    fn window_spans_and_queue_metrics_when_telemetry_enabled() {
        let dir = tmpdir("spans");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let telemetry = mssg_obs::Telemetry::enabled();
        cluster.set_telemetry(telemetry.clone());
        let opts = IngestOptions {
            window_edges: 10,
            ..Default::default()
        };
        let report = ingest(&mut cluster, ring(95).into_iter(), &opts).unwrap();

        // ceil(95 / 10) windows, each annotated with its edge count.
        let spans = telemetry.tracer.finished_spans();
        let windows: Vec<_> = spans.iter().filter(|s| s.name == "ingest.window").collect();
        assert_eq!(windows.len(), 10);
        let edges: u64 = windows.iter().map(|s| s.field_u64("edges").unwrap()).sum();
        assert_eq!(edges, 95);
        assert!(windows.iter().all(|s| s.field_u64("bytes").unwrap() > 0));

        // The unified report carries the per-filter breakdown and the
        // substrate's queue-occupancy histograms.
        assert_eq!(
            report.telemetry.filters.len(),
            4,
            "source + 1 ingest + 2 store copies"
        );
        assert!(report
            .telemetry
            .metrics
            .histograms
            .keys()
            .any(|k| k.starts_with("dc.queue_depth.")));
    }

    #[test]
    fn empty_stream_is_fine() {
        let dir = tmpdir("empty");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let report = ingest(&mut cluster, std::iter::empty(), &IngestOptions::default()).unwrap();
        assert_eq!(report.edges, 0);
        assert_eq!(cluster.total_entries(), 0);
    }
}
