//! The Ingestion service (thesis §3.2), as a DataCutter filter graph.
//!
//! ```text
//!  external stream          front-end nodes                back-end nodes
//!  ┌────────┐  windows   ┌───────────────┐  edge batches  ┌───────────┐
//!  │ source │ ─────────> │ ingestion × F │ ─────────────> │ store × P │
//!  └────────┘   (RR)     │  (decluster)  │  (by owner)    │ (GraphDB) │
//!                        └───────────────┘                └───────────┘
//! ```
//!
//! The source models the external data feed: it cuts the incoming edge
//! stream into fixed-size *windows* ("blocks") and deals them round-robin
//! to the front-end ingestion nodes. Each ingestion filter runs the
//! declustering strategy over its windows and ships per-back-end batches
//! of *directed* entries to the store filters, which append them to their
//! local GraphDB instances. Varying the number of front-ends reproduces
//! the Figure 5.3 experiment; varying back-ends, Figure 5.5.

use crate::cluster::MssgCluster;
use crate::decluster::Declustering;
use crate::telemetry::TelemetryReport;
use datacutter::{BufferPool, DataBuffer, FaultPlan, Filter, FilterContext, GraphBuilder};
use mssg_obs::Counter;
use mssg_types::{Edge, Gid, Meta, Ontology, Result, TypedEdge, UNVISITED};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Which declustering strategy the ingestion runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DeclusterKind {
    /// Vertex granularity, `GID % p` (globally known).
    #[default]
    VertexHash,
    /// Vertex granularity, first-seen round-robin.
    VertexRoundRobin,
    /// Edge granularity round-robin.
    EdgeRoundRobin,
}

/// Ingestion configuration.
#[derive(Clone, Debug)]
pub struct IngestOptions {
    /// Number of front-end ingestion nodes.
    pub front_ends: usize,
    /// Edges per streaming window (thesis "blocks of a predetermined
    /// size, each of which fits into memory").
    pub window_edges: usize,
    /// Declustering strategy.
    pub declustering: DeclusterKind,
    /// Distribute windows to the front-ends through a River-style shared
    /// demand queue instead of round-robin: faster ingestion nodes pull
    /// more windows, adapting to load imbalance (thesis chapter 2's River
    /// discussion).
    pub demand_driven: bool,
    /// Resume a killed-and-restarted ingestion: windows the checkpoint
    /// shows as already durably stored are skipped instead of duplicated
    /// (counted in the `ingest.windows_skipped` metric). Only meaningful
    /// when the *same* edge stream (and `window_edges`) is replayed into
    /// the same cluster; off by default.
    pub resume: bool,
    /// Restart a crashed (panicked) filter copy up to this many times
    /// before the run fails — see `GraphBuilder::supervise`. 0 (default)
    /// keeps the classic fail-stop behaviour.
    pub max_restarts: u32,
    /// Base backoff between supervised restarts (doubles per attempt).
    pub restart_backoff: Duration,
    /// Per-stream send/recv deadline; a dead filter then surfaces as a
    /// typed timeout error instead of a hang. `None` (default) blocks
    /// indefinitely.
    pub stream_timeout: Option<Duration>,
    /// Deterministic fault plan for chaos testing the pipeline.
    pub fault_plan: Option<FaultPlan>,
    /// Size of the [`BufferPool`] shared by the pipeline's filters, in
    /// buffers (0 = pooling off). Spent window/batch payloads are recycled
    /// into the next allocation instead of going back to the allocator;
    /// see the `dc.pool.*` counters in the run's telemetry.
    pub pool_blocks: usize,
    /// Apply windows to each back-end in ascending window order (a small
    /// store-side reorder buffer). With several front-ends, windows race
    /// to the store and per-vertex adjacency order becomes
    /// schedule-dependent; `ordered` restores the single-front-end order —
    /// and therefore a byte-identical stored graph — at parallel speed.
    pub ordered: bool,
    /// Accumulate at least this many directed entries before calling
    /// `store_edges` (0 = flush per window). Batches sized to the storage
    /// engine's block let grDB walk each vertex's chain once per batch
    /// instead of once per window. Checkpoint marks are deferred to the
    /// batch flush, so a window is never marked durable before its edges
    /// are stored.
    pub store_batch_edges: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            front_ends: 1,
            window_edges: 4096,
            declustering: DeclusterKind::VertexHash,
            demand_driven: false,
            resume: false,
            max_restarts: 0,
            restart_backoff: Duration::from_millis(25),
            stream_timeout: None,
            fault_plan: None,
            pool_blocks: 0,
            ordered: false,
            store_batch_edges: 0,
        }
    }
}

/// `Gid` tag reserved for ingestion-checkpoint metadata keys (tags 1–5
/// belong to typed application payloads, 7 to `Gid::NIL`).
const CKPT_TAG: u8 = 6;
/// Metadata value marking a window as durably stored on a node.
const CKPT_STORED: Meta = 1;

/// Checkpoint key for window `w` (payload is `w + 1`; payload 0 is the
/// watermark key).
fn window_ckpt_gid(w: u64) -> Gid {
    Gid::tagged(CKPT_TAG, w + 1)
}

/// Checkpoint key holding a node's watermark: the number of *contiguous*
/// windows (from window 0) durably stored on that node.
fn watermark_gid() -> Gid {
    Gid::tagged(CKPT_TAG, 0)
}

/// Reads a node's ingestion watermark — how many contiguous windows (from
/// the start of the stream) it has durably stored. The minimum across all
/// nodes is the prefix a resumed ingestion can skip outright.
pub fn ingest_watermark(db: &mut dyn graphdb::GraphDb) -> Result<u64> {
    let m = db.get_metadata(watermark_gid())?;
    Ok(if m == UNVISITED { 0 } else { m as u64 })
}

/// Outcome of an ingestion run.
#[derive(Clone, Debug)]
pub struct IngestReport {
    /// Undirected edges ingested.
    pub edges: u64,
    /// Time, traffic, and per-filter breakdown of the run.
    pub telemetry: TelemetryReport,
}

/// Streams `edges` into the cluster. Returns when every back-end has
/// stored and flushed its partition.
pub fn ingest(
    cluster: &mut MssgCluster,
    edges: impl Iterator<Item = Edge> + Send + 'static,
    options: &IngestOptions,
) -> Result<IngestReport> {
    assert!(options.front_ends > 0, "need at least one ingestion node");
    assert!(
        options.window_edges > 0,
        "window must hold at least one edge"
    );
    let p = cluster.nodes();
    let f = options.front_ends;
    let io_before = cluster.io_snapshot();

    let strategy = Arc::new(Mutex::new(match options.declustering {
        DeclusterKind::VertexHash => Declustering::vertex_hash(p),
        DeclusterKind::VertexRoundRobin => Declustering::vertex_round_robin(p),
        DeclusterKind::EdgeRoundRobin => Declustering::edge_round_robin(p),
    }));

    // A resumed run can skip outright every window below the *minimum*
    // watermark — all nodes already hold those — and lets the per-window
    // checkpoint sort out the ragged region above it.
    let resume_from = if options.resume {
        (0..p)
            .map(|i| cluster.with_backend(i, |db| ingest_watermark(db)))
            .collect::<Result<Vec<_>>>()?
            .into_iter()
            .min()
            .unwrap_or(0)
    } else {
        0
    };

    let mut g = GraphBuilder::new();
    g.telemetry(cluster.telemetry().clone());
    if let Some(t) = options.stream_timeout {
        g.stream_timeout(t);
    }
    if let Some(plan) = &options.fault_plan {
        g.fault_plan(plan.clone());
    }
    g.supervise(options.max_restarts, options.restart_backoff);
    // One pool closes the allocation loop across the whole pipeline:
    // windows recycle at the ingest filters, batches at the stores.
    let pool = (options.pool_blocks > 0).then(|| BufferPool::new(options.pool_blocks));
    // Node layout: back-ends 0..p, front-ends p..p+f, source at p+f.
    let mut source_holder = Some(SourceFilter {
        edges: Box::new(edges),
        window: options.window_edges,
        skip_before: resume_from,
        count: Arc::new(Mutex::new(0)),
        pool: pool.clone(),
    });
    let edge_count = Arc::clone(&source_holder.as_ref().unwrap().count);
    let src = g.add_filter("source", vec![p + f], move |_| {
        Box::new(source_holder.take().expect("source filter built once"))
    })?;
    let strat = Arc::clone(&strategy);
    let ing_pool = pool.clone();
    let ing = g.add_filter("ingest", (p..p + f).collect(), move |_| {
        Box::new(IngestFilter {
            strategy: Arc::clone(&strat),
            nodes: 0,
            pool: ing_pool.clone(),
        })
    })?;
    let backends: Vec<_> = (0..p).map(|i| cluster.backend(i)).collect();
    let resume = options.resume;
    let ordered = options.ordered;
    let batch_edges = options.store_batch_edges;
    let store_pool = pool.clone();
    let store = g.add_filter("store", (0..p).collect(), move |i| {
        Box::new(StoreFilter {
            backend: backends[i].clone(),
            resume,
            ordered,
            batch_edges,
            pool: store_pool.clone(),
        })
    })?;
    g.declare_ports(src, &[], &["windows"]);
    g.declare_ports(ing, &["windows"], &["batches"]);
    g.declare_ports(store, &["batches"], &[]);
    g.expect_consumers(ing, "batches", p);
    if options.demand_driven {
        g.connect_shared(src, "windows", ing, "windows")?;
    } else {
        g.connect(src, "windows", ing, "windows")?;
    }
    g.connect(ing, "batches", store, "batches")?;
    let report = g.run()?;

    // Every store filter has flushed its last batch and marked its
    // windows durable — a window-checkpoint boundary (DESIGN.md §6) — so
    // the graph epoch advances. A failed run never reaches this line:
    // queries pinned to the old epoch keep their snapshot, and the
    // half-ingested windows become visible only once a `resume` replay
    // completes the boundary.
    cluster.epoch_manager().bump();

    if let Some(pool) = &pool {
        let s = pool.stats();
        let m = &cluster.telemetry().metrics;
        m.counter("dc.pool.hits").add(s.hits);
        m.counter("dc.pool.misses").add(s.misses);
        m.counter("dc.pool.recycled").add(s.recycled);
        m.counter("dc.pool.dropped").add(s.dropped);
    }

    // Publish round-robin ownership for later queries.
    if options.declustering == DeclusterKind::VertexRoundRobin {
        if let Declustering::VertexRoundRobin { owners, .. } = &*strategy.lock() {
            cluster.owner_map = Some(Arc::new(owners.clone()));
        }
    } else {
        cluster.owner_map = None;
    }
    cluster.broadcast_fringe = options.declustering == DeclusterKind::EdgeRoundRobin;

    let edges = *edge_count.lock();
    Ok(IngestReport {
        edges,
        telemetry: cluster.telemetry_report(report, &io_before),
    })
}

struct SourceFilter {
    edges: Box<dyn Iterator<Item = Edge> + Send>,
    window: usize,
    /// Windows below this id are not re-sent (resume fast path); their
    /// edges still count toward the reported total.
    skip_before: u64,
    count: Arc<Mutex<u64>>,
    pool: Option<BufferPool>,
}

impl Filter for SourceFilter {
    fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
        let skipped = ctx.telemetry().metrics.counter("ingest.windows_skipped");
        let mut total = 0u64;
        let mut w = 0u64;
        let mut buf = Vec::with_capacity(self.window);
        loop {
            buf.clear();
            buf.extend(self.edges.by_ref().take(self.window));
            if buf.is_empty() {
                break;
            }
            total += buf.len() as u64;
            if w < self.skip_before {
                skipped.inc();
            } else {
                let window = match &self.pool {
                    Some(p) => p.from_edges(w, &buf),
                    None => DataBuffer::from_edges(w, &buf),
                };
                ctx.output("windows")?.send_rr(window)?;
            }
            w += 1;
        }
        *self.count.lock() = total;
        Ok(())
    }
}

struct IngestFilter {
    strategy: Arc<Mutex<Declustering>>,
    /// Back-end count, learned from the strategy at `init`.
    nodes: usize,
    pool: Option<BufferPool>,
}

impl Filter for IngestFilter {
    fn init(&mut self, _ctx: &mut FilterContext) -> Result<()> {
        self.nodes = self.strategy.lock().nodes();
        Ok(())
    }

    fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
        while let Some(window) = ctx.input("windows")?.recv()? {
            let w = window.tag;
            let _span = ctx
                .telemetry()
                .tracer
                .span("ingest.window")
                .with("edges", window.len() as u64 / 16)
                .with("bytes", window.len() as u64);
            let mut batches = vec![Vec::new(); self.nodes];
            for e in window.edges() {
                for (node, entry) in self.strategy.lock().assign(e) {
                    batches[node].push(entry);
                }
            }
            if let Some(p) = &self.pool {
                p.recycle(window);
            }
            // Every back-end hears every window id — including ones it got
            // no edges from — so each node's checkpoint watermark advances
            // over empty windows too.
            for (node, batch) in batches.into_iter().enumerate() {
                let out = match &self.pool {
                    Some(p) => p.from_edges(w, &batch),
                    None => DataBuffer::from_edges(w, &batch),
                };
                ctx.output("batches")?.send_to(node, out)?;
            }
        }
        Ok(())
    }
}

struct StoreFilter {
    backend: crate::cluster::SharedBackend,
    resume: bool,
    ordered: bool,
    /// Directed entries to accumulate before a `store_edges` flush
    /// (0 = flush per window).
    batch_edges: usize,
    pool: Option<BufferPool>,
}

impl StoreFilter {
    fn recycle(&self, buf: DataBuffer) {
        if let Some(p) = &self.pool {
            p.recycle(buf);
        }
    }

    /// Folds one window into the pending batch (or skips it under resume),
    /// flushing when the batch reaches its target size.
    fn absorb(
        &mut self,
        buf: DataBuffer,
        batch: &mut Vec<Edge>,
        marks: &mut Vec<u64>,
        skipped: &Counter,
    ) -> Result<()> {
        let w = buf.tag;
        // Idempotent skip: a resumed run drops windows this node has
        // already durably stored, making re-delivery harmless.
        if self.resume && self.backend.lock().get_metadata(window_ckpt_gid(w))? == CKPT_STORED {
            skipped.inc();
            self.recycle(buf);
            return Ok(());
        }
        batch.extend(buf.edges());
        marks.push(w);
        self.recycle(buf);
        if batch.len() >= self.batch_edges {
            self.flush_batch(batch, marks)?;
        }
        Ok(())
    }

    /// Stores the accumulated batch, then durably marks its windows. The
    /// marks are deferred to this point so a window is never marked before
    /// its edges are stored: a crash mid-batch leaves its windows
    /// unmarked, and a `resume` replay re-stores exactly those.
    fn flush_batch(&mut self, batch: &mut Vec<Edge>, marks: &mut Vec<u64>) -> Result<()> {
        if marks.is_empty() {
            return Ok(());
        }
        let mut db = self.backend.lock();
        if !batch.is_empty() {
            db.store_edges(batch)?;
        }
        batch.clear();
        for &w in marks.iter() {
            db.set_metadata(window_ckpt_gid(w), CKPT_STORED)?;
        }
        marks.clear();
        // Advance the contiguous watermark past every marked window.
        let mut wm = ingest_watermark(db.as_mut())?;
        while db.get_metadata(window_ckpt_gid(wm))? == CKPT_STORED {
            wm += 1;
        }
        db.set_metadata(watermark_gid(), wm as Meta)?;
        Ok(())
    }
}

impl Filter for StoreFilter {
    fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
        let skipped = ctx.telemetry().metrics.counter("ingest.windows_skipped");
        // Ordered mode applies windows in ascending id order. The node's
        // watermark is exactly the next id to apply (ascending application
        // keeps the durable prefix contiguous), which also makes a
        // restarted incarnation pick up where the previous one stopped.
        let mut next = if self.ordered {
            ingest_watermark(self.backend.lock().as_mut())?
        } else {
            0
        };
        let mut pending: BTreeMap<u64, DataBuffer> = BTreeMap::new();
        let mut batch: Vec<Edge> = Vec::new();
        let mut marks: Vec<u64> = Vec::new();
        while let Some(buf) = ctx.input("batches")?.recv()? {
            if self.ordered {
                if buf.tag < next {
                    // Below the durable prefix: an earlier run or
                    // incarnation already stored it.
                    skipped.inc();
                    self.recycle(buf);
                    continue;
                }
                pending.insert(buf.tag, buf);
                while let Some(b) = pending.remove(&next) {
                    self.absorb(b, &mut batch, &mut marks, &skipped)?;
                    next += 1;
                }
            } else {
                self.absorb(buf, &mut batch, &mut marks, &skipped)?;
            }
        }
        // Stream end. A cleanly finished stream delivered every window, so
        // `pending` is empty; after an abnormal teardown it may hold
        // windows above a gap. Those are *dropped*, never applied out of
        // order: they are unmarked, so a resumed replay re-applies them in
        // their proper place.
        drop(pending);
        self.flush_batch(&mut batch, &mut marks)?;
        self.backend.lock().flush()
    }
}

/// Outcome of a typed (ontology-validated) ingestion.
#[derive(Clone, Debug)]
pub struct TypedIngestReport {
    /// The underlying ingestion report for the accepted edges.
    pub report: IngestReport,
    /// Edges rejected because their type triple violates the ontology.
    pub rejected: u64,
}

/// Streams a *semantic* (typed) edge feed into the cluster, validating
/// every assertion against the ontology first — the blueprint role of
/// thesis Figure 1.1. Edges whose `(src_type, edge_type, dst_type)` triple
/// the schema does not allow are counted and dropped; the survivors are
/// ingested untyped.
pub fn ingest_typed(
    cluster: &mut MssgCluster,
    edges: impl Iterator<Item = TypedEdge> + Send + 'static,
    ontology: &Ontology,
    options: &IngestOptions,
) -> Result<TypedIngestReport> {
    let ontology = ontology.clone();
    let rejected = Arc::new(Mutex::new(0u64));
    let rejected2 = Arc::clone(&rejected);
    let valid = edges.filter_map(move |te| {
        if ontology.validate(&te).is_ok() {
            Some(te.untyped())
        } else {
            *rejected2.lock() += 1;
            None
        }
    });
    let report = ingest(cluster, valid, options)?;
    let rejected = *rejected.lock();
    Ok(TypedIngestReport { report, rejected })
}

/// Convenience for tests and examples: where each vertex's adjacency can
/// be found after a `VertexHash` ingestion.
pub fn hash_owner(v: Gid, nodes: usize) -> usize {
    (v.raw() % nodes as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendKind, BackendOptions};
    use graphdb::GraphDbExt;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("core-ingest-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn ring(n: u64) -> Vec<Edge> {
        (0..n).map(|i| Edge::of(i, (i + 1) % n)).collect()
    }

    #[test]
    fn vertex_hash_places_adjacency_at_owner() {
        let dir = tmpdir("hash");
        let mut cluster =
            MssgCluster::new(&dir, 3, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let report = ingest(
            &mut cluster,
            ring(30).into_iter(),
            &IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(report.edges, 30);
        // Each undirected edge became two directed entries.
        assert_eq!(cluster.total_entries(), 60);
        for v in 0..30u64 {
            let owner = hash_owner(Gid::new(v), 3);
            let n = cluster.with_backend(owner, |db| db.neighbors(Gid::new(v)).unwrap());
            assert_eq!(n.len(), 2, "ring vertex {v} has two neighbours");
            for other in 0..3 {
                if other != owner {
                    let n = cluster.with_backend(other, |db| db.neighbors(Gid::new(v)).unwrap());
                    assert!(n.is_empty(), "vertex {v} leaked to node {other}");
                }
            }
        }
    }

    #[test]
    fn multiple_front_ends_store_everything() {
        let dir = tmpdir("fe4");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let opts = IngestOptions {
            front_ends: 4,
            window_edges: 7,
            ..Default::default()
        };
        let report = ingest(&mut cluster, ring(100).into_iter(), &opts).unwrap();
        assert_eq!(report.edges, 100);
        assert_eq!(cluster.total_entries(), 200);
    }

    #[test]
    fn vertex_rr_publishes_owner_map() {
        let dir = tmpdir("rr");
        let mut cluster =
            MssgCluster::new(&dir, 4, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let opts = IngestOptions {
            declustering: DeclusterKind::VertexRoundRobin,
            ..Default::default()
        };
        ingest(&mut cluster, ring(20).into_iter(), &opts).unwrap();
        let owners = cluster
            .owner_map()
            .expect("RR ingestion publishes ownership");
        assert_eq!(owners.len(), 20);
        // The published map is truthful: the owner really holds the list.
        for (v, &node) in owners.iter() {
            let n = cluster.with_backend(node, |db| db.neighbors(*v).unwrap());
            assert_eq!(n.len(), 2);
        }
    }

    #[test]
    fn edge_rr_spreads_and_keeps_everything() {
        let dir = tmpdir("edge");
        let mut cluster =
            MssgCluster::new(&dir, 4, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let opts = IngestOptions {
            declustering: DeclusterKind::EdgeRoundRobin,
            ..Default::default()
        };
        ingest(&mut cluster, ring(40).into_iter(), &opts).unwrap();
        assert_eq!(cluster.total_entries(), 80);
        // Union of all nodes' views of vertex 0 is its full neighbourhood.
        let mut all = Vec::new();
        for i in 0..4 {
            all.extend(cluster.with_backend(i, |db| db.neighbors(Gid::new(0)).unwrap()));
        }
        all.sort_unstable();
        assert_eq!(all, vec![Gid::new(1), Gid::new(39)]);
    }

    #[test]
    fn out_of_core_backend_roundtrip() {
        let dir = tmpdir("grdb");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::Grdb, &BackendOptions::default()).unwrap();
        ingest(
            &mut cluster,
            ring(16).into_iter(),
            &IngestOptions::default(),
        )
        .unwrap();
        let report_io = cluster.io_snapshot();
        assert!(report_io.block_writes > 0, "grDB must have hit the disk");
        for v in 0..16u64 {
            let owner = hash_owner(Gid::new(v), 2);
            let n = cluster.with_backend(owner, |db| db.neighbors(Gid::new(v)).unwrap());
            assert_eq!(n.len(), 2, "vertex {v}");
        }
    }

    #[test]
    fn demand_driven_ingestion_stores_everything() {
        let dir = tmpdir("demand");
        let mut cluster =
            MssgCluster::new(&dir, 3, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let opts = IngestOptions {
            front_ends: 4,
            window_edges: 5,
            demand_driven: true,
            ..Default::default()
        };
        let report = ingest(&mut cluster, ring(100).into_iter(), &opts).unwrap();
        assert_eq!(report.edges, 100);
        assert_eq!(cluster.total_entries(), 200);
        // Same stored graph as round-robin distribution.
        for v in 0..100u64 {
            let owner = hash_owner(Gid::new(v), 3);
            let n = cluster.with_backend(owner, |db| {
                use graphdb::GraphDbExt;
                db.neighbors(Gid::new(v)).unwrap()
            });
            assert_eq!(n.len(), 2, "vertex {v}");
        }
    }

    #[test]
    fn typed_ingestion_enforces_the_ontology() {
        use mssg_types::TypedEdge;
        let dir = tmpdir("typed");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let ont = mssg_types::Ontology::example_meetings();
        let person = ont.vertex_type("Person").unwrap();
        let meeting = ont.vertex_type("Meeting").unwrap();
        let date = ont.vertex_type("Date").unwrap();
        let attends = ont.edge_type("attends").unwrap();
        let occurred = ont.edge_type("occurred on").unwrap();
        let feed = vec![
            TypedEdge::new(Edge::of(0, 100), person, attends, meeting),
            TypedEdge::new(Edge::of(100, 200), meeting, occurred, date),
            // Violations: Person-Date directly, and attends to a Date.
            TypedEdge::new(Edge::of(0, 200), person, attends, date),
            TypedEdge::new(Edge::of(1, 200), person, occurred, date),
        ];
        let out = ingest_typed(
            &mut cluster,
            feed.into_iter(),
            &ont,
            &IngestOptions::default(),
        )
        .unwrap();
        assert_eq!(out.rejected, 2);
        assert_eq!(out.report.edges, 2);
        assert_eq!(cluster.total_entries(), 4);
    }

    #[test]
    fn window_spans_and_queue_metrics_when_telemetry_enabled() {
        let dir = tmpdir("spans");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let telemetry = mssg_obs::Telemetry::enabled();
        cluster.set_telemetry(telemetry.clone());
        let opts = IngestOptions {
            window_edges: 10,
            ..Default::default()
        };
        let report = ingest(&mut cluster, ring(95).into_iter(), &opts).unwrap();

        // ceil(95 / 10) windows, each annotated with its edge count.
        let spans = telemetry.tracer.finished_spans();
        let windows: Vec<_> = spans.iter().filter(|s| s.name == "ingest.window").collect();
        assert_eq!(windows.len(), 10);
        let edges: u64 = windows.iter().map(|s| s.field_u64("edges").unwrap()).sum();
        assert_eq!(edges, 95);
        assert!(windows.iter().all(|s| s.field_u64("bytes").unwrap() > 0));

        // The unified report carries the per-filter breakdown and the
        // substrate's queue-occupancy histograms.
        assert_eq!(
            report.telemetry.filters.len(),
            4,
            "source + 1 ingest + 2 store copies"
        );
        assert!(report
            .telemetry
            .metrics
            .histograms
            .keys()
            .any(|k| k.starts_with("dc.queue_depth.")));
    }

    #[test]
    fn resume_skips_every_stored_window() {
        let dir = tmpdir("resume-all");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let opts = IngestOptions {
            window_edges: 10,
            ..Default::default()
        };
        ingest(&mut cluster, ring(60).into_iter(), &opts).unwrap();
        assert_eq!(cluster.total_entries(), 120);
        for i in 0..2 {
            let wm = cluster.with_backend(i, |db| ingest_watermark(db).unwrap());
            assert_eq!(wm, 6, "node {i} stored all 6 windows contiguously");
        }

        // Replaying the identical stream with `resume` adds nothing: the
        // source fast-skips the whole prefix below the minimum watermark.
        let opts = IngestOptions {
            resume: true,
            ..opts
        };
        let report = ingest(&mut cluster, ring(60).into_iter(), &opts).unwrap();
        assert_eq!(report.edges, 60, "skipped windows still count edges");
        assert_eq!(cluster.total_entries(), 120, "no duplicated entries");
        assert_eq!(
            report.telemetry.metrics.counters["ingest.windows_skipped"],
            6
        );
    }

    #[test]
    fn killed_ingestion_resumes_without_duplicates() {
        use datacutter::{FaultKind, FaultPlan};
        use mssg_types::GraphStorageError;
        let dir = tmpdir("resume-kill");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        // Unsupervised run, store copy 1 panics at its 4th port operation
        // (so it durably stored exactly 3 windows before "the node died").
        let opts = IngestOptions {
            window_edges: 10,
            fault_plan: Some(FaultPlan::new().inject("store", Some(1), 4, FaultKind::Panic)),
            ..Default::default()
        };
        let err = ingest(&mut cluster, ring(100).into_iter(), &opts).unwrap_err();
        assert!(
            matches!(err, GraphStorageError::FilterFailed(_)),
            "crash surfaces as the root-cause typed error, got: {err}"
        );
        let partial = cluster.total_entries();
        assert!(partial < 200, "the killed run must be incomplete");
        assert_eq!(
            cluster.with_backend(1, |db| ingest_watermark(db).unwrap()),
            3
        );

        // Replay the same stream with `resume`: stored windows are skipped
        // (idempotent), missing ones are stored — converging on exactly
        // the fault-free result.
        let opts = IngestOptions {
            window_edges: 10,
            resume: true,
            ..Default::default()
        };
        let report = ingest(&mut cluster, ring(100).into_iter(), &opts).unwrap();
        assert_eq!(report.edges, 100);
        assert_eq!(cluster.total_entries(), 200, "converged, no duplicates");
        assert!(report.telemetry.metrics.counters["ingest.windows_skipped"] > 0);
        for i in 0..2 {
            let wm = cluster.with_backend(i, |db| ingest_watermark(db).unwrap());
            assert_eq!(wm, 10);
        }
    }

    #[test]
    fn supervised_chaos_ingestion_converges() {
        use datacutter::FaultPlan;
        let dir = tmpdir("chaos");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        // Three injected store-copy panics, each absorbed by a supervised
        // restart. Panics fire at recv boundaries (before the buffer is
        // popped), so the restarted incarnation re-receives the window and
        // nothing is lost or duplicated.
        let opts = IngestOptions {
            window_edges: 8,
            max_restarts: 5,
            fault_plan: Some(FaultPlan::new().panics(42, "store", 2, 3, 12)),
            stream_timeout: Some(Duration::from_secs(30)),
            ..Default::default()
        };
        let report = ingest(&mut cluster, ring(120).into_iter(), &opts).unwrap();
        assert_eq!(report.edges, 120);
        assert_eq!(cluster.total_entries(), 240, "same result as fault-free");
        assert_eq!(report.telemetry.faults.len(), 3, "all three faults fired");
        assert_eq!(report.telemetry.restarts.len(), 3, "one restart each");
        assert_eq!(report.telemetry.metrics.counters["dc.restarts"], 3);
        assert_eq!(report.telemetry.metrics.counters["dc.faults_injected"], 3);
    }

    #[test]
    fn exhausted_restarts_surface_as_typed_error_not_hang() {
        use datacutter::{FaultKind, FaultPlan};
        use mssg_types::GraphStorageError;
        let dir = tmpdir("exhaust");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        // Two panics against the same copy but only one restart allowed:
        // the second crash exhausts the budget and must fail the run with
        // a typed error well inside the stream timeout.
        let opts = IngestOptions {
            window_edges: 10,
            max_restarts: 1,
            fault_plan: Some(
                FaultPlan::new()
                    .inject("store", Some(0), 2, FaultKind::Panic)
                    .inject("store", Some(0), 3, FaultKind::Panic),
            ),
            stream_timeout: Some(Duration::from_secs(30)),
            ..Default::default()
        };
        let start = std::time::Instant::now();
        let err = ingest(&mut cluster, ring(100).into_iter(), &opts).unwrap_err();
        assert!(
            matches!(err, GraphStorageError::FilterFailed(_)),
            "got: {err}"
        );
        assert!(err.to_string().contains("after 1 restart"), "{err}");
        assert!(start.elapsed() < Duration::from_secs(30), "no hang");
    }

    #[test]
    fn pooled_ingestion_recycles_and_publishes_counters() {
        let dir = tmpdir("pool");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        cluster.set_telemetry(mssg_obs::Telemetry::enabled());
        let opts = IngestOptions {
            window_edges: 10,
            pool_blocks: 8,
            ..Default::default()
        };
        let report = ingest(&mut cluster, ring(200).into_iter(), &opts).unwrap();
        assert_eq!(report.edges, 200);
        assert_eq!(cluster.total_entries(), 400);
        let c = &report.telemetry.metrics.counters;
        assert!(c["dc.pool.recycled"] > 0, "spent payloads returned");
        assert!(c["dc.pool.hits"] > 0, "returned payloads were reused");
        // Every pool hit consumed one previously recycled payload.
        assert!(c["dc.pool.hits"] <= c["dc.pool.recycled"]);
    }

    #[test]
    fn batched_flushes_store_everything_and_advance_watermark() {
        let dir = tmpdir("batch");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let opts = IngestOptions {
            window_edges: 10,
            store_batch_edges: 64,
            ..Default::default()
        };
        let report = ingest(&mut cluster, ring(100).into_iter(), &opts).unwrap();
        assert_eq!(report.edges, 100);
        assert_eq!(cluster.total_entries(), 200);
        for i in 0..2 {
            let wm = cluster.with_backend(i, |db| ingest_watermark(db).unwrap());
            assert_eq!(wm, 10, "deferred marks still cover every window");
        }
    }

    #[test]
    fn ordered_parallel_front_ends_match_single_front_end_order() {
        // Sources repeat across windows, so adjacency order depends on the
        // order windows reach the stores.
        let edges: Vec<Edge> = (0..200u64).map(|i| Edge::of(i % 10, 100 + i)).collect();
        let run = |tag: &str, opts: &IngestOptions| {
            let dir = tmpdir(tag);
            let mut cluster =
                MssgCluster::new(&dir, 3, BackendKind::HashMap, &BackendOptions::default())
                    .unwrap();
            ingest(&mut cluster, edges.clone().into_iter(), opts).unwrap();
            (0..10u64)
                .map(|v| {
                    let owner = hash_owner(Gid::new(v), 3);
                    cluster.with_backend(owner, |db| db.neighbors(Gid::new(v)).unwrap())
                })
                .collect::<Vec<_>>()
        };
        let single = run(
            "ord-single",
            &IngestOptions {
                window_edges: 8,
                ..Default::default()
            },
        );
        let parallel = run(
            "ord-par",
            &IngestOptions {
                front_ends: 4,
                window_edges: 8,
                ordered: true,
                ..Default::default()
            },
        );
        assert_eq!(
            single, parallel,
            "ordered mode restores the single-front-end adjacency order"
        );
    }

    #[test]
    fn killed_batched_ingestion_resumes_without_duplicates() {
        use datacutter::{FaultKind, FaultPlan};
        let dir = tmpdir("batch-kill");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        // The batch never fills before the crash, so nothing this copy
        // received was flushed — and nothing may be marked durable.
        let opts = IngestOptions {
            window_edges: 10,
            store_batch_edges: 10_000,
            fault_plan: Some(FaultPlan::new().inject("store", Some(1), 4, FaultKind::Panic)),
            ..Default::default()
        };
        ingest(&mut cluster, ring(100).into_iter(), &opts).unwrap_err();
        assert_eq!(
            cluster.with_backend(1, |db| ingest_watermark(db).unwrap()),
            0,
            "unflushed windows stay unmarked"
        );
        let retry = IngestOptions {
            window_edges: 10,
            store_batch_edges: 10_000,
            resume: true,
            ..Default::default()
        };
        let report = ingest(&mut cluster, ring(100).into_iter(), &retry).unwrap();
        assert_eq!(report.edges, 100);
        assert_eq!(cluster.total_entries(), 200, "converged, no duplicates");
    }

    #[test]
    fn empty_stream_is_fine() {
        let dir = tmpdir("empty");
        let mut cluster =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let report = ingest(&mut cluster, std::iter::empty(), &IngestOptions::default()).unwrap();
        assert_eq!(report.edges, 0);
        assert_eq!(cluster.total_entries(), 0);
    }
}
