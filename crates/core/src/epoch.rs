//! Graph epochs: consistent snapshots for concurrent query serving.
//!
//! An *epoch* counts window-checkpoint boundaries: ingestion advances the
//! cluster's epoch exactly when a batch of windows has been durably
//! stored and flushed on every back-end (the PR-2 checkpoint machinery),
//! so the graph visible at any single epoch is never a half-applied
//! window.
//!
//! The [`EpochManager`] is the coordination point between readers and the
//! ingestion writer:
//!
//! - a query **pins** the current epoch ([`EpochManager::pin`]) for its
//!   whole execution, promising the serving layer that everything it
//!   reads belongs to that epoch;
//! - an updater **registers** before mutating ([`EpochManager::begin_update`]),
//!   which blocks until every pin drains — and blocks *new* pins until
//!   the update finishes (writer priority, so a steady query stream can
//!   never starve ingestion);
//! - completed checkpoint boundaries **bump** the counter
//!   ([`EpochManager::bump`]); [`crate::ingest::ingest`] does this
//!   automatically after its final flush.
//!
//! Code that never pins (batch analyses over an exclusively-owned
//! cluster) pays one atomic load per ingest run and nothing else: Rust's
//! `&mut MssgCluster` already serializes those callers.

use std::sync::{Condvar, Mutex};

#[derive(Default)]
struct EpochState {
    /// Completed checkpoint boundaries since the cluster opened.
    epoch: u64,
    /// Queries currently pinned to `epoch`.
    pins: u64,
    /// An updater is waiting for pins to drain or is mutating the graph.
    updating: bool,
}

/// Epoch counter plus the pin/update gate described in the module docs.
pub struct EpochManager {
    state: Mutex<EpochState>,
    cv: Condvar,
}

impl Default for EpochManager {
    fn default() -> Self {
        EpochManager::new()
    }
}

impl EpochManager {
    /// A manager starting at epoch 0 with no pins.
    pub fn new() -> EpochManager {
        EpochManager {
            state: Mutex::new(EpochState::default()),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, EpochState> {
        // A poisoned lock means a panic while holding it; the state is a
        // trio of integers with no invariant a panic can tear.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The current epoch.
    pub fn current(&self) -> u64 {
        self.lock().epoch
    }

    /// Queries currently pinned (diagnostics / metrics).
    pub fn pinned(&self) -> u64 {
        self.lock().pins
    }

    /// Pins the current epoch for a query. Blocks while an update is
    /// registered or in progress, so the returned guard's epoch is stable
    /// for the guard's whole lifetime.
    pub fn pin(&self) -> EpochPin<'_> {
        let mut s = self.lock();
        while s.updating {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.pins += 1;
        EpochPin {
            mgr: self,
            epoch: s.epoch,
        }
    }

    /// Registers an update: marks the updater active (blocking new pins)
    /// and waits for in-flight pins to drain. Mutate the graph only while
    /// holding the returned guard; drop it when the mutation — including
    /// its [`bump`](EpochManager::bump) — is complete.
    ///
    /// # Panics
    /// Panics if an update is already registered: updates must be
    /// serialized by the caller (the serving layer runs one ingestion at
    /// a time; batch callers hold `&mut MssgCluster`).
    pub fn begin_update(&self) -> EpochUpdate<'_> {
        let mut s = self.lock();
        assert!(!s.updating, "concurrent epoch updates are not supported");
        s.updating = true;
        while s.pins > 0 {
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        EpochUpdate { mgr: self }
    }

    /// [`begin_update`](EpochManager::begin_update) with a drain
    /// deadline: if in-flight pins have not drained within `timeout`, the
    /// registration is rolled back (new pins unblock) and a typed
    /// [`Timeout`](mssg_types::GraphStorageError::Timeout) comes back
    /// instead of waiting forever.
    ///
    /// This is the serving plane's guard against a leaked pin — a worker
    /// stuck writing to a dead client, a panicked analysis, any bug that
    /// keeps a pin alive — turning "ingestion hangs forever" into an
    /// error the operator can see and retry.
    ///
    /// # Panics
    /// Panics if an update is already registered, exactly like
    /// [`begin_update`](EpochManager::begin_update).
    pub fn begin_update_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> mssg_types::Result<EpochUpdate<'_>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut s = self.lock();
        assert!(!s.updating, "concurrent epoch updates are not supported");
        s.updating = true;
        while s.pins > 0 {
            let now = std::time::Instant::now();
            if now >= deadline {
                let stuck = s.pins;
                s.updating = false;
                drop(s);
                self.cv.notify_all();
                return Err(mssg_types::GraphStorageError::Timeout(format!(
                    "epoch update gate: {stuck} pin(s) still held after {timeout:?}"
                )));
            }
            let (guard, _) = self
                .cv
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            s = guard;
        }
        Ok(EpochUpdate { mgr: self })
    }

    /// Records a completed checkpoint boundary: the epoch advances and
    /// every waiter is woken. Called by ingestion after its final flush;
    /// legal with or without a registered update.
    pub fn bump(&self) -> u64 {
        let mut s = self.lock();
        s.epoch += 1;
        let now = s.epoch;
        drop(s);
        self.cv.notify_all();
        now
    }
}

/// A query's claim on one epoch; the graph cannot change while any pin
/// is alive. Released on drop.
pub struct EpochPin<'a> {
    mgr: &'a EpochManager,
    epoch: u64,
}

impl EpochPin<'_> {
    /// The epoch this pin holds stable.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for EpochPin<'_> {
    fn drop(&mut self) {
        let mut s = self.mgr.lock();
        s.pins -= 1;
        let drained = s.pins == 0;
        drop(s);
        if drained {
            self.mgr.cv.notify_all();
        }
    }
}

/// An updater's exclusive claim: no pins exist and none can be taken
/// until this guard drops.
pub struct EpochUpdate<'a> {
    mgr: &'a EpochManager,
}

impl Drop for EpochUpdate<'_> {
    fn drop(&mut self) {
        let mut s = self.mgr.lock();
        s.updating = false;
        drop(s);
        self.mgr.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn pins_share_one_epoch_and_bump_advances() {
        let m = EpochManager::new();
        assert_eq!(m.current(), 0);
        let a = m.pin();
        let b = m.pin();
        assert_eq!((a.epoch(), b.epoch()), (0, 0));
        assert_eq!(m.pinned(), 2);
        drop((a, b));
        assert_eq!(m.bump(), 1);
        assert_eq!(m.pin().epoch(), 1);
    }

    #[test]
    fn update_waits_for_pins_and_blocks_new_ones() {
        let m = Arc::new(EpochManager::new());
        let pin = m.pin();
        let observed = Arc::new(AtomicU64::new(u64::MAX));

        let m2 = Arc::clone(&m);
        let obs2 = Arc::clone(&observed);
        let updater = std::thread::spawn(move || {
            let update = m2.begin_update(); // blocks until the pin drops
            obs2.store(m2.pinned(), Ordering::SeqCst);
            m2.bump();
            drop(update);
        });

        // The updater is parked on our pin; a late reader must see the
        // *post-update* epoch, never epoch 0 mid-mutation.
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(observed.load(Ordering::SeqCst), u64::MAX, "still parked");
        drop(pin);
        let m3 = Arc::clone(&m);
        let reader = std::thread::spawn(move || m3.pin().epoch());
        updater.join().unwrap();
        assert_eq!(observed.load(Ordering::SeqCst), 0, "pins drained first");
        assert_eq!(reader.join().unwrap(), 1, "reader waited out the update");
    }

    #[test]
    fn update_timeout_rolls_back_and_unblocks_pins() {
        let m = EpochManager::new();
        let stuck = m.pin(); // a pin that never drains
        let outcome = m.begin_update_timeout(Duration::from_millis(50));
        assert!(
            matches!(outcome, Err(mssg_types::GraphStorageError::Timeout(_))),
            "pin held; the gate must time out"
        );
        drop(outcome);
        // The failed registration rolled back: new pins proceed and a
        // later (drained) update succeeds.
        let late = m.pin();
        drop((stuck, late));
        let update = m
            .begin_update_timeout(Duration::from_millis(50))
            .expect("no pins held");
        drop(update);
    }
}
