//! The GraphDB service registry: the six storage engines of thesis §4.1
//! behind one constructor.

use graphdb::{ArrayDb, GraphDb, HashMapDb};
use grdb::{GrdbConfig, GrdbGraphDb};
use kvdb::{BdbGraphDb, KvOptions};
use minisql::MySqlGraphDb;
use mssg_types::Result;
use simio::{CachePolicy, IoStats};
use std::path::Path;
use std::sync::Arc;
use streamdb::StreamDb;

/// The six GraphDB backends evaluated in the thesis.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum BackendKind {
    /// Compressed adjacency list (CSR) in memory — §4.1.1.
    Array,
    /// Hash map of adjacency lists in memory — §4.1.2.
    HashMap,
    /// Relational store through the mini-SQL engine — §4.1.3.
    MySql,
    /// B-tree record store with 8 KB chunking — §4.1.4.
    BerkeleyDb,
    /// Append-only scan-everything log — §4.1.5.
    StreamDb,
    /// The multi-level graph database — §4.1.6.
    Grdb,
}

impl BackendKind {
    /// All six kinds, in the order the thesis figures list them.
    pub const ALL: [BackendKind; 6] = [
        BackendKind::Array,
        BackendKind::HashMap,
        BackendKind::MySql,
        BackendKind::BerkeleyDb,
        BackendKind::StreamDb,
        BackendKind::Grdb,
    ];

    /// The five backends of the PubMed-S comparative figures (5.3, 5.4):
    /// both in-memory engines plus MySQL, BerkeleyDB, and grDB.
    pub const FIGURE_FIVE: [BackendKind; 5] = [
        BackendKind::Array,
        BackendKind::HashMap,
        BackendKind::MySql,
        BackendKind::BerkeleyDb,
        BackendKind::Grdb,
    ];

    /// The five backends of the PubMed-L figures (5.5–5.7): the thesis
    /// drops MySQL after Figure 5.4 (it is hopeless at this size) and
    /// brings in StreamDB, whose "unrivaled ingestion performance" and
    /// scan-based search bound the comparison from both sides.
    pub const FIGURE_LARGE: [BackendKind; 5] = [
        BackendKind::Array,
        BackendKind::HashMap,
        BackendKind::BerkeleyDb,
        BackendKind::StreamDb,
        BackendKind::Grdb,
    ];

    /// Display name matching the thesis.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Array => "Array",
            BackendKind::HashMap => "HashMap",
            BackendKind::MySql => "MySQL",
            BackendKind::BerkeleyDb => "BerkeleyDB",
            BackendKind::StreamDb => "StreamDB",
            BackendKind::Grdb => "grDB",
        }
    }

    /// `true` for the disk-backed engines.
    pub fn is_out_of_core(self) -> bool {
        !matches!(self, BackendKind::Array | BackendKind::HashMap)
    }
}

/// Backend tuning shared by the benchmark harness.
#[derive(Clone, Debug)]
pub struct BackendOptions {
    /// Enable the engine's block cache (BerkeleyDB, grDB). The Figure 5.2
    /// experiment turns this off.
    pub cache_enabled: bool,
    /// Cache capacity in blocks/pages when enabled.
    pub cache_capacity: usize,
    /// Cache replacement policy (grDB and the B-tree buffer pool).
    pub cache_policy: CachePolicy,
    /// grDB configuration override (defaults to the thesis geometry).
    pub grdb: Option<GrdbConfig>,
}

impl Default for BackendOptions {
    fn default() -> Self {
        BackendOptions {
            cache_enabled: true,
            cache_capacity: 256,
            cache_policy: CachePolicy::Lru,
            grdb: None,
        }
    }
}

impl BackendOptions {
    /// Options with caches disabled.
    pub fn uncached() -> BackendOptions {
        BackendOptions {
            cache_enabled: false,
            ..Default::default()
        }
    }
}

/// Opens a backend of `kind` rooted at `dir` (a directory for directory
/// engines, a file path component otherwise).
pub fn open_backend(
    kind: BackendKind,
    dir: &Path,
    options: &BackendOptions,
    stats: Arc<IoStats>,
) -> Result<Box<dyn GraphDb + Send>> {
    std::fs::create_dir_all(dir)?;
    let cache = if options.cache_enabled {
        options.cache_capacity
    } else {
        0
    };
    Ok(match kind {
        BackendKind::Array => Box::new(ArrayDb::new()),
        BackendKind::HashMap => Box::new(HashMapDb::new()),
        BackendKind::MySql => Box::new(MySqlGraphDb::open(&dir.join("mysql"), stats)?),
        BackendKind::BerkeleyDb => {
            let kv = KvOptions {
                cache_pages: cache,
                cache_policy: options.cache_policy,
                ..Default::default()
            };
            Box::new(BdbGraphDb::open(&dir.join("bdb.db"), kv, stats)?)
        }
        BackendKind::StreamDb => Box::new(StreamDb::open(&dir.join("stream.log"), stats)?),
        BackendKind::Grdb => {
            let mut cfg = options.grdb.clone().unwrap_or_default();
            cfg.cache_blocks = cache;
            cfg.cache_policy = options.cache_policy;
            Box::new(GrdbGraphDb::open(&dir.join("grdb"), cfg, stats)?)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphdb::GraphDbExt;
    use mssg_types::{Edge, Gid};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("core-backend-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn every_backend_stores_and_reads() {
        for kind in BackendKind::ALL {
            let dir = tmpdir(kind.name());
            let mut db =
                open_backend(kind, &dir, &BackendOptions::default(), IoStats::new()).unwrap();
            db.store_edges(&[Edge::of(1, 2), Edge::of(1, 3)]).unwrap();
            db.flush().unwrap();
            let mut n = db.neighbors(Gid::new(1)).unwrap();
            n.sort_unstable();
            assert_eq!(n, vec![Gid::new(2), Gid::new(3)], "{}", kind.name());
            assert_eq!(db.backend_name(), kind.name());
        }
    }

    #[test]
    fn uncached_backends_work() {
        for kind in [BackendKind::BerkeleyDb, BackendKind::Grdb] {
            let dir = tmpdir(&format!("uncached-{}", kind.name()));
            let mut db =
                open_backend(kind, &dir, &BackendOptions::uncached(), IoStats::new()).unwrap();
            db.store_edges(&[Edge::of(5, 6)]).unwrap();
            assert_eq!(db.neighbors(Gid::new(5)).unwrap(), vec![Gid::new(6)]);
        }
    }

    #[test]
    fn kind_properties() {
        assert!(!BackendKind::Array.is_out_of_core());
        assert!(!BackendKind::HashMap.is_out_of_core());
        assert!(BackendKind::Grdb.is_out_of_core());
        assert_eq!(BackendKind::ALL.len(), 6);
        assert_eq!(BackendKind::FIGURE_FIVE.len(), 5);
    }
}
