//! Parallel out-of-core connected components.
//!
//! The thesis positions MSSG as a framework for the whole family of
//! out-of-core graph analyses — "directed and undirected search, connected
//! components, minimum spanning trees, etc." (chapter 2). BFS is the
//! worked example; this module adds the second classic, demonstrating that
//! the GraphDB/DataCutter substrate supports analyses beyond search.
//!
//! Algorithm: distributed **label propagation** (the hook structure of
//! Hirschberg-style CC, adapted to the storage layout). Every vertex's
//! label starts as its own id and converges to the minimum id in its
//! component:
//!
//! 1. *Registration*: each processor enumerates the vertices stored in its
//!    local GraphDB and reports them to their hash owners, which hold the
//!    label state.
//! 2. Rounds: owners push the labels of recently-changed vertices to
//!    wherever those vertices' adjacency lists live (locally under
//!    vertex-hash declustering; broadcast otherwise), the storage nodes
//!    expand them, and propose `min(label)` to each neighbour's owner.
//! 3. A round with zero label changes anywhere terminates the algorithm.
//!
//! Each phase is barrier-synchronised with per-round DONE markers, like
//! the BFS; early messages from a neighbour already in the next phase are
//! stashed and replayed.

use crate::cluster::{MssgCluster, SharedBackend};
use crate::telemetry::TelemetryReport;
use datacutter::{DataBuffer, Filter, FilterContext, GraphBuilder, OutPort};
use mssg_types::{AdjBuffer, Gid, GraphStorageError, MetaOp, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration for a components run.
#[derive(Clone, Debug)]
pub struct ComponentsOptions {
    /// Safety bound on propagation rounds.
    pub max_rounds: u32,
    /// Per-stream send/recv deadline. The label-propagation rounds block
    /// on per-phase DONE markers from every peer, so a dead filter would
    /// otherwise hang the run forever; with the deadline it surfaces as a
    /// typed `Timeout` error instead. Defaults to 120 s; `None` blocks
    /// indefinitely (classic semantics).
    pub recv_timeout: Option<std::time::Duration>,
}

impl Default for ComponentsOptions {
    fn default() -> Self {
        ComponentsOptions {
            max_rounds: 10_000,
            recv_timeout: Some(std::time::Duration::from_secs(120)),
        }
    }
}

/// Result of a components run.
#[derive(Clone, Debug)]
pub struct ComponentsResult {
    /// Number of connected components.
    pub components: u64,
    /// Vertices in the largest component.
    pub largest: u64,
    /// Total distinct vertices seen.
    pub vertices: u64,
    /// Propagation rounds until convergence.
    pub rounds: u32,
    /// Time, traffic, and per-filter breakdown of the run.
    pub telemetry: TelemetryReport,
    /// Component sizes keyed by the component's minimum vertex id.
    pub sizes: HashMap<u64, u64>,
}

// Message kinds. Tag layout as in bfs.rs: [kind:8][round:32][sender:24].
const K_REGISTER: u64 = 0;
const K_REGISTER_DONE: u64 = 1;
const K_FRONTIER: u64 = 2;
const K_FRONTIER_DONE: u64 = 3;
const K_PROPOSE: u64 = 4;
const K_PROPOSE_DONE: u64 = 5;
const K_APPLIED: u64 = 6;

fn tag(kind: u64, round: u32, sender: usize) -> u64 {
    (kind << 56) | ((round as u64) << 24) | sender as u64
}

fn tag_kind(t: u64) -> u64 {
    t >> 56
}

fn tag_round(t: u64) -> u32 {
    ((t >> 24) & 0xffff_ffff) as u32
}

#[derive(Default)]
struct Outcome {
    sizes: HashMap<u64, u64>,
    rounds: u32,
}

/// Runs connected components over the cluster's stored graph.
pub fn connected_components(
    cluster: &MssgCluster,
    options: &ComponentsOptions,
) -> Result<ComponentsResult> {
    let p = cluster.nodes();
    let io_before = cluster.io_snapshot();
    // Frontier labels can stay local only when storage placement equals
    // the hash placement of label state.
    let storage_is_hash = !cluster.broadcast_fringe() && cluster.owner_map().is_none();
    let outcome = Arc::new(Mutex::new(Outcome::default()));

    let mut g = GraphBuilder::new();
    g.channel_capacity(8192);
    g.telemetry(cluster.telemetry().clone());
    if let Some(t) = options.recv_timeout {
        g.stream_timeout(t);
    }
    let backends: Vec<SharedBackend> = (0..p).map(|i| cluster.backend(i)).collect();
    let outcome2 = Arc::clone(&outcome);
    let max_rounds = options.max_rounds;
    let filter = g.add_filter("components", (0..p).collect(), move |i| {
        Box::new(CcFilter {
            backend: backends[i].clone(),
            storage_is_hash,
            max_rounds,
            outcome: Arc::clone(&outcome2),
        })
    })?;
    g.declare_ports(filter, &["peers"], &["peers"]);
    g.expect_consumers(filter, "peers", p);
    // Registration/propose phases burst at most one record batch per
    // destination plus a DONE marker before draining.
    g.send_window(filter, "peers", 4 * (p as u64 + 1));
    g.connect(filter, "peers", filter, "peers")?;
    let report = g.run()?;

    let out = outcome.lock();
    let components = out.sizes.len() as u64;
    let largest = out.sizes.values().copied().max().unwrap_or(0);
    let vertices = out.sizes.values().sum();
    Ok(ComponentsResult {
        components,
        largest,
        vertices,
        rounds: out.rounds,
        telemetry: cluster.telemetry_report(report, &io_before),
        sizes: out.sizes.clone(),
    })
}

struct CcFilter {
    backend: SharedBackend,
    storage_is_hash: bool,
    max_rounds: u32,
    outcome: Arc<Mutex<Outcome>>,
}

/// Encodes (vertex, label) pairs as interleaved words.
fn encode_pairs(pairs: &[(Gid, u64)]) -> Vec<u64> {
    let mut words = Vec::with_capacity(pairs.len() * 2);
    for &(v, l) in pairs {
        words.push(v.raw());
        words.push(l);
    }
    words
}

fn decode_pairs(buf: &DataBuffer) -> Result<Vec<(Gid, u64)>> {
    let words = buf.words();
    if !words.len().is_multiple_of(2) {
        return Err(GraphStorageError::corrupt("odd pair payload"));
    }
    Ok(words
        .chunks_exact(2)
        .map(|c| (Gid::from_raw(c[0]), c[1]))
        .collect())
}

fn send_pairs(
    port: &mut OutPort,
    target: Option<usize>,
    kind: u64,
    round: u32,
    me: usize,
    pairs: &[(Gid, u64)],
) -> Result<()> {
    let buf = DataBuffer::from_words(tag(kind, round, me), &encode_pairs(pairs));
    match target {
        Some(t) => quiet(port.send_to(t, buf)),
        None => {
            for copy in 0..port.consumers() {
                quiet(port.send_to(copy, buf.clone()))?;
            }
            Ok(())
        }
    }
}

fn quiet(r: Result<()>) -> Result<()> {
    match r {
        Err(GraphStorageError::Unsupported(m)) if m.contains("hung up") => Ok(()),
        other => other,
    }
}

/// Blocks until `p` DONE markers of `(done_kind, round)` have arrived,
/// handing every data message to `on_data` and stashing anything that
/// belongs to a later phase. Returns the sum of the DONE payloads.
#[allow(clippy::too_many_arguments)]
fn await_phase(
    ctx: &mut FilterContext,
    stash: &mut Vec<DataBuffer>,
    p: usize,
    data_kind: u64,
    done_kind: u64,
    round: u32,
    on_data: &mut dyn FnMut(&DataBuffer) -> Result<()>,
) -> Result<u64> {
    let mut done = 0usize;
    let mut sum = 0u64;
    // Replay stashed messages that belong to this phase.
    let mut i = 0;
    while i < stash.len() {
        let t = stash[i].tag;
        if tag_round(t) == round && (tag_kind(t) == data_kind || tag_kind(t) == done_kind) {
            let msg = stash.remove(i);
            if tag_kind(msg.tag) == done_kind {
                done += 1;
                sum += msg.words().first().copied().unwrap_or(0);
            } else {
                on_data(&msg)?;
            }
        } else {
            i += 1;
        }
    }
    while done < p {
        let Some(msg) = ctx.input("peers")?.recv()? else {
            return Err(GraphStorageError::Unsupported(
                "peer exited before components converged".into(),
            ));
        };
        let k = tag_kind(msg.tag);
        let r = tag_round(msg.tag);
        if r == round && k == data_kind {
            on_data(&msg)?;
        } else if r == round && k == done_kind {
            done += 1;
            sum += msg.words().first().copied().unwrap_or(0);
        } else {
            stash.push(msg);
        }
    }
    Ok(sum)
}

impl Filter for CcFilter {
    fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
        let me = ctx.copy_index;
        let p = ctx.copies;
        let hash_owner = |v: Gid| (v.raw() % p as u64) as usize;
        let mut stash: Vec<DataBuffer> = Vec::new();

        // ---- registration ----
        let local = {
            let mut db = self.backend.lock();
            db.local_vertices()?
        };
        {
            let mut per_owner: Vec<Vec<(Gid, u64)>> = vec![Vec::new(); p];
            for v in local {
                per_owner[hash_owner(v)].push((v, v.raw()));
            }
            let port = ctx.output("peers")?;
            for (owner, pairs) in per_owner.iter().enumerate() {
                if !pairs.is_empty() {
                    send_pairs(port, Some(owner), K_REGISTER, 0, me, pairs)?;
                }
            }
            quiet(port.broadcast(DataBuffer::from_words(tag(K_REGISTER_DONE, 0, me), &[0])))?;
        }
        // Labels of the vertices this processor owns (hash placement).
        let mut labels: HashMap<Gid, u64> = HashMap::new();
        await_phase(
            ctx,
            &mut stash,
            p,
            K_REGISTER,
            K_REGISTER_DONE,
            0,
            &mut |msg| {
                for (v, _) in decode_pairs(msg)? {
                    labels.entry(v).or_insert(v.raw());
                }
                Ok(())
            },
        )?;

        // ---- propagation rounds ----
        let mut frontier: Vec<(Gid, u64)> = labels.iter().map(|(&v, &l)| (v, l)).collect();
        let mut rounds = 0u32;
        let mut adj = AdjBuffer::new();
        for round in 1..=self.max_rounds {
            rounds = round;
            // Phase A: distribute the frontier to wherever adjacency lives.
            let mut to_expand: Vec<(Gid, u64)> = Vec::new();
            if self.storage_is_hash {
                // Owner stores the adjacency too: expand locally.
                to_expand.append(&mut frontier);
                // Still need the barrier so rounds stay aligned.
                let port = ctx.output("peers")?;
                quiet(port.broadcast(DataBuffer::from_words(
                    tag(K_FRONTIER_DONE, round, me),
                    &[0],
                )))?;
            } else {
                let port = ctx.output("peers")?;
                send_pairs(port, None, K_FRONTIER, round, me, &frontier)?;
                frontier.clear();
                quiet(port.broadcast(DataBuffer::from_words(
                    tag(K_FRONTIER_DONE, round, me),
                    &[0],
                )))?;
            }
            await_phase(
                ctx,
                &mut stash,
                p,
                K_FRONTIER,
                K_FRONTIER_DONE,
                round,
                &mut |msg| {
                    to_expand.extend(decode_pairs(msg)?);
                    Ok(())
                },
            )?;

            // Phase B: expand against local storage and propose labels.
            let mut proposals: Vec<Vec<(Gid, u64)>> = vec![Vec::new(); p];
            {
                let mut db = self.backend.lock();
                for (v, lbl) in &to_expand {
                    adj.clear();
                    db.adjacency(*v, &mut adj, 0, MetaOp::Ignore)?;
                    for &u in adj.as_slice() {
                        // label[u] starts at u and only decreases, so a
                        // proposal ≥ u can never win — skip it at the source.
                        if *lbl < u.raw() {
                            proposals[hash_owner(u)].push((u, *lbl));
                        }
                    }
                }
            }
            let mut sent = 0u64;
            {
                let port = ctx.output("peers")?;
                for (owner, pairs) in proposals.iter().enumerate() {
                    if !pairs.is_empty() {
                        sent += pairs.len() as u64;
                        send_pairs(port, Some(owner), K_PROPOSE, round, me, pairs)?;
                    }
                }
                quiet(port.broadcast(DataBuffer::from_words(
                    tag(K_PROPOSE_DONE, round, me),
                    &[sent],
                )))?;
            }
            let mut changed: HashMap<Gid, u64> = HashMap::new();
            await_phase(
                ctx,
                &mut stash,
                p,
                K_PROPOSE,
                K_PROPOSE_DONE,
                round,
                &mut |msg| {
                    for (u, lbl) in decode_pairs(msg)? {
                        let entry = labels.entry(u).or_insert(u.raw());
                        if lbl < *entry {
                            *entry = lbl;
                            changed.insert(u, lbl);
                        }
                    }
                    Ok(())
                },
            )?;

            // Phase C: agree on global progress.
            let my_changed = changed.len() as u64;
            {
                let port = ctx.output("peers")?;
                quiet(port.broadcast(DataBuffer::from_words(
                    tag(K_APPLIED, round, me),
                    &[my_changed],
                )))?;
            }
            let global_changed = await_phase(
                ctx,
                &mut stash,
                p,
                u64::MAX, // no data messages in this phase
                K_APPLIED,
                round,
                &mut |_| Ok(()),
            )?;
            frontier = changed.into_iter().collect();
            if global_changed == 0 {
                break;
            }
        }

        // ---- aggregate ----
        let mut out = self.outcome.lock();
        for (_, &label) in labels.iter() {
            *out.sizes.entry(label).or_insert(0) += 1;
        }
        out.rounds = out.rounds.max(rounds);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendKind, BackendOptions};
    use crate::ingest::{ingest, DeclusterKind, IngestOptions};
    use mssg_types::Edge;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("core-cc-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn run_cc(
        tag: &str,
        nodes: usize,
        kind: BackendKind,
        edges: Vec<Edge>,
        decl: DeclusterKind,
    ) -> ComponentsResult {
        let dir = tmpdir(tag);
        let mut cluster = MssgCluster::new(&dir, nodes, kind, &BackendOptions::default()).unwrap();
        ingest(
            &mut cluster,
            edges.into_iter(),
            &IngestOptions {
                declustering: decl,
                ..Default::default()
            },
        )
        .unwrap();
        connected_components(&cluster, &ComponentsOptions::default()).unwrap()
    }

    #[test]
    fn single_path_is_one_component() {
        let edges: Vec<Edge> = (0..10).map(|i| Edge::of(i, i + 1)).collect();
        let r = run_cc(
            "path",
            3,
            BackendKind::HashMap,
            edges,
            DeclusterKind::VertexHash,
        );
        assert_eq!(r.components, 1);
        assert_eq!(r.vertices, 11);
        assert_eq!(r.largest, 11);
        assert_eq!(r.sizes.get(&0), Some(&11));
    }

    #[test]
    fn disjoint_components_counted() {
        // Three components: {0..=3}, {10,11}, {20,21,22}.
        let mut edges = vec![Edge::of(0, 1), Edge::of(1, 2), Edge::of(2, 3)];
        edges.push(Edge::of(10, 11));
        edges.extend([Edge::of(20, 21), Edge::of(21, 22)]);
        let r = run_cc(
            "disjoint",
            4,
            BackendKind::HashMap,
            edges,
            DeclusterKind::VertexHash,
        );
        assert_eq!(r.components, 3);
        assert_eq!(r.vertices, 9);
        assert_eq!(r.largest, 4);
        assert_eq!(r.sizes.get(&0), Some(&4));
        assert_eq!(r.sizes.get(&10), Some(&2));
        assert_eq!(r.sizes.get(&20), Some(&3));
    }

    #[test]
    fn all_declusterings_agree() {
        let mut x = 17u64;
        let mut edges = Vec::new();
        for _ in 0..300 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            edges.push(Edge::of(x % 40, (x >> 16) % 40));
        }
        let mut results = Vec::new();
        for (i, decl) in [
            DeclusterKind::VertexHash,
            DeclusterKind::VertexRoundRobin,
            DeclusterKind::EdgeRoundRobin,
        ]
        .into_iter()
        .enumerate()
        {
            let r = run_cc(
                &format!("agree-{i}"),
                3,
                BackendKind::HashMap,
                edges.clone(),
                decl,
            );
            results.push((r.components, r.vertices, r.largest));
        }
        assert_eq!(results[0], results[1]);
        assert_eq!(results[0], results[2]);
    }

    #[test]
    fn matches_union_find_oracle() {
        let mut x = 23u64;
        let mut edges = Vec::new();
        for _ in 0..120 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Sparse so several components exist.
            edges.push(Edge::of(x % 100, (x >> 16) % 100));
        }
        // Union-find oracle.
        let mut parent: Vec<usize> = (0..100).collect();
        fn find(parent: &mut Vec<usize>, a: usize) -> usize {
            if parent[a] != a {
                let root = find(parent, parent[a]);
                parent[a] = root;
            }
            parent[a]
        }
        let mut seen = std::collections::HashSet::new();
        for e in &edges {
            let (a, b) = (e.src.raw() as usize, e.dst.raw() as usize);
            seen.insert(a);
            seen.insert(b);
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra.max(rb)] = ra.min(rb);
            }
        }
        let roots: std::collections::HashSet<usize> =
            seen.iter().map(|&v| find(&mut parent, v)).collect();

        let r = run_cc(
            "oracle",
            4,
            BackendKind::Grdb,
            edges,
            DeclusterKind::VertexHash,
        );
        assert_eq!(r.components as usize, roots.len());
        assert_eq!(r.vertices as usize, seen.len());
    }

    #[test]
    fn works_on_every_backend() {
        let edges = vec![Edge::of(0, 1), Edge::of(2, 3), Edge::of(3, 4)];
        for kind in BackendKind::ALL {
            let r = run_cc(
                &format!("backend-{}", kind.name()),
                2,
                kind,
                edges.clone(),
                DeclusterKind::VertexHash,
            );
            assert_eq!(r.components, 2, "{}", kind.name());
            assert_eq!(r.largest, 3, "{}", kind.name());
        }
    }

    #[test]
    fn single_node_cluster() {
        let edges: Vec<Edge> = (0..6).map(|i| Edge::of(i, (i + 1) % 6)).collect();
        let r = run_cc(
            "single",
            1,
            BackendKind::HashMap,
            edges,
            DeclusterKind::VertexHash,
        );
        assert_eq!(r.components, 1);
        assert_eq!(r.vertices, 6);
    }
}
