//! Unified per-run telemetry: one report type folding wall-clock time,
//! disk traffic ([`IoSnapshot`]), message traffic ([`NetSnapshot`]),
//! per-filter-copy time breakdowns, and the metrics-registry snapshot.
//!
//! Every service run (ingestion, BFS, components, MSF, degrees) returns
//! one of these instead of an ad-hoc `(elapsed, net, io)` tuple, so
//! experiment drivers can print, diff, and merge observations uniformly.

use datacutter::{FaultEvent, FilterTiming, NetSnapshot, RestartEvent, RunReport};
use mssg_obs::MetricsSnapshot;
use simio::IoSnapshot;
use std::fmt;
use std::time::Duration;

/// Everything observable about one pipeline run.
#[derive(Clone, Debug, Default)]
pub struct TelemetryReport {
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Disk traffic during the run (all nodes merged).
    pub io: IoSnapshot,
    /// Message traffic during the run.
    pub net: NetSnapshot,
    /// Per-filter-copy busy/blocked breakdown.
    pub filters: Vec<FilterTiming>,
    /// Metrics-registry snapshot (queue depths, service counters, …).
    /// Empty unless the run was handed an enabled
    /// [`Telemetry`](mssg_obs::Telemetry).
    pub metrics: MetricsSnapshot,
    /// Supervised filter-copy restarts that occurred during the run
    /// (empty in a healthy or unsupervised run).
    pub restarts: Vec<RestartEvent>,
    /// Injected faults that fired during the run (chaos testing only).
    pub faults: Vec<FaultEvent>,
}

impl TelemetryReport {
    /// Folds a substrate [`RunReport`] with the run's disk-I/O delta and
    /// metrics snapshot.
    pub fn from_run(run: RunReport, io: IoSnapshot, metrics: MetricsSnapshot) -> TelemetryReport {
        TelemetryReport {
            elapsed: run.elapsed,
            io,
            net: run.net,
            filters: run.filters,
            metrics,
            restarts: run.restarts,
            faults: run.faults,
        }
    }

    /// Breakdown rows for the filter named `name`, across its copies.
    pub fn filter(&self, name: &str) -> Vec<&FilterTiming> {
        self.filters.iter().filter(|t| t.filter == name).collect()
    }

    /// Total busy time across all filter copies (the run's aggregate
    /// compute, excluding time parked on channels).
    pub fn total_busy(&self) -> Duration {
        self.filters.iter().map(FilterTiming::busy).sum()
    }
}

impl fmt::Display for TelemetryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "elapsed: {:?}", self.elapsed)?;
        writeln!(f, "io:  {}", self.io)?;
        writeln!(f, "net: {}", self.net)?;
        for t in &self.filters {
            writeln!(
                f,
                "filter {}[{}]@node{}: total={:?} busy={:?} \
                 blocked_recv={:?} blocked_send={:?}",
                t.filter,
                t.copy,
                t.node,
                t.total,
                t.busy(),
                t.blocked_recv,
                t.blocked_send
            )?;
        }
        for r in &self.restarts {
            writeln!(
                f,
                "restart {}[{}] attempt {}: {}",
                r.filter, r.copy, r.attempt, r.cause
            )?;
        }
        for e in &self.faults {
            writeln!(
                f,
                "fault {}[{}] at op {}: {}",
                e.filter, e.copy, e.at_op, e.kind
            )?;
        }
        if !self.metrics.is_empty() {
            write!(f, "{}", self.metrics)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_run_carries_all_parts() {
        let run = RunReport {
            elapsed: Duration::from_millis(5),
            net: NetSnapshot {
                local_msgs: 2,
                ..Default::default()
            },
            filters: vec![FilterTiming {
                filter: "f".into(),
                copy: 0,
                node: 3,
                total: Duration::from_millis(4),
                blocked_recv: Duration::from_millis(1),
                blocked_send: Duration::from_millis(1),
            }],
            restarts: vec![RestartEvent {
                filter: "f".into(),
                copy: 0,
                attempt: 1,
                cause: "injected".into(),
            }],
            faults: Vec::new(),
        };
        let report = TelemetryReport::from_run(
            run,
            IoSnapshot {
                block_reads: 7,
                ..Default::default()
            },
            MetricsSnapshot::default(),
        );
        assert_eq!(report.elapsed, Duration::from_millis(5));
        assert_eq!(report.io.block_reads, 7);
        assert_eq!(report.net.local_msgs, 2);
        assert_eq!(report.filter("f").len(), 1);
        assert_eq!(report.total_busy(), Duration::from_millis(2));
        assert!(report.filter("missing").is_empty());
        assert_eq!(report.restarts.len(), 1);
        assert!(report.to_string().contains("restart f[0] attempt 1"));
    }

    #[test]
    fn display_lists_every_section() {
        let mut report = TelemetryReport::default();
        report.filters.push(FilterTiming {
            filter: "ingest".into(),
            copy: 1,
            node: 2,
            total: Duration::from_secs(1),
            blocked_recv: Duration::ZERO,
            blocked_send: Duration::ZERO,
        });
        let s = report.to_string();
        assert!(s.contains("elapsed:"), "{s}");
        assert!(s.contains("io:"), "{s}");
        assert!(s.contains("net:"), "{s}");
        assert!(s.contains("ingest[1]@node2"), "{s}");
    }
}
