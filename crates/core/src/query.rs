//! The Query service (thesis §3.3).
//!
//! "All implemented data analysis techniques are registered with the system
//! and can be queried by the user." [`QueryService`] is that registry: a
//! named table of analyses, each a function from a parameter struct to a
//! serialisable result. BFS relationship analysis (§4.2) is pre-registered;
//! applications add their own with [`QueryService::register`].

use crate::bfs::{bfs, BfsOptions, SearchMetrics};
use crate::cluster::MssgCluster;
use crate::components::{connected_components, ComponentsOptions};
use crate::degrees::degree_distribution;
use crate::msf::minimum_spanning_forest;
use mssg_types::{Gid, GraphStorageError, Result};
use std::collections::{BTreeMap, BTreeSet};

/// Parameters of a registered analysis, as key/value strings (the thin
/// waist a user-facing front end would marshal into).
pub type QueryParams = BTreeMap<String, String>;

/// A registered analysis.
pub type Analysis = Box<dyn Fn(&MssgCluster, &QueryParams) -> Result<String> + Send + Sync>;

/// The analysis registry.
pub struct QueryService {
    analyses: BTreeMap<String, Analysis>,
}

impl QueryService {
    /// A service with the built-in analyses registered: `bfs` (path search)
    /// and `degree` (local degree lookup).
    pub fn new() -> QueryService {
        let mut svc = QueryService {
            analyses: BTreeMap::new(),
        };
        svc.register("bfs", Box::new(run_bfs_analysis));
        svc.register("components", Box::new(run_components_analysis));
        svc.register("degree", Box::new(run_degree_analysis));
        svc.register("degree_distribution", Box::new(run_degree_distribution));
        svc.register("khop", Box::new(run_khop_analysis));
        svc.register("msf", Box::new(run_msf_analysis));
        svc
    }

    /// Registers (or replaces) an analysis under `name`.
    pub fn register(&mut self, name: &str, analysis: Analysis) {
        self.analyses.insert(name.to_string(), analysis);
    }

    /// Names of the registered analyses.
    pub fn registered(&self) -> Vec<&str> {
        self.analyses.keys().map(String::as_str).collect()
    }

    /// Runs the analysis `name` with `params` against `cluster`.
    pub fn run(&self, cluster: &MssgCluster, name: &str, params: &QueryParams) -> Result<String> {
        let analysis = self.analyses.get(name).ok_or_else(|| {
            GraphStorageError::Query(format!(
                "no analysis {name:?} registered (have: {:?})",
                self.registered()
            ))
        })?;
        analysis(cluster, params)
    }

    /// Runs the analysis `name` pinned to the cluster's current epoch:
    /// the graph cannot advance past a checkpoint boundary while the
    /// analysis executes, so everything it reads belongs to the returned
    /// epoch. This is the hook `mssg-serve` stamps its responses (and
    /// keys its result cache) with.
    pub fn run_pinned(
        &self,
        cluster: &MssgCluster,
        name: &str,
        params: &QueryParams,
    ) -> Result<(u64, String)> {
        let pin = cluster.epoch_manager().pin();
        let out = self.run(cluster, name, params)?;
        Ok((pin.epoch(), out))
    }

    /// Convenience: runs a BFS directly, returning the metrics.
    pub fn bfs(
        &self,
        cluster: &MssgCluster,
        source: Gid,
        dest: Gid,
        options: &BfsOptions,
    ) -> Result<SearchMetrics> {
        bfs(cluster, source, dest, options)
    }
}

impl Default for QueryService {
    fn default() -> Self {
        QueryService::new()
    }
}

fn param_u64(params: &QueryParams, key: &str) -> Result<u64> {
    params
        .get(key)
        .ok_or_else(|| GraphStorageError::Query(format!("missing parameter {key:?}")))?
        .parse()
        .map_err(|_| GraphStorageError::Query(format!("parameter {key:?} is not an integer")))
}

/// Result of a [`k_hop`] neighborhood expansion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KHopResult {
    /// The expansion source.
    pub source: Gid,
    /// The hop bound the expansion ran to.
    pub k: u32,
    /// Every vertex within `k` hops of `source` (source included),
    /// ascending. A source absent from the graph has no neighbours, so
    /// the result is just `[source]`.
    pub vertices: Vec<Gid>,
    /// Directed adjacency entries scanned during the expansion.
    pub edges_scanned: u64,
}

/// The k-hop neighborhood of `source`: every vertex reachable in at most
/// `k` hops. Runs a synchronous frontier expansion on the front end,
/// asking *every* back-end for each fringe vertex's adjacency — correct
/// under all three declustering strategies (an edge-granularity ingestion
/// scatters a vertex's list across nodes, so the union is required).
pub fn k_hop(cluster: &MssgCluster, source: Gid, k: u32) -> Result<KHopResult> {
    use graphdb::GraphDbExt;
    let mut seen: BTreeSet<Gid> = BTreeSet::new();
    seen.insert(source);
    let mut fringe: Vec<Gid> = vec![source];
    let mut edges_scanned = 0u64;
    for _ in 0..k {
        let mut next = Vec::new();
        for &v in &fringe {
            for node in 0..cluster.nodes() {
                let adj = cluster.with_backend(node, |db| db.neighbors(v))?;
                edges_scanned += adj.len() as u64;
                for n in adj {
                    if seen.insert(n) {
                        next.push(n);
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        fringe = next;
    }
    Ok(KHopResult {
        source,
        k,
        vertices: seen.into_iter().collect(),
        edges_scanned,
    })
}

fn run_khop_analysis(cluster: &MssgCluster, params: &QueryParams) -> Result<String> {
    let source = Gid::new(param_u64(params, "source")?);
    let k = param_u64(params, "k")? as u32;
    let r = k_hop(cluster, source, k)?;
    Ok(format!(
        "vertices={} edges_scanned={}",
        r.vertices.len(),
        r.edges_scanned
    ))
}

fn run_bfs_analysis(cluster: &MssgCluster, params: &QueryParams) -> Result<String> {
    let source = Gid::new(param_u64(params, "source")?);
    let dest = Gid::new(param_u64(params, "dest")?);
    let metrics = bfs(cluster, source, dest, &BfsOptions::default())?;
    Ok(match metrics.path_length {
        Some(len) => format!(
            "path_length={len} rounds={} edges_scanned={}",
            metrics.rounds, metrics.edges_scanned
        ),
        None => "unreachable".to_string(),
    })
}

fn run_components_analysis(cluster: &MssgCluster, _params: &QueryParams) -> Result<String> {
    let r = connected_components(cluster, &ComponentsOptions::default())?;
    Ok(format!(
        "components={} vertices={} largest={} rounds={}",
        r.components, r.vertices, r.largest, r.rounds
    ))
}

fn run_degree_distribution(cluster: &MssgCluster, _params: &QueryParams) -> Result<String> {
    let r = degree_distribution(cluster)?;
    Ok(format!(
        "vertices={} max_degree={} avg_degree={:.2} powerlaw={}",
        r.vertices,
        r.max_degree,
        r.avg_degree,
        r.powerlaw_exponent
            .map_or("n/a".to_string(), |b| format!("{b:.2}"))
    ))
}

fn run_msf_analysis(cluster: &MssgCluster, _params: &QueryParams) -> Result<String> {
    let r = minimum_spanning_forest(cluster)?;
    Ok(format!(
        "forest_edges={} total_weight={} components={} rounds={}",
        r.edges.len(),
        r.total_weight,
        r.components,
        r.rounds
    ))
}

fn run_degree_analysis(cluster: &MssgCluster, params: &QueryParams) -> Result<String> {
    use graphdb::GraphDbExt;
    let v = Gid::new(param_u64(params, "vertex")?);
    let mut total = 0usize;
    for i in 0..cluster.nodes() {
        total += cluster.with_backend(i, |db| db.degree(v))?;
    }
    Ok(format!("degree={total}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendKind, BackendOptions};
    use crate::ingest::{ingest, IngestOptions};
    use mssg_types::Edge;

    fn cluster(tag: &str) -> MssgCluster {
        let dir = std::env::temp_dir().join(format!("core-query-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        let edges: Vec<Edge> = (0..10).map(|i| Edge::of(i, i + 1)).collect();
        ingest(&mut c, edges.into_iter(), &IngestOptions::default()).unwrap();
        c
    }

    fn params(pairs: &[(&str, &str)]) -> QueryParams {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn builtins_registered() {
        let svc = QueryService::new();
        assert_eq!(
            svc.registered(),
            vec![
                "bfs",
                "components",
                "degree",
                "degree_distribution",
                "khop",
                "msf"
            ]
        );
    }

    #[test]
    fn components_analysis_by_name() {
        let c = cluster("components");
        let svc = QueryService::new();
        let out = svc.run(&c, "components", &params(&[])).unwrap();
        assert!(out.contains("components=1"), "{out}");
        assert!(out.contains("vertices=11"), "{out}");
    }

    #[test]
    fn bfs_analysis_by_name() {
        let c = cluster("bfs");
        let svc = QueryService::new();
        let out = svc
            .run(&c, "bfs", &params(&[("source", "0"), ("dest", "4")]))
            .unwrap();
        assert!(out.contains("path_length=4"), "{out}");
    }

    #[test]
    fn bfs_analysis_unreachable() {
        let c = cluster("unreach");
        let svc = QueryService::new();
        let out = svc
            .run(&c, "bfs", &params(&[("source", "0"), ("dest", "5000")]))
            .unwrap();
        assert_eq!(out, "unreachable");
    }

    #[test]
    fn degree_distribution_analysis() {
        let c = cluster("degdist");
        let svc = QueryService::new();
        let out = svc.run(&c, "degree_distribution", &params(&[])).unwrap();
        assert!(out.contains("vertices=11"), "{out}");
        assert!(out.contains("max_degree=2"), "{out}");
    }

    #[test]
    fn msf_analysis_by_name() {
        let c = cluster("msf");
        let svc = QueryService::new();
        let out = svc.run(&c, "msf", &params(&[])).unwrap();
        assert!(out.contains("forest_edges=10"), "{out}");
        assert!(out.contains("components=1"), "{out}");
    }

    #[test]
    fn degree_analysis() {
        let c = cluster("deg");
        let svc = QueryService::new();
        let out = svc.run(&c, "degree", &params(&[("vertex", "5")])).unwrap();
        assert_eq!(out, "degree=2");
    }

    #[test]
    fn unknown_analysis_and_bad_params() {
        let c = cluster("err");
        let svc = QueryService::new();
        assert!(svc.run(&c, "pagerank", &params(&[])).is_err());
        assert!(svc.run(&c, "bfs", &params(&[("source", "0")])).is_err());
        assert!(svc
            .run(&c, "bfs", &params(&[("source", "x"), ("dest", "1")]))
            .is_err());
    }

    #[test]
    fn khop_expands_the_chain() {
        let c = cluster("khop");
        // Chain 0–1–…–10: 2 hops from vertex 5 reach {3,4,5,6,7}.
        let r = k_hop(&c, Gid::new(5), 2).unwrap();
        assert_eq!(
            r.vertices,
            (3..=7).map(Gid::new).collect::<Vec<_>>(),
            "sorted 2-hop ball around 5"
        );
        assert!(r.edges_scanned > 0);
        let out = QueryService::new()
            .run(&c, "khop", &params(&[("source", "5"), ("k", "2")]))
            .unwrap();
        assert!(out.contains("vertices=5"), "{out}");
    }

    #[test]
    fn khop_from_absent_vertex_is_just_the_source() {
        let c = cluster("khop-absent");
        let r = k_hop(&c, Gid::new(9999), 3).unwrap();
        assert_eq!(r.vertices, vec![Gid::new(9999)]);
        assert_eq!(r.edges_scanned, 0, "an absent vertex has no adjacency");
        // k = 0 never expands, present or not.
        let r0 = k_hop(&c, Gid::new(5), 0).unwrap();
        assert_eq!(r0.vertices, vec![Gid::new(5)]);
    }

    #[test]
    fn bfs_on_an_empty_epoch_is_unreachable_not_an_error() {
        // A cluster before its first ingestion: epoch 0, no edges at all.
        let dir = std::env::temp_dir().join(format!("core-query-empty-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c =
            MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default()).unwrap();
        assert_eq!(c.epoch(), 0);
        let svc = QueryService::new();
        let out = svc
            .run(&c, "bfs", &params(&[("source", "0"), ("dest", "1")]))
            .unwrap();
        assert_eq!(out, "unreachable");
        let r = k_hop(&c, Gid::new(0), 4).unwrap();
        assert_eq!(r.vertices, vec![Gid::new(0)]);
    }

    #[test]
    fn run_pinned_stamps_the_ingestion_epoch() {
        let c = cluster("epoch"); // one ingest() call = one checkpoint boundary
        let svc = QueryService::new();
        let (epoch, out) = svc
            .run_pinned(&c, "degree", &params(&[("vertex", "5")]))
            .unwrap();
        assert_eq!(epoch, 1, "the seed ingestion bumped epoch 0 -> 1");
        assert_eq!(out, "degree=2");
        assert_eq!(c.epoch_manager().pinned(), 0, "pin released");
    }

    #[test]
    fn custom_analysis_registration() {
        let c = cluster("custom");
        let mut svc = QueryService::new();
        svc.register(
            "node_count",
            Box::new(|cluster, _| Ok(format!("nodes={}", cluster.nodes()))),
        );
        assert_eq!(svc.run(&c, "node_count", &params(&[])).unwrap(), "nodes=2");
    }
}
