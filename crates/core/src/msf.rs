//! Parallel out-of-core minimum spanning forest (Borůvka).
//!
//! The thesis names "minimum spanning trees" alongside search and
//! connected components as the out-of-core algorithm family MSSG exists to
//! host (chapter 2). This module implements distributed Borůvka over the
//! same substrate the other analyses use:
//!
//! - Edge weights: MSSG stores untyped, unweighted edges, so weights come
//!   from a deterministic symmetric hash of the endpoints
//!   ([`edge_weight`]) — every processor computes the same weight without
//!   communication. (Applications with real weights would store them as
//!   edge attributes; the algorithm is weight-source-agnostic.)
//! - Each round, every processor scans its local partition for the
//!   minimum-weight edge leaving each component and sends the candidates
//!   to the component's hash owner; owners pick global winners and
//!   broadcast them; every processor applies the same winner set to a
//!   replicated union-by-minimum structure, so component labels stay
//!   identical everywhere without further messages.
//! - A round with no winners terminates; Borůvka needs O(log V) rounds.
//!
//! Ties are broken lexicographically on `(weight, u, v)`, making the
//! forest unique and testable against a sequential Kruskal oracle.

use crate::cluster::{MssgCluster, SharedBackend};
use crate::telemetry::TelemetryReport;
use datacutter::{DataBuffer, Filter, FilterContext, GraphBuilder, OutPort};
use mssg_types::{AdjBuffer, Edge, Gid, GraphStorageError, MetaOp, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Deterministic symmetric edge weight: a 64-bit mix of the unordered
/// endpoint pair (SplitMix64 finalizer).
pub fn edge_weight(a: Gid, b: Gid) -> u64 {
    let (lo, hi) = if a <= b {
        (a.raw(), b.raw())
    } else {
        (b.raw(), a.raw())
    };
    let mut z = lo
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(hi.rotate_left(31))
        .wrapping_add(0x85eb_ca6b_c2b2_ae35);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Result of a minimum-spanning-forest run.
#[derive(Clone, Debug)]
pub struct MsfResult {
    /// The forest's edges (one per merge; `V - components` in total).
    pub edges: Vec<Edge>,
    /// Sum of the forest's edge weights.
    pub total_weight: u128,
    /// Number of trees in the forest (= connected components).
    pub components: u64,
    /// Distinct vertices.
    pub vertices: u64,
    /// Borůvka rounds executed.
    pub rounds: u32,
    /// Time, traffic, and per-filter breakdown of the run.
    pub telemetry: TelemetryReport,
}

// Message kinds: [kind:8][round:32][sender:24], as in the other analyses.
const K_REGISTER: u64 = 0;
const K_REGISTER_DONE: u64 = 1;
const K_CANDIDATE: u64 = 2;
const K_CANDIDATE_DONE: u64 = 3;
const K_WINNER: u64 = 4;
const K_WINNER_DONE: u64 = 5;

fn tag(kind: u64, round: u32, sender: usize) -> u64 {
    (kind << 56) | ((round as u64) << 24) | sender as u64
}

fn tag_kind(t: u64) -> u64 {
    t >> 56
}

fn tag_round(t: u64) -> u32 {
    ((t >> 24) & 0xffff_ffff) as u32
}

/// Union-find with union-by-minimum: the root of every set is its smallest
/// element, so the final partition (and every label) is independent of the
/// order unions are applied in — the property that lets each processor
/// apply the winner set independently.
#[derive(Default)]
struct MinUnionFind {
    parent: HashMap<u64, u64>,
}

impl MinUnionFind {
    fn insert(&mut self, v: u64) {
        self.parent.entry(v).or_insert(v);
    }

    fn find(&mut self, v: u64) -> u64 {
        let p = *self.parent.get(&v).unwrap_or(&v);
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent.insert(v, root);
        root
    }

    /// Unions the sets of `a` and `b`; the smaller root wins.
    fn union(&mut self, a: u64, b: u64) {
        self.insert(a);
        self.insert(b);
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (small, large) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(large, small);
    }
}

#[derive(Default)]
struct Outcome {
    edges: Vec<Edge>,
    total_weight: u128,
    vertices: u64,
    components: u64,
    rounds: u32,
    filled: bool,
}

/// Computes the minimum spanning forest of the stored graph.
pub fn minimum_spanning_forest(cluster: &MssgCluster) -> Result<MsfResult> {
    let p = cluster.nodes();
    let io_before = cluster.io_snapshot();
    let outcome = Arc::new(Mutex::new(Outcome::default()));
    let mut g = GraphBuilder::new();
    g.channel_capacity(8192);
    g.telemetry(cluster.telemetry().clone());
    // Borůvka rounds barrier on DONE markers from every peer; a dead
    // filter must surface as a typed Timeout rather than a hang.
    g.stream_timeout(std::time::Duration::from_secs(120));
    let backends: Vec<SharedBackend> = (0..p).map(|i| cluster.backend(i)).collect();
    let outcome2 = Arc::clone(&outcome);
    let filter = g.add_filter("msf", (0..p).collect(), move |i| {
        Box::new(MsfFilter {
            backend: backends[i].clone(),
            outcome: Arc::clone(&outcome2),
        })
    })?;
    g.declare_ports(filter, &["peers"], &["peers"]);
    g.expect_consumers(filter, "peers", p);
    // Candidate/winner phases burst at most one record batch per
    // destination plus a DONE marker before draining.
    g.send_window(filter, "peers", 4 * (p as u64 + 1));
    g.connect(filter, "peers", filter, "peers")?;
    let report = g.run()?;
    let out = outcome.lock();
    Ok(MsfResult {
        edges: out.edges.clone(),
        total_weight: out.total_weight,
        components: out.components,
        vertices: out.vertices,
        rounds: out.rounds,
        telemetry: cluster.telemetry_report(report, &io_before),
    })
}

struct MsfFilter {
    backend: SharedBackend,
    outcome: Arc<Mutex<Outcome>>,
}

/// A candidate/winner record on the wire: (component, weight, u, v).
fn encode_records(records: &[(u64, u64, Gid, Gid)]) -> Vec<u64> {
    let mut words = Vec::with_capacity(records.len() * 4);
    for &(c, w, u, v) in records {
        words.extend_from_slice(&[c, w, u.raw(), v.raw()]);
    }
    words
}

fn decode_records(buf: &DataBuffer) -> Result<Vec<(u64, u64, Gid, Gid)>> {
    let words = buf.words();
    if !words.len().is_multiple_of(4) {
        return Err(GraphStorageError::corrupt("MSF record payload misaligned"));
    }
    Ok(words
        .chunks_exact(4)
        .map(|c| (c[0], c[1], Gid::from_raw(c[2]), Gid::from_raw(c[3])))
        .collect())
}

/// Waits for `p` DONE markers of the given phase, feeding data messages to
/// `on_data`; future-phase messages are stashed.
fn await_phase(
    ctx: &mut FilterContext,
    stash: &mut Vec<DataBuffer>,
    p: usize,
    data_kind: u64,
    done_kind: u64,
    round: u32,
    on_data: &mut dyn FnMut(&DataBuffer) -> Result<()>,
) -> Result<u64> {
    let mut done = 0usize;
    let mut sum = 0u64;
    let mut i = 0;
    while i < stash.len() {
        let t = stash[i].tag;
        if tag_round(t) == round && (tag_kind(t) == data_kind || tag_kind(t) == done_kind) {
            let msg = stash.remove(i);
            if tag_kind(msg.tag) == done_kind {
                done += 1;
                sum += msg.words().first().copied().unwrap_or(0);
            } else {
                on_data(&msg)?;
            }
        } else {
            i += 1;
        }
    }
    while done < p {
        let Some(msg) = ctx.input("peers")?.recv()? else {
            return Err(GraphStorageError::Unsupported(
                "peer exited during MSF".into(),
            ));
        };
        let (k, r) = (tag_kind(msg.tag), tag_round(msg.tag));
        if r == round && k == data_kind {
            on_data(&msg)?;
        } else if r == round && k == done_kind {
            done += 1;
            sum += msg.words().first().copied().unwrap_or(0);
        } else {
            stash.push(msg);
        }
    }
    Ok(sum)
}

impl Filter for MsfFilter {
    fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
        let me = ctx.copy_index;
        let p = ctx.copies;
        let hash_owner = |c: u64| (c % p as u64) as usize;
        let mut stash: Vec<DataBuffer> = Vec::new();

        // ---- registration: replicate the vertex set everywhere ----
        let local = {
            let mut db = self.backend.lock();
            db.local_vertices()?
        };
        {
            let port = ctx.output("peers")?;
            let words: Vec<u64> = local.iter().map(|g| g.raw()).collect();
            port.broadcast(DataBuffer::from_words(tag(K_REGISTER, 0, me), &words))?;
            port.broadcast(DataBuffer::from_words(tag(K_REGISTER_DONE, 0, me), &[0]))?;
        }
        let mut uf = MinUnionFind::default();
        await_phase(
            ctx,
            &mut stash,
            p,
            K_REGISTER,
            K_REGISTER_DONE,
            0,
            &mut |msg| {
                for w in msg.words() {
                    uf.insert(w);
                }
                Ok(())
            },
        )?;
        let all_vertices: Vec<u64> = uf.parent.keys().copied().collect();

        // Cache the local adjacency once: Borůvka re-scans edges each round.
        let local_edges: Vec<(Gid, Gid)> = {
            let mut db = self.backend.lock();
            let mut adj = AdjBuffer::new();
            let mut out = Vec::new();
            for &v in &local {
                adj.clear();
                db.adjacency(v, &mut adj, 0, MetaOp::Ignore)?;
                for &u in adj.as_slice() {
                    out.push((v, u));
                }
            }
            out
        };

        let mut forest: Vec<(u64, Edge)> = Vec::new();
        let mut rounds = 0u32;
        for round in 1..=64u32 {
            rounds = round;
            // Phase A: local minimum outgoing edge per component.
            let mut best: HashMap<u64, (u64, Gid, Gid)> = HashMap::new();
            for &(v, u) in &local_edges {
                let (cv, cu) = (uf.find(v.raw()), uf.find(u.raw()));
                if cv == cu {
                    continue;
                }
                let w = edge_weight(v, u);
                // Lexicographic tie-break on (w, min, max).
                let (a, b) = if v <= u { (v, u) } else { (u, v) };
                let cand = (w, a, b);
                let better = match best.get(&cv) {
                    Some(&(bw, ba, bb)) => cand < (bw, ba, bb),
                    None => true,
                };
                if better {
                    best.insert(cv, cand);
                }
            }
            let mut per_owner: Vec<Vec<(u64, u64, Gid, Gid)>> = vec![Vec::new(); p];
            for (c, (w, a, b)) in best {
                per_owner[hash_owner(c)].push((c, w, a, b));
            }
            {
                let port: &mut OutPort = ctx.output("peers")?;
                for (owner, records) in per_owner.iter().enumerate() {
                    if !records.is_empty() {
                        port.send_to(
                            owner,
                            DataBuffer::from_words(
                                tag(K_CANDIDATE, round, me),
                                &encode_records(records),
                            ),
                        )?;
                    }
                }
                port.broadcast(DataBuffer::from_words(
                    tag(K_CANDIDATE_DONE, round, me),
                    &[0],
                ))?;
            }
            // Phase B: owners pick global winners per component.
            let mut winners: HashMap<u64, (u64, Gid, Gid)> = HashMap::new();
            await_phase(
                ctx,
                &mut stash,
                p,
                K_CANDIDATE,
                K_CANDIDATE_DONE,
                round,
                &mut |msg| {
                    for (c, w, a, b) in decode_records(msg)? {
                        let cand = (w, a, b);
                        let better = match winners.get(&c) {
                            Some(&existing) => cand < existing,
                            None => true,
                        };
                        if better {
                            winners.insert(c, cand);
                        }
                    }
                    Ok(())
                },
            )?;
            let winner_records: Vec<(u64, u64, Gid, Gid)> = winners
                .into_iter()
                .map(|(c, (w, a, b))| (c, w, a, b))
                .collect();
            {
                let port: &mut OutPort = ctx.output("peers")?;
                port.broadcast(DataBuffer::from_words(
                    tag(K_WINNER, round, me),
                    &encode_records(&winner_records),
                ))?;
                port.broadcast(DataBuffer::from_words(
                    tag(K_WINNER_DONE, round, me),
                    &[winner_records.len() as u64],
                ))?;
            }
            // Phase C: everyone applies the same winner set.
            let mut all_winners: Vec<(u64, u64, Gid, Gid)> = Vec::new();
            let total = await_phase(
                ctx,
                &mut stash,
                p,
                K_WINNER,
                K_WINNER_DONE,
                round,
                &mut |msg| {
                    all_winners.extend(decode_records(msg)?);
                    Ok(())
                },
            )?;
            // Deterministic application order; duplicate (both-side)
            // winners union idempotently, but only one processor (the
            // smaller endpoint's component owner... simply: the proc with
            // copy 0) records forest edges to avoid double counting — all
            // procs see the identical winner list.
            all_winners.sort_unstable_by_key(|&(c, w, a, b)| (w, a, b, c));
            for &(_, w, a, b) in &all_winners {
                let (ra, rb) = (uf.find(a.raw()), uf.find(b.raw()));
                if ra != rb {
                    uf.union(ra, rb);
                    if me == 0 {
                        forest.push((w, Edge::new(a, b)));
                    }
                }
            }
            if total == 0 {
                break;
            }
        }

        // ---- aggregate (copy 0 carries the shared results) ----
        let mut out = self.outcome.lock();
        out.rounds = out.rounds.max(rounds);
        if me == 0 && !out.filled {
            out.filled = true;
            out.vertices = all_vertices.len() as u64;
            let mut roots = std::collections::HashSet::new();
            for v in all_vertices {
                roots.insert(uf.find(v));
            }
            out.components = roots.len() as u64;
            out.total_weight = forest.iter().map(|&(w, _)| w as u128).sum();
            out.edges = forest.into_iter().map(|(_, e)| e).collect();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendKind, BackendOptions};
    use crate::ingest::{ingest, DeclusterKind, IngestOptions};

    fn run_msf(
        tag: &str,
        nodes: usize,
        kind: BackendKind,
        edges: Vec<Edge>,
        decl: DeclusterKind,
    ) -> MsfResult {
        let dir = std::env::temp_dir().join(format!("core-msf-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cluster = MssgCluster::new(&dir, nodes, kind, &BackendOptions::default()).unwrap();
        ingest(
            &mut cluster,
            edges.into_iter(),
            &IngestOptions {
                declustering: decl,
                ..Default::default()
            },
        )
        .unwrap();
        minimum_spanning_forest(&cluster).unwrap()
    }

    /// Sequential Kruskal with the same weights and tie-breaking.
    fn kruskal(edges: &[Edge]) -> (u128, usize, usize) {
        let mut uf = MinUnionFind::default();
        let mut vertices = std::collections::HashSet::new();
        let mut weighted: Vec<(u64, Gid, Gid)> = edges
            .iter()
            .map(|e| {
                vertices.insert(e.src.raw());
                vertices.insert(e.dst.raw());
                let (a, b) = if e.src <= e.dst {
                    (e.src, e.dst)
                } else {
                    (e.dst, e.src)
                };
                (edge_weight(a, b), a, b)
            })
            .collect();
        weighted.sort_unstable();
        let mut total: u128 = 0;
        let mut count = 0usize;
        for (w, a, b) in weighted {
            if uf.find(a.raw()) != uf.find(b.raw()) {
                uf.union(a.raw(), b.raw());
                total += w as u128;
                count += 1;
            }
        }
        let roots: std::collections::HashSet<u64> = vertices.iter().map(|&v| uf.find(v)).collect();
        (total, count, roots.len())
    }

    fn random_edges(n: usize, vmax: u64, seed: u64) -> Vec<Edge> {
        let mut x = seed | 1;
        let mut out = Vec::new();
        while out.len() < n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let a = x % vmax;
            let b = (x >> 17) % vmax;
            if a != b {
                out.push(Edge::of(a, b));
            }
        }
        out
    }

    #[test]
    fn path_graph_forest_is_the_path() {
        let edges: Vec<Edge> = (0..9).map(|i| Edge::of(i, i + 1)).collect();
        let r = run_msf(
            "path",
            3,
            BackendKind::HashMap,
            edges.clone(),
            DeclusterKind::VertexHash,
        );
        assert_eq!(r.vertices, 10);
        assert_eq!(r.components, 1);
        assert_eq!(r.edges.len(), 9, "a tree needs V-1 edges");
        let (want_w, want_n, want_c) = kruskal(&edges);
        assert_eq!(r.total_weight, want_w);
        assert_eq!(r.edges.len(), want_n);
        assert_eq!(r.components as usize, want_c);
    }

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for (seed, nodes) in [(11u64, 2usize), (23, 4), (37, 3)] {
            let edges = random_edges(400, 60, seed);
            let r = run_msf(
                &format!("rand-{seed}"),
                nodes,
                BackendKind::HashMap,
                edges.clone(),
                DeclusterKind::VertexHash,
            );
            let (want_w, want_n, want_c) = kruskal(&edges);
            assert_eq!(r.total_weight, want_w, "seed {seed}");
            assert_eq!(r.edges.len(), want_n, "seed {seed}");
            assert_eq!(r.components as usize, want_c, "seed {seed}");
            assert_eq!(r.edges.len() as u64, r.vertices - r.components);
        }
    }

    #[test]
    fn forest_with_multiple_components() {
        let mut edges = random_edges(50, 20, 5);
        edges.extend(
            random_edges(50, 20, 7)
                .iter()
                .map(|e| Edge::of(e.src.raw() + 1000, e.dst.raw() + 1000)),
        );
        let r = run_msf(
            "multi",
            3,
            BackendKind::HashMap,
            edges.clone(),
            DeclusterKind::VertexHash,
        );
        let (want_w, _, want_c) = kruskal(&edges);
        assert!(want_c >= 2);
        assert_eq!(r.components as usize, want_c);
        assert_eq!(r.total_weight, want_w);
    }

    #[test]
    fn works_under_edge_granularity_and_grdb() {
        let edges = random_edges(200, 40, 9);
        let a = run_msf(
            "gran-a",
            3,
            BackendKind::Grdb,
            edges.clone(),
            DeclusterKind::VertexHash,
        );
        let b = run_msf(
            "gran-b",
            3,
            BackendKind::HashMap,
            edges.clone(),
            DeclusterKind::EdgeRoundRobin,
        );
        let (want_w, _, want_c) = kruskal(&edges);
        for r in [&a, &b] {
            assert_eq!(r.total_weight, want_w);
            assert_eq!(r.components as usize, want_c);
        }
    }

    #[test]
    fn edge_weight_is_symmetric_and_spread() {
        let a = Gid::new(3);
        let b = Gid::new(900);
        assert_eq!(edge_weight(a, b), edge_weight(b, a));
        // Weights look uniform-ish: no obvious collisions in a small set.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            seen.insert(edge_weight(Gid::new(i), Gid::new(i + 1)));
        }
        assert_eq!(seen.len(), 1000);
    }
}
