//! Property tests for the static graph verifier: over random ring
//! topologies, graphs the credit-flow analysis *accepts* always complete,
//! and graphs it *rejects* for capacity starvation really do deadlock
//! when the verifier is bypassed — the rejection is not a false alarm.
//!
//! Topology under test: a k-filter ring. A `RingDriver` pushes `burst`
//! tokens into the cycle before receiving anything, then drains its
//! `burst` acknowledgements; `k - 1` `RingForwarder`s each relay one
//! token at a time. Every channel holds `cap` buffers, so the cycle's
//! buffer credit is `cap * k` and the driver's declared in-flight window
//! is `burst`:
//!
//! - `burst <= cap * k` — the burst fits in the cycle's buffers; the
//!   verifier accepts and the run must finish.
//! - `burst >= cap * k + k` — even counting the one in-hand token each
//!   of the `k - 1` forwarders may hold while blocked on its send, the
//!   burst cannot fit; the verifier rejects, and running anyway (via
//!   `allow_unverified`) must deadlock — observed as a typed `Timeout`
//!   once every filter is stuck.
//!
//! Between the two (`cap * k < burst < cap * k + k`) the analysis is
//! deliberately conservative — it rejects without modeling in-hand
//! buffers — so that band is asserted reject-only and never run.

use datacutter::{DataBuffer, Filter, FilterContext, FilterHandle, GraphBuilder};
use mssg_types::{GraphStorageError, Result, VerifyError};
use proptest::prelude::*;
use std::time::Duration;

struct RingDriver {
    burst: usize,
}

impl Filter for RingDriver {
    fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
        for i in 0..self.burst {
            ctx.output("out")?
                .send_rr(DataBuffer::from_words(0, &[i as u64]))?;
        }
        for _ in 0..self.burst {
            ctx.input("in")?.recv()?;
        }
        Ok(())
    }
}

struct RingForwarder;

impl Filter for RingForwarder {
    fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
        while let Some(buf) = ctx.input("in")?.recv()? {
            ctx.output("out")?.send_rr(buf)?;
        }
        Ok(())
    }
}

/// Builds the k-ring with channel capacity `cap` and a driver that
/// bursts `burst` tokens, declaring ports and the driver's send window
/// so the verifier sees the true in-flight demand.
fn build_ring(k: usize, cap: usize, burst: usize) -> GraphBuilder {
    let mut g = GraphBuilder::new();
    g.channel_capacity(cap);
    let mut handles: Vec<FilterHandle> = Vec::new();
    let driver = g
        .add_filter("driver", vec![0], move |_| Box::new(RingDriver { burst }))
        .expect("fresh name");
    handles.push(driver);
    for i in 1..k {
        let h = g
            .add_filter(&format!("fwd{i}"), vec![i], |_| Box::new(RingForwarder))
            .expect("fresh name");
        handles.push(h);
    }
    for (i, &h) in handles.iter().enumerate() {
        g.declare_ports(h, &["in"], &["out"]);
        g.expect_consumers(h, "out", 1);
        let next = handles[(i + 1) % k];
        g.connect(h, "out", next, "in").expect("fresh edge");
    }
    g.send_window(driver, "out", burst as u64);
    g
}

proptest! {
    // Each case launches real OS threads; keep the count modest.
    #![proptest_config(ProptestConfig { cases: 16 })]

    /// Accepted topologies complete: if the verifier lets a ring through,
    /// running it terminates with every token delivered.
    #[test]
    fn accepted_rings_complete(k in 1usize..4, cap in 1usize..4, slack in 0usize..3) {
        // Any burst up to the cycle's buffer credit must be accepted.
        let burst = (cap * k).saturating_sub(slack).max(1);
        let g = build_ring(k, cap, burst);
        prop_assert!(g.verify().is_ok(), "burst {burst} <= credit {}", cap * k);
        let report = g.run();
        prop_assert!(report.is_ok(), "accepted ring failed: {report:?}");
    }

    /// Over-committed rings are rejected with a diagnostic naming the
    /// cycle — and the rejection is *true*: the same topology, run with
    /// verification bypassed, deadlocks (surfacing as a typed Timeout).
    #[test]
    fn rejected_rings_really_deadlock(k in 1usize..4, cap in 1usize..4, extra in 0usize..3) {
        // burst >= cap*k + k cannot fit even counting in-hand tokens.
        let burst = cap * k + k + extra;
        let g = build_ring(k, cap, burst);
        let errs = g.verify().expect_err("starved ring must be rejected");
        let starved = errs.iter().find_map(|e| match e {
            VerifyError::CapacityStarvedCycle { cycle, credit, window } => {
                Some((cycle.clone(), *credit, *window))
            }
            _ => None,
        });
        let (cycle, credit, window) =
            starved.expect("rejection must name the starved cycle");
        prop_assert_eq!(cycle.len(), k, "diagnostic names every edge of the ring");
        prop_assert_eq!(credit, (cap * k) as u64);
        prop_assert_eq!(window, burst as u64);

        // Now prove the static verdict dynamically: bypass the gate and
        // watch the same graph wedge. The deadline converts the deadlock
        // into a typed Timeout instead of hanging the test suite.
        let mut g = build_ring(k, cap, burst);
        g.allow_unverified();
        g.stream_timeout(Duration::from_millis(100));
        match g.run() {
            Err(GraphStorageError::Timeout(_)) => {}
            other => prop_assert!(false, "expected a deadlock timeout, got {other:?}"),
        }
    }
}
