//! Model-checked and threaded property tests for [`BufferPool`]
//! recycling under concurrent clone/drop storms.
//!
//! The invariant under test: a pool **hit** can only ever hand out an
//! allocation that went through a successful `recycle` — i.e. one whose
//! `Bytes` payload was *proven unique* by `try_into_vec`. A second live
//! `Bytes` handle must force the recycle to fail (the buffer is dropped
//! and counted), so `hits ≤ recycled` holds in **every schedule**, not
//! just on average. The model-checked tests assert it per explored
//! schedule; the threaded storm asserts it under real contention.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use datacutter::{BufferPool, DataBuffer};
use mssg_modelcheck::{check, spawn};

/// One buffer, one lingering clone on another thread: `recycle` succeeds
/// only in schedules where the clone has already been dropped, and a
/// subsequent pool hit implies the recycle succeeded — in every schedule.
#[test]
fn pool_hit_implies_unique_recycle_per_schedule() {
    let hit_schedules = Arc::new(AtomicUsize::new(0));
    let miss_schedules = Arc::new(AtomicUsize::new(0));
    let (hits2, misses2) = (Arc::clone(&hit_schedules), Arc::clone(&miss_schedules));
    let report = check(move || {
        let pool = BufferPool::new(2);
        let buf = pool.from_words(0, &[7, 8]);
        let clone = buf.data.clone(); // second handle to the payload
        let t = spawn(move || {
            assert_eq!(clone.len(), 16);
            drop(clone);
        });
        let recycled = pool.recycle(buf);
        let before = pool.stats().hits;
        let v = pool.take(8);
        let hit = pool.stats().hits > before;
        if hit {
            assert!(
                recycled,
                "pool hit handed out an allocation that was never proven unique"
            );
            hits2.fetch_add(1, Ordering::Relaxed);
        } else {
            misses2.fetch_add(1, Ordering::Relaxed);
        }
        drop(v);
        t.join();
        let s = pool.stats();
        assert!(s.hits <= s.recycled, "hit without recycle: {s:?}");
    });
    // Both outcomes must be reachable, or the storm proves nothing.
    assert!(
        hit_schedules.load(Ordering::Relaxed) > 0,
        "some schedule must recycle before the clone dies"
    );
    assert!(
        miss_schedules.load(Ordering::Relaxed) > 0,
        "some schedule must catch the clone alive"
    );
    println!(
        "pool_hit_implies_unique_recycle: {} schedules ({} hit, {} miss)",
        report.executions,
        hit_schedules.load(Ordering::Relaxed),
        miss_schedules.load(Ordering::Relaxed)
    );
}

/// Two buffers, a clone storm across three threads: every buffer ends up
/// exactly once in `recycled` or `dropped`, and `hits ≤ recycled` holds
/// in every explored schedule.
#[test]
fn clone_drop_storm_upholds_accounting_per_schedule() {
    let report = check(|| {
        let pool = BufferPool::new(2);
        let a = pool.from_words(0, &[1]);
        let b = pool.from_words(1, &[2]);
        let a_clone = a.data.clone();
        let pool2 = pool.clone();
        let t1 = spawn(move || drop(a_clone));
        let t2 = spawn(move || {
            // `b` has no clones: its recycle must always succeed.
            assert!(pool2.recycle(b), "unique payload must recycle");
        });
        let _ = pool.recycle(a); // succeeds iff t1 already dropped the clone
        t1.join();
        t2.join();
        let s = pool.stats();
        assert!(s.hits <= s.recycled, "{s:?}");
        assert_eq!(
            s.recycled + s.dropped,
            2,
            "every buffer accounted for exactly once: {s:?}"
        );
        // Drain the free list: hits stay bounded by recycles.
        let _ = pool.take(4);
        let _ = pool.take(4);
        let s = pool.stats();
        assert!(s.hits <= s.recycled, "{s:?}");
    });
    println!(
        "clone_drop_storm: {} schedules, accounting exact in all",
        report.executions
    );
}

/// Real-thread storm: four producers, one recycler, lingering clones on
/// every fourth buffer. The hit/recycle bound and the exactly-once
/// accounting must survive genuine parallelism.
#[test]
fn threaded_clone_drop_storm_upholds_hit_bound() {
    const WORKERS: u64 = 4;
    const PER_WORKER: u64 = 64;
    let pool = BufferPool::new(16);
    let (tx, rx) = crossbeam::channel::bounded::<DataBuffer>(16);
    let recycler = {
        let pool = pool.clone();
        std::thread::spawn(move || {
            let mut ok = 0u64;
            while let Ok(buf) = rx.recv() {
                if pool.recycle(buf) {
                    ok += 1;
                }
            }
            ok
        })
    };
    let mut workers = Vec::new();
    for t in 0..WORKERS {
        let pool = pool.clone();
        let tx = tx.clone();
        workers.push(std::thread::spawn(move || {
            for j in 0..PER_WORKER {
                let buf = pool.from_words(t, &[t, j]);
                if j % 4 == 0 {
                    // A clone that may or may not outlive the recycle
                    // attempt — the recycler must never be fooled.
                    let lingering = buf.data.clone();
                    tx.send(buf).unwrap();
                    drop(lingering);
                } else {
                    tx.send(buf).unwrap();
                }
            }
        }));
    }
    drop(tx);
    for w in workers {
        w.join().unwrap();
    }
    let unwrap_ok = recycler.join().unwrap();
    let s = pool.stats();
    assert!(s.hits <= s.recycled, "hit without recycle: {s:?}");
    assert_eq!(
        s.hits + s.misses,
        WORKERS * PER_WORKER,
        "one take per buffer"
    );
    assert_eq!(
        s.recycled + s.dropped,
        WORKERS * PER_WORKER,
        "every buffer accounted for exactly once: {s:?}"
    );
    // `recycled` counts free-list pushes; a unique unwrap whose push hit
    // the pool bound is counted dropped, so pushes ≤ successful unwraps.
    assert!(s.recycled <= unwrap_ok, "{s:?} vs {unwrap_ok} unwraps");
    println!("threaded storm: {s:?}, {unwrap_ok} unique unwraps");
}
