//! The transport abstraction: how logical stream endpoints move
//! [`DataBuffer`]s between filter copies.
//!
//! The runtime wires ports through the [`Transport`] trait instead of
//! touching channels directly, so the same [`GraphBuilder`] description
//! can run all copies in one process ([`InProc`], crossbeam channels —
//! the classic substrate) or as one OS process per [`NodeId`] with
//! streams carried over TCP (`mssg-net`'s `TcpTransport`).
//!
//! Endpoint identity is *deterministic*: every process derives the same
//! [`EndpointSpec`] table from the same graph description (specs are
//! assigned in stream-declaration order), which is what lets separate
//! processes agree on stream ids without any coordination beyond the
//! topology handshake.
//!
//! [`GraphBuilder`]: crate::GraphBuilder

use crate::buffer::DataBuffer;
use crate::NodeId;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendTimeoutError, Sender};
use mssg_types::{GraphStorageError, Result};
use std::collections::HashMap;
use std::time::Duration;

/// Accounting destination for shared (demand-driven) queues: a
/// distributed queue crosses the network by design, so its traffic is
/// charged remote regardless of placement.
pub const SHARED_NODE: NodeId = usize::MAX;

/// What a blocking receive produced.
#[derive(Debug)]
pub enum RecvOutcome {
    /// A buffer arrived.
    Buf(DataBuffer),
    /// Every producer has closed its end; the stream is drained.
    Closed,
    /// The optional deadline elapsed first.
    TimedOut,
    /// The transport failed (e.g. a peer connection was lost).
    Failed(GraphStorageError),
}

/// What a blocking send produced.
#[derive(Debug)]
pub enum SendOutcome {
    /// The buffer was accepted.
    Sent,
    /// The consumer endpoint is gone ("consumer hung up").
    Closed,
    /// The optional deadline elapsed with the stream still backpressured.
    TimedOut,
    /// The transport failed (e.g. a peer connection was lost).
    Failed(GraphStorageError),
}

/// Receiving half of one logical stream endpoint (all producer copies
/// merged), as handed to an `InPort`.
pub trait RxEndpoint: Send {
    /// Blocks for the next buffer, up to `timeout` if given.
    /// `timeout: None` blocks until data or close — it never returns
    /// [`RecvOutcome::TimedOut`].
    fn recv(&self, timeout: Option<Duration>) -> RecvOutcome;

    /// Non-blocking receive.
    fn try_recv(&self) -> Option<DataBuffer>;

    /// A second handle on the same endpoint (for supervised restarts and
    /// shared-queue consumer copies).
    fn clone_endpoint(&self) -> Box<dyn RxEndpoint>;
}

/// Sending half of one logical stream endpoint, as held by an `OutPort`
/// (one per consumer copy).
pub trait TxEndpoint: Send {
    /// Blocks until the buffer is accepted, up to `timeout` if given.
    fn send(&self, buf: DataBuffer, timeout: Option<Duration>) -> SendOutcome;

    /// Node the consumer endpoint lives on, for locality accounting
    /// ([`SHARED_NODE`] for shared queues).
    fn dst_node(&self) -> NodeId;

    /// Bytes a payload of `payload_len` puts on the wire: the payload
    /// itself in-process, payload plus frame header over a socket. Feeds
    /// `NetStats` so remote byte counts reflect real framing overhead.
    fn wire_bytes(&self, payload_len: usize) -> u64;

    /// Current occupancy of the destination queue (in-flight buffers for
    /// socket transports) — the backpressure sample.
    fn queue_len(&self) -> usize;

    /// A second handle on the same endpoint (for supervised restarts).
    /// Clones share the endpoint's close identity: the stream closes when
    /// the last clone drops, so a restart never double-closes.
    fn clone_endpoint(&self) -> Box<dyn TxEndpoint>;
}

/// One logical stream endpoint: the receive queue of one consumer copy's
/// input port (or the single shared queue of a demand-driven stream).
/// Derived deterministically from the graph, identical in every process.
#[derive(Clone, Debug)]
pub struct EndpointSpec {
    /// Dense id, assigned in stream-declaration order — the wire-level
    /// stream id.
    pub id: u64,
    /// Consumer filter name (diagnostics).
    pub filter: String,
    /// Consumer input port name (diagnostics).
    pub in_port: String,
    /// Consumer copy index (0 for shared endpoints).
    pub copy: usize,
    /// Node the consumer copy is placed on.
    pub node: NodeId,
    /// Demand-driven shared queue instead of an addressed per-copy queue.
    pub shared: bool,
    /// Bounded queue depth (backpressure credit).
    pub capacity: usize,
    /// Producer copies co-located with `node` (served by a plain local
    /// queue even over a socket transport).
    pub local_producers: usize,
    /// Producer copies on *other* nodes, as `(producer node, copies)` —
    /// the peers a socket transport must accept frames and closes from.
    pub remote_producers: Vec<(NodeId, usize)>,
}

impl EndpointSpec {
    /// Total producer copies feeding this endpoint.
    pub fn producers(&self) -> usize {
        self.local_producers + self.remote_producers.iter().map(|(_, c)| c).sum::<usize>()
    }
}

/// Carries logical streams between filter copies. `open_endpoint` /
/// `open_sender` are called during graph wiring (endpoints first, then
/// senders), `start` once wiring is complete and before any filter runs,
/// `finish` after every local filter has joined.
pub trait Transport {
    /// Creates the receive side of `spec`. Called exactly once per local
    /// endpoint; the runtime clones the returned handle for shared-queue
    /// consumer copies and supervised restarts.
    fn open_endpoint(&mut self, spec: &EndpointSpec) -> Result<Box<dyn RxEndpoint>>;

    /// Creates one producer copy's send handle onto `spec`. Called once
    /// per (local producer copy, endpoint); each handle has its own close
    /// identity.
    fn open_sender(&mut self, spec: &EndpointSpec) -> Result<Box<dyn TxEndpoint>>;

    /// Wiring is complete: release the transport's own endpoint handles
    /// (so streams close when producers finish) and synchronize with
    /// peers before data flows.
    fn start(&mut self) -> Result<()> {
        Ok(())
    }

    /// All local filters have joined: flush close notifications and wait
    /// for peers to finish theirs. Best-effort — a dead peer must not
    /// turn a completed local run into an error here.
    fn finish(&mut self) -> Result<()> {
        Ok(())
    }
}

/// The classic substrate: every node is a thread in this process and a
/// stream endpoint is a bounded crossbeam channel. Zero behavior change
/// from the pre-transport runtime.
#[derive(Default)]
pub struct InProc {
    /// Master senders, dropped at `start` so streams close once the
    /// producer-held clones do.
    masters: HashMap<u64, (Sender<DataBuffer>, NodeId)>,
}

impl InProc {
    /// An empty in-process transport.
    pub fn new() -> InProc {
        InProc::default()
    }
}

impl Transport for InProc {
    fn open_endpoint(&mut self, spec: &EndpointSpec) -> Result<Box<dyn RxEndpoint>> {
        let (tx, rx) = bounded(spec.capacity);
        let dst = if spec.shared { SHARED_NODE } else { spec.node };
        self.masters.insert(spec.id, (tx, dst));
        Ok(Box::new(ChannelRx { rx }))
    }

    fn open_sender(&mut self, spec: &EndpointSpec) -> Result<Box<dyn TxEndpoint>> {
        let (tx, dst) = self.masters.get(&spec.id).ok_or_else(|| {
            GraphStorageError::Unsupported(format!(
                "no endpoint {} ({}.{}) opened before its sender",
                spec.id, spec.filter, spec.in_port
            ))
        })?;
        Ok(Box::new(ChannelTx {
            tx: tx.clone(),
            dst: *dst,
        }))
    }

    fn start(&mut self) -> Result<()> {
        // Drop the master senders so each stream disconnects once every
        // producer-held clone is gone.
        self.masters.clear();
        Ok(())
    }
}

/// [`RxEndpoint`] over a crossbeam receiver.
pub struct ChannelRx {
    pub(crate) rx: Receiver<DataBuffer>,
}

impl ChannelRx {
    /// Wraps a receiver as an endpoint — for transports that serve some
    /// endpoints from plain local channels (e.g. `mssg-net`'s co-located
    /// producer paths).
    pub fn new(rx: Receiver<DataBuffer>) -> ChannelRx {
        ChannelRx { rx }
    }
}

impl RxEndpoint for ChannelRx {
    fn recv(&self, timeout: Option<Duration>) -> RecvOutcome {
        match timeout {
            None => match self.rx.recv() {
                Ok(buf) => RecvOutcome::Buf(buf),
                Err(_) => RecvOutcome::Closed,
            },
            Some(limit) => match self.rx.recv_timeout(limit) {
                Ok(buf) => RecvOutcome::Buf(buf),
                Err(RecvTimeoutError::Disconnected) => RecvOutcome::Closed,
                Err(RecvTimeoutError::Timeout) => RecvOutcome::TimedOut,
            },
        }
    }

    fn try_recv(&self) -> Option<DataBuffer> {
        self.rx.try_recv().ok()
    }

    fn clone_endpoint(&self) -> Box<dyn RxEndpoint> {
        Box::new(ChannelRx {
            rx: self.rx.clone(),
        })
    }
}

/// [`TxEndpoint`] over a crossbeam sender.
pub struct ChannelTx {
    pub(crate) tx: Sender<DataBuffer>,
    pub(crate) dst: NodeId,
}

impl ChannelTx {
    /// Wraps a sender as an endpoint charging traffic to `dst`.
    pub fn new(tx: Sender<DataBuffer>, dst: NodeId) -> ChannelTx {
        ChannelTx { tx, dst }
    }
}

impl TxEndpoint for ChannelTx {
    fn send(&self, buf: DataBuffer, timeout: Option<Duration>) -> SendOutcome {
        match timeout {
            None => match self.tx.send(buf) {
                Ok(()) => SendOutcome::Sent,
                Err(_) => SendOutcome::Closed,
            },
            Some(limit) => match self.tx.send_timeout(buf, limit) {
                Ok(()) => SendOutcome::Sent,
                Err(SendTimeoutError::Disconnected(_)) => SendOutcome::Closed,
                Err(SendTimeoutError::Timeout(_)) => SendOutcome::TimedOut,
            },
        }
    }

    fn dst_node(&self) -> NodeId {
        self.dst
    }

    fn wire_bytes(&self, payload_len: usize) -> u64 {
        // A memory copy carries exactly the payload.
        payload_len as u64
    }

    fn queue_len(&self) -> usize {
        self.tx.len()
    }

    fn clone_endpoint(&self) -> Box<dyn TxEndpoint> {
        Box::new(ChannelTx {
            tx: self.tx.clone(),
            dst: self.dst,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64, node: NodeId, shared: bool) -> EndpointSpec {
        EndpointSpec {
            id,
            filter: "c".into(),
            in_port: "in".into(),
            copy: 0,
            node,
            shared,
            capacity: 4,
            local_producers: 1,
            remote_producers: Vec::new(),
        }
    }

    #[test]
    fn inproc_round_trip_and_close() {
        let mut t = InProc::new();
        let rx = t.open_endpoint(&spec(0, 1, false)).unwrap();
        let tx = t.open_sender(&spec(0, 1, false)).unwrap();
        t.start().unwrap();
        assert!(matches!(
            tx.send(DataBuffer::control(7), None),
            SendOutcome::Sent
        ));
        assert_eq!(tx.dst_node(), 1);
        assert_eq!(tx.wire_bytes(100), 100);
        match rx.recv(None) {
            RecvOutcome::Buf(b) => assert_eq!(b.tag, 7),
            other => panic!("expected a buffer, got {other:?}"),
        }
        drop(tx);
        assert!(matches!(rx.recv(None), RecvOutcome::Closed));
    }

    #[test]
    fn inproc_timeouts_and_backpressure() {
        let mut t = InProc::new();
        let rx = t.open_endpoint(&spec(0, 0, false)).unwrap();
        let tx = t.open_sender(&spec(0, 0, false)).unwrap();
        t.start().unwrap();
        assert!(matches!(
            rx.recv(Some(Duration::from_millis(5))),
            RecvOutcome::TimedOut
        ));
        for i in 0..4 {
            assert!(matches!(
                tx.send(DataBuffer::control(i), Some(Duration::from_millis(50))),
                SendOutcome::Sent
            ));
        }
        assert_eq!(tx.queue_len(), 4);
        assert!(matches!(
            tx.send(DataBuffer::control(9), Some(Duration::from_millis(5))),
            SendOutcome::TimedOut
        ));
        drop(rx);
        assert!(matches!(
            tx.send(DataBuffer::control(9), None),
            SendOutcome::Closed
        ));
    }

    #[test]
    fn shared_endpoints_charge_remote() {
        let mut t = InProc::new();
        let _rx = t.open_endpoint(&spec(3, 2, true)).unwrap();
        let tx = t.open_sender(&spec(3, 2, true)).unwrap();
        assert_eq!(tx.dst_node(), SHARED_NODE);
    }

    #[test]
    fn sender_without_endpoint_is_an_error() {
        let mut t = InProc::new();
        assert!(t.open_sender(&spec(9, 0, false)).is_err());
    }
}
