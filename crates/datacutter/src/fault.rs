//! Deterministic fault injection — the substrate's chaos layer.
//!
//! A [`FaultPlan`] schedules faults against named filter copies: panics
//! (a crashed copy), stream-send errors (a dropped connection), and
//! artificial stalls (a slow node). Plans are plain data — deterministic
//! and replayable — and the seed-driven constructors derive every
//! injection point from a single `u64`, so a failing chaos run can be
//! reproduced exactly from its seed.
//!
//! Injection points are counted in **port operations**: every entry into
//! [`InPort::recv`](crate::InPort::recv) and every send on an
//! [`OutPort`](crate::OutPort) advances the copy's operation counter by
//! one, and a fault fires at the first *applicable* operation at or after
//! its `at_op` mark. Panics fire only at receive boundaries — before the
//! next buffer is popped from the channel — so a supervised restart
//! re-receives the buffer and no message is lost to the crash itself.
//! Send errors fire only on sends; stalls fire on either. Each scheduled
//! fault fires at most once, and the fired/operation state survives a
//! supervised restart (the restarted incarnation does not replay its
//! predecessor's faults).

use mssg_types::{GraphStorageError, Result};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What an injection point does when it fires.
#[derive(Clone, Debug)]
pub enum FaultKind {
    /// The filter copy panics, modelling a crashed process. Fires at a
    /// message-receive boundary (before the buffer is popped), so a
    /// supervised restart loses no in-flight message.
    Panic,
    /// The next send on any of the copy's output ports fails with a typed
    /// [`GraphStorageError::Fault`], modelling a dropped connection. The
    /// message is *not* delivered.
    SendError,
    /// The copy stalls for the given duration before the operation,
    /// modelling a slow node — the scenario stream timeouts guard against.
    Stall(Duration),
}

impl FaultKind {
    fn label(&self) -> String {
        match self {
            FaultKind::Panic => "panic".into(),
            FaultKind::SendError => "send_error".into(),
            FaultKind::Stall(d) => format!("stall:{}ms", d.as_millis()),
        }
    }
}

/// One scheduled fault: which copy, when, and what happens.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// Filter name, as given to `GraphBuilder::add_filter`.
    pub filter: String,
    /// Copy index the fault targets, or `None` for every copy.
    pub copy: Option<usize>,
    /// Fires at the first applicable port operation at or after this
    /// count (operations are numbered from 1).
    pub at_op: u64,
    /// What happens when it fires.
    pub kind: FaultKind,
}

/// An audit record of one fault that actually fired, collected into
/// [`RunReport::faults`](crate::RunReport::faults).
#[derive(Clone, Debug)]
pub struct FaultEvent {
    /// Filter name.
    pub filter: String,
    /// Copy index the fault fired on.
    pub copy: usize,
    /// The copy's port-operation count when it fired.
    pub at_op: u64,
    /// Human-readable fault kind (`panic`, `send_error`, `stall:..ms`).
    pub kind: String,
}

/// A deterministic schedule of injected faults, attached to a graph with
/// [`GraphBuilder::fault_plan`](crate::GraphBuilder::fault_plan).
///
/// Build one explicitly with [`inject`](FaultPlan::inject), or derive a
/// randomized-but-reproducible plan from a seed with
/// [`panics`](FaultPlan::panics) or [`chaos`](FaultPlan::chaos).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

/// SplitMix64 step — the deterministic generator behind the seed-driven
/// plan constructors. Public so sibling fault planners (e.g. the wire
/// simulator's `SimPlan`) derive their streams from the same primitive.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedules one fault against `filter` (copy `copy`, or all copies if
    /// `None`) at port operation `at_op`.
    pub fn inject(
        mut self,
        filter: &str,
        copy: Option<usize>,
        at_op: u64,
        kind: FaultKind,
    ) -> FaultPlan {
        self.specs.push(FaultSpec {
            filter: filter.to_string(),
            copy,
            at_op,
            kind,
        });
        self
    }

    /// Schedules `count` copy panics against `filter`, with the target
    /// copy (out of `copies`) and the operation mark (in `1..=max_op`)
    /// derived deterministically from `seed`.
    pub fn panics(
        mut self,
        seed: u64,
        filter: &str,
        copies: usize,
        count: usize,
        max_op: u64,
    ) -> FaultPlan {
        let mut state = seed ^ 0xC0FF_EE00_D15E_A5E5;
        for _ in 0..count {
            let copy = (splitmix64(&mut state) as usize) % copies.max(1);
            let at_op = 1 + splitmix64(&mut state) % max_op.max(1);
            self.specs.push(FaultSpec {
                filter: filter.to_string(),
                copy: Some(copy),
                at_op,
                kind: FaultKind::Panic,
            });
        }
        self
    }

    /// Derives a mixed plan (panics, send errors, short stalls) against
    /// the given `(filter, copies)` targets, entirely from `seed` — the
    /// constructor the chaos property test sweeps.
    pub fn chaos(seed: u64, targets: &[(&str, usize)]) -> FaultPlan {
        let mut state = seed ^ 0x5EED_5EED_5EED_5EED;
        let mut plan = FaultPlan::new();
        if targets.is_empty() {
            return plan;
        }
        let count = 1 + (splitmix64(&mut state) % 4) as usize;
        for _ in 0..count {
            let (filter, copies) = targets[(splitmix64(&mut state) as usize) % targets.len()];
            let copy = (splitmix64(&mut state) as usize) % copies.max(1);
            let at_op = 1 + splitmix64(&mut state) % 24;
            let kind = match splitmix64(&mut state) % 4 {
                0 => FaultKind::SendError,
                1 => FaultKind::Stall(Duration::from_millis(1 + splitmix64(&mut state) % 10)),
                _ => FaultKind::Panic,
            };
            plan.specs.push(FaultSpec {
                filter: filter.to_string(),
                copy: Some(copy),
                at_op,
                kind,
            });
        }
        plan
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The scheduled faults.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// The specs that apply to one copy of one filter.
    pub(crate) fn for_copy(&self, filter: &str, copy: usize) -> Vec<FaultSpec> {
        self.specs
            .iter()
            .filter(|s| s.filter == filter && s.copy.is_none_or(|c| c == copy))
            .cloned()
            .collect()
    }
}

/// Panic payload used for injected [`FaultKind::Panic`] faults. The
/// runtime's panic hook recognises it and keeps injected crashes out of
/// stderr (real panics still print as usual).
pub(crate) struct InjectedPanic {
    pub(crate) msg: String,
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// [`InjectedPanic`] payloads and delegates everything else to the
/// previous hook — chaos runs inject crashes on purpose and should not
/// spray backtraces over the output.
pub(crate) fn silence_injected_panics() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Extracts a human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(p) = payload.downcast_ref::<InjectedPanic>() {
        p.msg.clone()
    } else if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

struct FaultPoint {
    at_op: u64,
    kind: FaultKind,
    fired: AtomicBool,
}

/// Per-copy injection state, shared across restart incarnations so the
/// operation counter keeps advancing and fired faults stay fired.
pub(crate) struct CopyFaults {
    filter: String,
    copy: usize,
    ops: AtomicU64,
    points: Vec<FaultPoint>,
    log: Arc<Mutex<Vec<FaultEvent>>>,
    counter: mssg_obs::Counter,
}

impl CopyFaults {
    pub(crate) fn new(
        filter: String,
        copy: usize,
        specs: Vec<FaultSpec>,
        log: Arc<Mutex<Vec<FaultEvent>>>,
        counter: mssg_obs::Counter,
    ) -> CopyFaults {
        CopyFaults {
            filter,
            copy,
            ops: AtomicU64::new(0),
            points: specs
                .into_iter()
                .map(|s| FaultPoint {
                    at_op: s.at_op,
                    kind: s.kind,
                    fired: AtomicBool::new(false),
                })
                .collect(),
            log,
            counter,
        }
    }

    fn record(&self, op: u64, kind: &FaultKind) {
        self.counter.inc();
        self.log.lock().unwrap().push(FaultEvent {
            filter: self.filter.clone(),
            copy: self.copy,
            at_op: op,
            kind: kind.label(),
        });
    }

    /// Advances the operation counter and fires due faults. Called at a
    /// receive boundary (`is_send == false`) or before a send. May panic
    /// (injected crash), sleep (stall), or return a typed
    /// [`GraphStorageError::Fault`] (send error).
    pub(crate) fn tick(&self, is_send: bool) -> Result<()> {
        // racecheck: op counting only orders faults, not memory; the
        // at-most-once `fired` claim below rests on RMW atomicity, and the
        // preceding load is a best-effort skip re-checked by the swap.
        let op = self.ops.fetch_add(1, Ordering::Relaxed) + 1;
        for p in &self.points {
            if p.at_op > op || p.fired.load(Ordering::Relaxed) {
                continue;
            }
            let applicable = match p.kind {
                FaultKind::Panic => !is_send,
                FaultKind::SendError => is_send,
                FaultKind::Stall(_) => true,
            };
            // racecheck: see the tick doc above — atomicity, not ordering.
            if !applicable || p.fired.swap(true, Ordering::Relaxed) {
                continue;
            }
            self.record(op, &p.kind);
            match p.kind {
                FaultKind::Stall(d) => std::thread::sleep(d),
                FaultKind::SendError => {
                    return Err(GraphStorageError::Fault(format!(
                        "send error injected into filter {}.{} at op {op}",
                        self.filter, self.copy
                    )));
                }
                FaultKind::Panic => std::panic::panic_any(InjectedPanic {
                    msg: format!(
                        "panic injected into filter {}.{} at op {op}",
                        self.filter, self.copy
                    ),
                }),
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::new().panics(42, "store", 4, 3, 20);
        let b = FaultPlan::new().panics(42, "store", 4, 3, 20);
        assert_eq!(a.len(), 3);
        for (x, y) in a.specs().iter().zip(b.specs()) {
            assert_eq!(x.copy, y.copy);
            assert_eq!(x.at_op, y.at_op);
        }
        let c = FaultPlan::new().panics(43, "store", 4, 3, 20);
        assert!(
            a.specs()
                .iter()
                .zip(c.specs())
                .any(|(x, y)| x.copy != y.copy || x.at_op != y.at_op),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn chaos_plans_bounded_and_reproducible() {
        for seed in 0..50 {
            let p = FaultPlan::chaos(seed, &[("ingest", 2), ("store", 3)]);
            assert!((1..=4).contains(&p.len()));
            let q = FaultPlan::chaos(seed, &[("ingest", 2), ("store", 3)]);
            assert_eq!(p.len(), q.len());
            for s in p.specs() {
                assert!(s.at_op >= 1 && s.at_op <= 24);
                assert!(s.filter == "ingest" || s.filter == "store");
            }
        }
    }

    #[test]
    fn for_copy_filters_by_name_and_copy() {
        let plan = FaultPlan::new()
            .inject("store", Some(1), 5, FaultKind::Panic)
            .inject("store", None, 9, FaultKind::SendError)
            .inject("ingest", Some(0), 2, FaultKind::Panic);
        assert_eq!(plan.for_copy("store", 1).len(), 2);
        assert_eq!(plan.for_copy("store", 0).len(), 1);
        assert_eq!(plan.for_copy("bfs", 0).len(), 0);
    }

    #[test]
    fn faults_fire_once_at_applicable_ops() {
        let log = Arc::new(Mutex::new(Vec::new()));
        let cf = CopyFaults::new(
            "f".into(),
            0,
            vec![
                FaultSpec {
                    filter: "f".into(),
                    copy: Some(0),
                    at_op: 2,
                    kind: FaultKind::SendError,
                },
                FaultSpec {
                    filter: "f".into(),
                    copy: Some(0),
                    at_op: 1,
                    kind: FaultKind::Stall(Duration::from_millis(1)),
                },
            ],
            Arc::clone(&log),
            mssg_obs::Counter::default(),
        );
        cf.tick(false).unwrap(); // op 1: stall fires, send error not applicable
        assert_eq!(log.lock().unwrap().len(), 1);
        cf.tick(false).unwrap(); // op 2: send error still waits for a send
        let err = cf.tick(true).unwrap_err(); // op 3: send error fires
        assert!(matches!(err, GraphStorageError::Fault(_)));
        cf.tick(true).unwrap(); // fired faults stay fired
        assert_eq!(log.lock().unwrap().len(), 2);
    }
}
