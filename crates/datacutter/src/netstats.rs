//! Network accounting and cost model — the communication-side counterpart
//! of `simio`'s disk accounting.

use crate::NodeId;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Shared message counters, split by locality. Sends between filter
/// instances placed on the same node are memory copies (DataCutter
/// semantics); everything else would have crossed the cluster network.
#[derive(Debug, Default)]
pub struct NetStats {
    local_msgs: AtomicU64,
    local_bytes: AtomicU64,
    remote_msgs: AtomicU64,
    remote_bytes: AtomicU64,
}

impl NetStats {
    /// Fresh counters behind an `Arc`.
    pub fn new() -> Arc<NetStats> {
        Arc::new(NetStats::default())
    }

    /// Records one message from node `src` to node `dst`. `bytes` is what
    /// the message costs on the wire as reported by the transport
    /// endpoint — the payload for an in-process copy, payload plus frame
    /// header over a socket.
    #[inline]
    pub fn record(&self, src: NodeId, dst: NodeId, bytes: u64) {
        // racecheck: statistics counters — no reader orders memory on them.
        if src == dst {
            self.local_msgs.fetch_add(1, Ordering::Relaxed);
            self.local_bytes.fetch_add(bytes, Ordering::Relaxed);
        } else {
            self.remote_msgs.fetch_add(1, Ordering::Relaxed);
            self.remote_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Snapshot of the counters.
    pub fn snapshot(&self) -> NetSnapshot {
        // racecheck: approximate snapshot of statistics counters.
        NetSnapshot {
            local_msgs: self.local_msgs.load(Ordering::Relaxed),
            local_bytes: self.local_bytes.load(Ordering::Relaxed),
            remote_msgs: self.remote_msgs.load(Ordering::Relaxed),
            remote_bytes: self.remote_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`NetStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetSnapshot {
    /// Messages between co-located instances.
    pub local_msgs: u64,
    /// Bytes between co-located instances.
    pub local_bytes: u64,
    /// Messages that crossed nodes.
    pub remote_msgs: u64,
    /// Bytes that crossed nodes.
    pub remote_bytes: u64,
}

impl NetSnapshot {
    /// Counter deltas since `earlier`. Saturating, like `IoSnapshot::since`:
    /// if counters were reset between snapshots the delta clamps to zero
    /// instead of panicking in debug builds.
    pub fn since(&self, earlier: &NetSnapshot) -> NetSnapshot {
        NetSnapshot {
            local_msgs: self.local_msgs.saturating_sub(earlier.local_msgs),
            local_bytes: self.local_bytes.saturating_sub(earlier.local_bytes),
            remote_msgs: self.remote_msgs.saturating_sub(earlier.remote_msgs),
            remote_bytes: self.remote_bytes.saturating_sub(earlier.remote_bytes),
        }
    }

    /// Sum of two snapshots — aggregate traffic across simulated nodes,
    /// mirroring `IoSnapshot::merged`.
    pub fn merged(&self, other: &NetSnapshot) -> NetSnapshot {
        NetSnapshot {
            local_msgs: self.local_msgs + other.local_msgs,
            local_bytes: self.local_bytes + other.local_bytes,
            remote_msgs: self.remote_msgs + other.remote_msgs,
            remote_bytes: self.remote_bytes + other.remote_bytes,
        }
    }

    /// Total messages, regardless of locality.
    pub fn total_msgs(&self) -> u64 {
        self.local_msgs + self.remote_msgs
    }

    /// Total bytes, regardless of locality.
    pub fn total_bytes(&self) -> u64 {
        self.local_bytes + self.remote_bytes
    }
}

impl fmt::Display for NetSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "local_msgs={} local_bytes={} remote_msgs={} remote_bytes={}",
            self.local_msgs, self.local_bytes, self.remote_msgs, self.remote_bytes
        )
    }
}

/// Latency/bandwidth network model for converting [`NetSnapshot`]s into
/// modeled communication time. Local messages are free.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkCostModel {
    /// Per-message latency (the MPI/TCP round-trip setup cost).
    pub latency: Duration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

impl NetworkCostModel {
    /// Switched gigabit Ethernet as on the thesis' evaluation cluster:
    /// ~80 µs message latency, ~110 MB/s sustained.
    pub fn gigabit_2006() -> NetworkCostModel {
        NetworkCostModel {
            latency: Duration::from_micros(80),
            bandwidth_bytes_per_sec: 110.0 * 1024.0 * 1024.0,
        }
    }

    /// Modeled time for the remote traffic in a snapshot.
    pub fn modeled_time(&self, net: &NetSnapshot) -> Duration {
        let transfer = if self.bandwidth_bytes_per_sec.is_finite() {
            Duration::from_secs_f64(net.remote_bytes as f64 / self.bandwidth_bytes_per_sec)
        } else {
            Duration::ZERO
        };
        self.latency * (net.remote_msgs as u32) + transfer
    }
}

impl Default for NetworkCostModel {
    fn default() -> Self {
        NetworkCostModel::gigabit_2006()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_split() {
        let s = NetStats::new();
        s.record(0, 0, 100);
        s.record(0, 1, 200);
        s.record(2, 1, 50);
        let snap = s.snapshot();
        assert_eq!(snap.local_msgs, 1);
        assert_eq!(snap.local_bytes, 100);
        assert_eq!(snap.remote_msgs, 2);
        assert_eq!(snap.remote_bytes, 250);
    }

    #[test]
    fn model_charges_remote_only() {
        let m = NetworkCostModel::gigabit_2006();
        let local_only = NetSnapshot {
            local_msgs: 1000,
            local_bytes: 1 << 30,
            ..Default::default()
        };
        assert_eq!(m.modeled_time(&local_only), Duration::ZERO);
        let remote = NetSnapshot {
            remote_msgs: 1000,
            remote_bytes: 0,
            ..Default::default()
        };
        assert_eq!(m.modeled_time(&remote), Duration::from_micros(80) * 1000);
    }

    #[test]
    fn since_subtracts() {
        let s = NetStats::new();
        s.record(0, 1, 10);
        let a = s.snapshot();
        s.record(0, 1, 20);
        let d = s.snapshot().since(&a);
        assert_eq!(d.remote_msgs, 1);
        assert_eq!(d.remote_bytes, 20);
    }

    #[test]
    fn since_saturates_instead_of_panicking() {
        // A later snapshot from reset counters must clamp to zero, not
        // underflow.
        let high = NetSnapshot {
            local_msgs: 5,
            local_bytes: 50,
            remote_msgs: 7,
            remote_bytes: 70,
        };
        let fresh = NetSnapshot::default();
        let d = fresh.since(&high);
        assert_eq!(d, NetSnapshot::default());
    }

    #[test]
    fn merged_sums_all_fields() {
        let a = NetSnapshot {
            local_msgs: 1,
            local_bytes: 10,
            remote_msgs: 2,
            remote_bytes: 20,
        };
        let b = NetSnapshot {
            local_msgs: 3,
            local_bytes: 30,
            remote_msgs: 4,
            remote_bytes: 40,
        };
        let m = a.merged(&b);
        assert_eq!(m.local_msgs, 4);
        assert_eq!(m.local_bytes, 40);
        assert_eq!(m.remote_msgs, 6);
        assert_eq!(m.remote_bytes, 60);
        assert_eq!(m.total_msgs(), 10);
        assert_eq!(m.total_bytes(), 100);
    }

    #[test]
    fn display_mirrors_io_snapshot_style() {
        let s = NetSnapshot {
            local_msgs: 1,
            local_bytes: 2,
            remote_msgs: 3,
            remote_bytes: 4,
        };
        assert_eq!(
            s.to_string(),
            "local_msgs=1 local_bytes=2 remote_msgs=3 remote_bytes=4"
        );
    }
}
