//! Filter-graph construction.

use crate::fault::FaultPlan;
use crate::filter::Filter;
use crate::NodeId;
use mssg_obs::Telemetry;
use std::time::Duration;

/// Factory producing one filter instance per transparent copy. Receives
/// the copy index.
pub type FilterFactory = Box<dyn FnMut(usize) -> Box<dyn Filter> + Send>;

/// Handle to a filter added to a [`GraphBuilder`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FilterHandle(pub(crate) usize);

pub(crate) struct FilterDef {
    pub name: String,
    pub placement: Vec<NodeId>,
    pub factory: FilterFactory,
}

pub(crate) struct StreamDef {
    pub from: usize,
    pub out_port: String,
    pub to: usize,
    pub in_port: String,
    /// River-style demand-driven stream: one shared queue all consumer
    /// copies pull from, instead of one addressable queue per copy.
    pub shared: bool,
}

/// Builds a filter graph: filters with placements, connected by logical
/// streams. Consumed by [`GraphBuilder::run`].
pub struct GraphBuilder {
    pub(crate) filters: Vec<FilterDef>,
    pub(crate) streams: Vec<StreamDef>,
    pub(crate) channel_capacity: usize,
    pub(crate) telemetry: Telemetry,
    pub(crate) stream_timeout: Option<Duration>,
    pub(crate) fault_plan: Option<FaultPlan>,
    pub(crate) max_restarts: u32,
    pub(crate) restart_backoff: Duration,
}

impl GraphBuilder {
    /// An empty graph with the default stream capacity (1024 buffers),
    /// disabled telemetry, no stream timeouts, no fault plan, and no
    /// supervision (a failed copy fails the run, as DataCutter's did).
    pub fn new() -> GraphBuilder {
        GraphBuilder {
            filters: Vec::new(),
            streams: Vec::new(),
            channel_capacity: 1024,
            telemetry: Telemetry::disabled(),
            stream_timeout: None,
            fault_plan: None,
            max_restarts: 0,
            restart_backoff: Duration::from_millis(25),
        }
    }

    /// Sets the bounded capacity of every stream (backpressure depth).
    pub fn channel_capacity(&mut self, cap: usize) -> &mut Self {
        assert!(cap > 0, "capacity must be positive");
        self.channel_capacity = cap;
        self
    }

    /// Attaches a telemetry bundle: the runtime then emits per-filter-copy
    /// spans, samples queue occupancy into the metrics registry, and
    /// filters can reach it via `FilterContext::telemetry`.
    pub fn telemetry(&mut self, telemetry: Telemetry) -> &mut Self {
        self.telemetry = telemetry;
        self
    }

    /// Bounds every stream send and recv: an operation still blocked after
    /// `timeout` fails with a typed
    /// [`GraphStorageError::Timeout`](mssg_types::GraphStorageError::Timeout)
    /// instead of hanging — the guard that turns a dead peer into a clean
    /// error. Off by default (operations block indefinitely).
    pub fn stream_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.stream_timeout = Some(timeout);
        self
    }

    /// Attaches a [`FaultPlan`]: the scheduled panics, send errors, and
    /// stalls are injected at the planned port operations, and every fault
    /// that fires is recorded in
    /// [`RunReport::faults`](crate::RunReport::faults) and the
    /// `dc.faults_injected` counter.
    pub fn fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Supervises filter copies: a copy that *panics* is rebuilt from its
    /// factory and restarted — up to `max_restarts` times per copy, with
    /// exponential backoff starting at `backoff` — before the run fails
    /// with a typed
    /// [`GraphStorageError::FilterFailed`](mssg_types::GraphStorageError::FilterFailed).
    /// Restarts are recorded in
    /// [`RunReport::restarts`](crate::RunReport::restarts) and the
    /// `dc.restarts` counter.
    ///
    /// Restart re-delivers nothing the crashed incarnation had already
    /// consumed, and errors *returned* by a filter are fail-stop (they
    /// propagate immediately, like an unsupervised run) — see the crate's
    /// "Fault tolerance" section for the exact guarantees.
    pub fn supervise(&mut self, max_restarts: u32, backoff: Duration) -> &mut Self {
        self.max_restarts = max_restarts;
        self.restart_backoff = backoff;
        self
    }

    /// Adds a filter with one transparent copy per placement entry.
    /// `factory(i)` builds the `i`-th copy.
    pub fn add_filter(
        &mut self,
        name: &str,
        placement: Vec<NodeId>,
        factory: impl FnMut(usize) -> Box<dyn Filter> + Send + 'static,
    ) -> FilterHandle {
        assert!(
            !placement.is_empty(),
            "filter {name:?} needs at least one placement"
        );
        self.filters.push(FilterDef {
            name: name.to_string(),
            placement,
            factory: Box::new(factory),
        });
        FilterHandle(self.filters.len() - 1)
    }

    /// Connects `from.out_port` to `to.in_port`. Every copy of `from` can
    /// address every copy of `to` (targeted, round-robin, or broadcast —
    /// chosen per send). Cycles, self-connections, and multiple streams
    /// into one input port are allowed; the input port merges producers.
    pub fn connect(&mut self, from: FilterHandle, out_port: &str, to: FilterHandle, in_port: &str) {
        assert!(from.0 < self.filters.len() && to.0 < self.filters.len());
        self.streams.push(StreamDef {
            from: from.0,
            out_port: out_port.to_string(),
            to: to.0,
            in_port: in_port.to_string(),
            shared: false,
        });
    }

    /// Connects through a single **shared queue** that every copy of `to`
    /// pulls from — the demand-driven distribution of the River system the
    /// thesis reviews ("processing filters take work from a distributed
    /// queue, thereby adaptively allocating work where it is needed
    /// most"). Sends are not addressable (`send_to(0)`, `send_rr`, and
    /// `broadcast` all enqueue once); whichever consumer is free first
    /// dequeues. Traffic is accounted as remote, as a distributed queue's
    /// would be.
    pub fn connect_shared(
        &mut self,
        from: FilterHandle,
        out_port: &str,
        to: FilterHandle,
        in_port: &str,
    ) {
        assert!(from.0 < self.filters.len() && to.0 < self.filters.len());
        self.streams.push(StreamDef {
            from: from.0,
            out_port: out_port.to_string(),
            to: to.0,
            in_port: in_port.to_string(),
            shared: true,
        });
    }

    /// Instantiates and runs the graph to completion; see
    /// [`crate::runtime`].
    pub fn run(self) -> mssg_types::Result<crate::runtime::RunReport> {
        crate::runtime::run(self)
    }
}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder::new()
    }
}
