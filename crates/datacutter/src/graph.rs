//! Filter-graph construction.

use crate::filter::Filter;
use crate::NodeId;
use mssg_obs::Telemetry;

/// Factory producing one filter instance per transparent copy. Receives
/// the copy index.
pub type FilterFactory = Box<dyn FnMut(usize) -> Box<dyn Filter> + Send>;

/// Handle to a filter added to a [`GraphBuilder`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FilterHandle(pub(crate) usize);

pub(crate) struct FilterDef {
    pub name: String,
    pub placement: Vec<NodeId>,
    pub factory: FilterFactory,
}

pub(crate) struct StreamDef {
    pub from: usize,
    pub out_port: String,
    pub to: usize,
    pub in_port: String,
    /// River-style demand-driven stream: one shared queue all consumer
    /// copies pull from, instead of one addressable queue per copy.
    pub shared: bool,
}

/// Builds a filter graph: filters with placements, connected by logical
/// streams. Consumed by [`GraphBuilder::run`].
pub struct GraphBuilder {
    pub(crate) filters: Vec<FilterDef>,
    pub(crate) streams: Vec<StreamDef>,
    pub(crate) channel_capacity: usize,
    pub(crate) telemetry: Telemetry,
}

impl GraphBuilder {
    /// An empty graph with the default stream capacity (1024 buffers) and
    /// disabled telemetry.
    pub fn new() -> GraphBuilder {
        GraphBuilder {
            filters: Vec::new(),
            streams: Vec::new(),
            channel_capacity: 1024,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Sets the bounded capacity of every stream (backpressure depth).
    pub fn channel_capacity(&mut self, cap: usize) -> &mut Self {
        assert!(cap > 0, "capacity must be positive");
        self.channel_capacity = cap;
        self
    }

    /// Attaches a telemetry bundle: the runtime then emits per-filter-copy
    /// spans, samples queue occupancy into the metrics registry, and
    /// filters can reach it via `FilterContext::telemetry`.
    pub fn telemetry(&mut self, telemetry: Telemetry) -> &mut Self {
        self.telemetry = telemetry;
        self
    }

    /// Adds a filter with one transparent copy per placement entry.
    /// `factory(i)` builds the `i`-th copy.
    pub fn add_filter(
        &mut self,
        name: &str,
        placement: Vec<NodeId>,
        factory: impl FnMut(usize) -> Box<dyn Filter> + Send + 'static,
    ) -> FilterHandle {
        assert!(
            !placement.is_empty(),
            "filter {name:?} needs at least one placement"
        );
        self.filters.push(FilterDef {
            name: name.to_string(),
            placement,
            factory: Box::new(factory),
        });
        FilterHandle(self.filters.len() - 1)
    }

    /// Connects `from.out_port` to `to.in_port`. Every copy of `from` can
    /// address every copy of `to` (targeted, round-robin, or broadcast —
    /// chosen per send). Cycles, self-connections, and multiple streams
    /// into one input port are allowed; the input port merges producers.
    pub fn connect(&mut self, from: FilterHandle, out_port: &str, to: FilterHandle, in_port: &str) {
        assert!(from.0 < self.filters.len() && to.0 < self.filters.len());
        self.streams.push(StreamDef {
            from: from.0,
            out_port: out_port.to_string(),
            to: to.0,
            in_port: in_port.to_string(),
            shared: false,
        });
    }

    /// Connects through a single **shared queue** that every copy of `to`
    /// pulls from — the demand-driven distribution of the River system the
    /// thesis reviews ("processing filters take work from a distributed
    /// queue, thereby adaptively allocating work where it is needed
    /// most"). Sends are not addressable (`send_to(0)`, `send_rr`, and
    /// `broadcast` all enqueue once); whichever consumer is free first
    /// dequeues. Traffic is accounted as remote, as a distributed queue's
    /// would be.
    pub fn connect_shared(
        &mut self,
        from: FilterHandle,
        out_port: &str,
        to: FilterHandle,
        in_port: &str,
    ) {
        assert!(from.0 < self.filters.len() && to.0 < self.filters.len());
        self.streams.push(StreamDef {
            from: from.0,
            out_port: out_port.to_string(),
            to: to.0,
            in_port: in_port.to_string(),
            shared: true,
        });
    }

    /// Instantiates and runs the graph to completion; see
    /// [`crate::runtime`].
    pub fn run(self) -> mssg_types::Result<crate::runtime::RunReport> {
        crate::runtime::run(self)
    }
}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder::new()
    }
}
