//! Filter-graph construction.

use crate::fault::FaultPlan;
use crate::filter::Filter;
use crate::NodeId;
use mssg_obs::Telemetry;
use mssg_types::VerifyError;
use std::collections::HashMap;
use std::time::Duration;

/// Factory producing one filter instance per transparent copy. Receives
/// the copy index.
pub type FilterFactory = Box<dyn FnMut(usize) -> Box<dyn Filter> + Send>;

/// Handle to a filter added to a [`GraphBuilder`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FilterHandle(pub(crate) usize);

pub(crate) struct FilterDef {
    pub name: String,
    pub placement: Vec<NodeId>,
    pub factory: FilterFactory,
}

pub(crate) struct StreamDef {
    pub from: usize,
    pub out_port: String,
    pub to: usize,
    pub in_port: String,
    /// River-style demand-driven stream: one shared queue all consumer
    /// copies pull from, instead of one addressable queue per copy.
    pub shared: bool,
}

/// Opt-in port declarations for one filter, enabling the verifier's
/// wiring checks (see [`GraphBuilder::declare_ports`]).
#[derive(Clone, Debug, Default)]
pub(crate) struct PortDecls {
    pub inputs: Vec<String>,
    pub outputs: Vec<String>,
}

/// Builds a filter graph: filters with placements, connected by logical
/// streams. Consumed by [`GraphBuilder::run`].
pub struct GraphBuilder {
    pub(crate) filters: Vec<FilterDef>,
    pub(crate) streams: Vec<StreamDef>,
    pub(crate) channel_capacity: usize,
    pub(crate) telemetry: Telemetry,
    pub(crate) stream_timeout: Option<Duration>,
    pub(crate) fault_plan: Option<FaultPlan>,
    pub(crate) max_restarts: u32,
    pub(crate) restart_backoff: Duration,
    /// Opt-in port declarations, keyed by filter index.
    pub(crate) decls: HashMap<usize, PortDecls>,
    /// Declared per-copy send windows, keyed by (filter, out_port):
    /// the most buffers one copy may emit on that port before it next
    /// blocks on a receive. Default 1 (see the verifier docs).
    pub(crate) windows: HashMap<(usize, String), u64>,
    /// Declared consumer-copy contracts, keyed by (filter, out_port).
    pub(crate) expected_consumers: HashMap<(usize, String), usize>,
    /// When `true` (default), `run` rejects graphs that fail `verify`.
    pub(crate) verify_gate: bool,
}

impl GraphBuilder {
    /// An empty graph with the default stream capacity (1024 buffers),
    /// disabled telemetry, no stream timeouts, no fault plan, and no
    /// supervision (a failed copy fails the run, as DataCutter's did).
    pub fn new() -> GraphBuilder {
        GraphBuilder {
            filters: Vec::new(),
            streams: Vec::new(),
            channel_capacity: 1024,
            telemetry: Telemetry::disabled(),
            stream_timeout: None,
            fault_plan: None,
            max_restarts: 0,
            restart_backoff: Duration::from_millis(25),
            decls: HashMap::new(),
            windows: HashMap::new(),
            expected_consumers: HashMap::new(),
            verify_gate: true,
        }
    }

    /// Sets the bounded capacity of every stream (backpressure depth).
    pub fn channel_capacity(&mut self, cap: usize) -> &mut Self {
        assert!(cap > 0, "capacity must be positive");
        self.channel_capacity = cap;
        self
    }

    /// Attaches a telemetry bundle: the runtime then emits per-filter-copy
    /// spans, samples queue occupancy into the metrics registry, and
    /// filters can reach it via `FilterContext::telemetry`.
    pub fn telemetry(&mut self, telemetry: Telemetry) -> &mut Self {
        self.telemetry = telemetry;
        self
    }

    /// Bounds every stream send and recv: an operation still blocked after
    /// `timeout` fails with a typed
    /// [`GraphStorageError::Timeout`](mssg_types::GraphStorageError::Timeout)
    /// instead of hanging — the guard that turns a dead peer into a clean
    /// error. Off by default (operations block indefinitely).
    pub fn stream_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.stream_timeout = Some(timeout);
        self
    }

    /// Attaches a [`FaultPlan`]: the scheduled panics, send errors, and
    /// stalls are injected at the planned port operations, and every fault
    /// that fires is recorded in
    /// [`RunReport::faults`](crate::RunReport::faults) and the
    /// `dc.faults_injected` counter.
    pub fn fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Supervises filter copies: a copy that *panics* is rebuilt from its
    /// factory and restarted — up to `max_restarts` times per copy, with
    /// exponential backoff starting at `backoff` — before the run fails
    /// with a typed
    /// [`GraphStorageError::FilterFailed`](mssg_types::GraphStorageError::FilterFailed).
    /// Restarts are recorded in
    /// [`RunReport::restarts`](crate::RunReport::restarts) and the
    /// `dc.restarts` counter.
    ///
    /// Restart re-delivers nothing the crashed incarnation had already
    /// consumed, and errors *returned* by a filter are fail-stop (they
    /// propagate immediately, like an unsupervised run) — see the crate's
    /// "Fault tolerance" section for the exact guarantees.
    pub fn supervise(&mut self, max_restarts: u32, backoff: Duration) -> &mut Self {
        self.max_restarts = max_restarts;
        self.restart_backoff = backoff;
        self
    }

    /// Adds a filter with one transparent copy per placement entry.
    /// `factory(i)` builds the `i`-th copy.
    ///
    /// Rejects duplicate filter names and empty placements with a typed
    /// [`VerifyError`] — silently shadowing an existing filter was the
    /// classic last-write-wins footgun.
    pub fn add_filter(
        &mut self,
        name: &str,
        placement: Vec<NodeId>,
        factory: impl FnMut(usize) -> Box<dyn Filter> + Send + 'static,
    ) -> Result<FilterHandle, VerifyError> {
        if placement.is_empty() {
            return Err(VerifyError::EmptyPlacement {
                filter: name.to_string(),
            });
        }
        if self.filters.iter().any(|f| f.name == name) {
            return Err(VerifyError::DuplicateFilter {
                filter: name.to_string(),
            });
        }
        self.filters.push(FilterDef {
            name: name.to_string(),
            placement,
            factory: Box::new(factory),
        });
        Ok(FilterHandle(self.filters.len() - 1))
    }

    /// Shared validation for `connect` / `connect_shared`.
    fn push_stream(
        &mut self,
        from: FilterHandle,
        out_port: &str,
        to: FilterHandle,
        in_port: &str,
        shared: bool,
    ) -> Result<(), VerifyError> {
        assert!(from.0 < self.filters.len() && to.0 < self.filters.len());
        for s in &self.streams {
            let same_edge =
                s.from == from.0 && s.out_port == out_port && s.to == to.0 && s.in_port == in_port;
            if same_edge && s.shared == shared {
                return Err(VerifyError::DuplicateStream {
                    from: self.filters[from.0].name.clone(),
                    out_port: out_port.to_string(),
                    to: self.filters[to.0].name.clone(),
                    in_port: in_port.to_string(),
                });
            }
            // Mixing one shared and one addressed stream into a single
            // input port would be ambiguous: which queue discipline wins?
            if s.to == to.0 && s.in_port == in_port && s.shared != shared {
                return Err(VerifyError::MixedWiring {
                    filter: self.filters[to.0].name.clone(),
                    in_port: in_port.to_string(),
                });
            }
            // A logical stream is point-to-point in the DataCutter model:
            // one out_port feeds exactly one (filter, in_port). Fan-out is
            // expressed by consumer copies, not by re-connecting the port.
            if s.from == from.0 && s.out_port == out_port {
                return Err(VerifyError::OutPortConflict {
                    filter: self.filters[from.0].name.clone(),
                    out_port: out_port.to_string(),
                    first: format!("{}.{}", self.filters[s.to].name, s.in_port),
                    second: format!("{}.{}", self.filters[to.0].name, in_port),
                });
            }
        }
        self.streams.push(StreamDef {
            from: from.0,
            out_port: out_port.to_string(),
            to: to.0,
            in_port: in_port.to_string(),
            shared,
        });
        Ok(())
    }

    /// Connects `from.out_port` to `to.in_port`. Every copy of `from` can
    /// address every copy of `to` (targeted, round-robin, or broadcast —
    /// chosen per send). Cycles, self-connections, and multiple streams
    /// into one input port are allowed; the input port merges producers.
    ///
    /// Rejects, with a typed [`VerifyError`]: the exact same edge
    /// connected twice, an out port re-wired to a second destination,
    /// and mixed shared/addressed wiring of one input port.
    pub fn connect(
        &mut self,
        from: FilterHandle,
        out_port: &str,
        to: FilterHandle,
        in_port: &str,
    ) -> Result<(), VerifyError> {
        self.push_stream(from, out_port, to, in_port, false)
    }

    /// Connects through a single **shared queue** that every copy of `to`
    /// pulls from — the demand-driven distribution of the River system the
    /// thesis reviews ("processing filters take work from a distributed
    /// queue, thereby adaptively allocating work where it is needed
    /// most"). Sends are not addressable (`send_to(0)`, `send_rr`, and
    /// `broadcast` all enqueue once); whichever consumer is free first
    /// dequeues. Traffic is accounted as remote, as a distributed queue's
    /// would be.
    ///
    /// Rejects the same wiring defects as [`connect`](Self::connect).
    pub fn connect_shared(
        &mut self,
        from: FilterHandle,
        out_port: &str,
        to: FilterHandle,
        in_port: &str,
    ) -> Result<(), VerifyError> {
        self.push_stream(from, out_port, to, in_port, true)
    }

    /// Declares the complete port set of `filter`, opting it into the
    /// verifier's wiring checks: every declared port must be connected,
    /// and every stream touching the filter must use a declared port.
    /// Filters without declarations only get the structural checks.
    pub fn declare_ports(
        &mut self,
        filter: FilterHandle,
        inputs: &[&str],
        outputs: &[&str],
    ) -> &mut Self {
        self.decls.insert(
            filter.0,
            PortDecls {
                inputs: inputs.iter().map(|s| s.to_string()).collect(),
                outputs: outputs.iter().map(|s| s.to_string()).collect(),
            },
        );
        self
    }

    /// Declares the per-copy **send window** of `filter.out_port`: the
    /// most buffers one copy may emit on that port before it next blocks
    /// on a receive (a broadcast counts as one send per consumer copy).
    /// The verifier's credit-flow analysis uses it to bound the
    /// in-flight demand of cycles through this port; the default is 1,
    /// the weakest assumption that still accepts ordinary
    /// recv-one-send-one pipelines.
    pub fn send_window(&mut self, filter: FilterHandle, out_port: &str, window: u64) -> &mut Self {
        self.windows
            .insert((filter.0, out_port.to_string()), window.max(1));
        self
    }

    /// Declares how many consumer copies `filter.out_port` addresses —
    /// its decluster contract. The verifier then checks the wired
    /// consumer's copy count against it, catching the classic mismatch
    /// where a producer round-robins or targets by `copy_index` across a
    /// different fan-out than the one actually deployed.
    pub fn expect_consumers(
        &mut self,
        filter: FilterHandle,
        out_port: &str,
        copies: usize,
    ) -> &mut Self {
        self.expected_consumers
            .insert((filter.0, out_port.to_string()), copies);
        self
    }

    /// Disables the pre-launch verification gate in
    /// [`run`](Self::run) — for experiments that deliberately launch a
    /// rejected topology (e.g. to demonstrate the deadlock the verifier
    /// predicted). Production callers should never need this.
    pub fn allow_unverified(&mut self) -> &mut Self {
        self.verify_gate = false;
        self
    }

    /// Statically verifies the graph's topology: declared-port wiring,
    /// consumer-copy contracts, and bounded-buffer deadlock freedom of
    /// every cycle (credit-flow analysis). Returns *all* findings, not
    /// just the first. See [`crate::verify`] for what the analysis
    /// proves and what it cannot.
    pub fn verify(&self) -> Result<(), Vec<VerifyError>> {
        crate::verify::verify(self)
    }

    /// Instantiates and runs the graph to completion; see
    /// [`crate::runtime`]. Unless [`allow_unverified`](Self::allow_unverified)
    /// was called, a graph that fails [`verify`](Self::verify) is
    /// refused with `GraphStorageError::Verify` before any filter runs.
    pub fn run(self) -> mssg_types::Result<crate::runtime::RunReport> {
        crate::runtime::run(self)
    }

    /// Runs only the copies placed on `node`, carrying cross-node
    /// streams over `transport` — see [`crate::runtime::run_node`].
    pub fn run_node(
        self,
        node: NodeId,
        transport: &mut dyn crate::transport::Transport,
    ) -> mssg_types::Result<crate::runtime::RunReport> {
        crate::runtime::run_node(self, node, transport)
    }

    /// A stable hash of the graph's wiring-relevant shape: filter names
    /// and placements, stream edges (with queue discipline), and the
    /// channel capacity. Two processes can cooperate on one distributed
    /// run only if their descriptions hash identically — the transport's
    /// handshake compares this value and refuses mismatched peers.
    /// Factories, telemetry, timeouts, and fault plans are process-local
    /// and deliberately excluded.
    pub fn topology_signature(&self) -> u64 {
        // FNV-1a over a canonical rendering; stable across processes and
        // platforms (no pointer- or hashmap-order-dependent input).
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(&(self.channel_capacity as u64).to_le_bytes());
        for f in &self.filters {
            eat(f.name.as_bytes());
            eat(&[0]);
            for &n in &f.placement {
                eat(&(n as u64).to_le_bytes());
            }
            eat(&[1]);
        }
        for s in &self.streams {
            eat(&(s.from as u64).to_le_bytes());
            eat(s.out_port.as_bytes());
            eat(&[0]);
            eat(&(s.to as u64).to_le_bytes());
            eat(s.in_port.as_bytes());
            eat(&[if s.shared { 2 } else { 3 }]);
        }
        h
    }
}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder::new()
    }
}
