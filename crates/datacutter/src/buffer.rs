//! Data buffers — the unit of exchange on logical streams.

use bytes::Bytes;
use mssg_types::Edge;

/// A tagged byte buffer.
///
/// The `tag` is application-defined; MSSG uses it for the message kind and
/// the sender's copy index. Payloads are cheaply cloneable (`Bytes`) so
/// broadcast does not copy the body per consumer — matching DataCutter,
/// where a broadcast shares one buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DataBuffer {
    /// Application-defined tag.
    pub tag: u64,
    /// Payload bytes.
    pub data: Bytes,
}

impl DataBuffer {
    /// Creates a buffer from raw bytes.
    pub fn new(tag: u64, data: Vec<u8>) -> DataBuffer {
        DataBuffer {
            tag,
            data: Bytes::from(data),
        }
    }

    /// An empty (control) message.
    pub fn control(tag: u64) -> DataBuffer {
        DataBuffer {
            tag,
            data: Bytes::new(),
        }
    }

    /// Encodes a slice of 64-bit words (little-endian).
    pub fn from_words(tag: u64, words: &[u64]) -> DataBuffer {
        let mut data = Vec::with_capacity(words.len() * 8);
        for w in words {
            data.extend_from_slice(&w.to_le_bytes());
        }
        DataBuffer::new(tag, data)
    }

    /// Decodes the payload as 64-bit words.
    ///
    /// # Panics
    /// Panics if the payload length is not a multiple of 8.
    pub fn words(&self) -> Vec<u64> {
        assert!(
            self.data.len().is_multiple_of(8),
            "payload is not a word vector"
        );
        self.data
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Encodes a slice of edges (16 bytes each).
    pub fn from_edges(tag: u64, edges: &[Edge]) -> DataBuffer {
        let mut data = Vec::with_capacity(edges.len() * 16);
        for e in edges {
            data.extend_from_slice(&e.to_bytes());
        }
        DataBuffer::new(tag, data)
    }

    /// Decodes the payload as edges.
    ///
    /// # Panics
    /// Panics if the payload length is not a multiple of 16.
    pub fn edges(&self) -> Vec<Edge> {
        assert!(
            self.data.len().is_multiple_of(16),
            "payload is not an edge vector"
        );
        self.data
            .chunks_exact(16)
            .map(|c| Edge::from_bytes(c.try_into().unwrap()))
            .collect()
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for an empty payload.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        let b = DataBuffer::from_words(7, &[1, 2, u64::MAX]);
        assert_eq!(b.tag, 7);
        assert_eq!(b.words(), vec![1, 2, u64::MAX]);
        assert_eq!(b.len(), 24);
    }

    #[test]
    fn edge_roundtrip() {
        let edges = vec![Edge::of(1, 2), Edge::of(3, 4)];
        let b = DataBuffer::from_edges(0, &edges);
        assert_eq!(b.edges(), edges);
    }

    #[test]
    fn control_is_empty() {
        let c = DataBuffer::control(9);
        assert!(c.is_empty());
        assert_eq!(c.words(), Vec::<u64>::new());
    }

    #[test]
    #[should_panic(expected = "not a word vector")]
    fn misaligned_words_panic() {
        DataBuffer::new(0, vec![1, 2, 3]).words();
    }

    #[test]
    fn clone_shares_payload() {
        let b = DataBuffer::from_words(0, &(0..1000).collect::<Vec<_>>());
        let c = b.clone();
        // Bytes clones share the allocation: identical pointers.
        assert_eq!(b.data.as_ptr(), c.data.as_ptr());
    }
}
