//! The filter interface and its stream ports.

use crate::buffer::DataBuffer;
use crate::fault::CopyFaults;
use crate::netstats::NetStats;
use crate::transport::{RecvOutcome, RxEndpoint, SendOutcome, TxEndpoint};
use crate::NodeId;
use mssg_obs::{Histogram, Telemetry};
use mssg_types::{GraphStorageError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-copy blocked-time accounting, shared between a copy's ports and
/// the runtime. Nanoseconds spent parked on channel operations; the
/// runtime subtracts them from the copy's wall time to get busy time.
#[derive(Debug, Default)]
pub(crate) struct PortClocks {
    /// Time blocked inside `InPort::recv`.
    pub(crate) blocked_recv_ns: AtomicU64,
    /// Time blocked inside `OutPort` sends.
    pub(crate) blocked_send_ns: AtomicU64,
    /// Wall time of the whole filter lifecycle, set once by the runtime.
    pub(crate) total_ns: AtomicU64,
}

/// A processing component. The runtime calls `init`, then `process`, then
/// `finalize`, on the filter's own thread. `process` typically loops on an
/// input port until it drains (`recv` returns `Ok(None)` once every
/// producer has finished).
pub trait Filter: Send {
    /// One-time setup before any data flows.
    fn init(&mut self, _ctx: &mut FilterContext) -> Result<()> {
        Ok(())
    }

    /// The filter's main loop.
    fn process(&mut self, ctx: &mut FilterContext) -> Result<()>;

    /// Cleanup after `process` returns; output ports are still open.
    fn finalize(&mut self, _ctx: &mut FilterContext) -> Result<()> {
        Ok(())
    }
}

/// Receiving end of a logical stream (all producer copies merged).
pub struct InPort {
    pub(crate) name: String,
    pub(crate) rx: Box<dyn RxEndpoint>,
    /// Blocked-time clocks of the owning copy (absent in bare test ports).
    pub(crate) clocks: Option<Arc<PortClocks>>,
    /// Give-up deadline per `recv` (from `GraphBuilder::stream_timeout`).
    pub(crate) timeout: Option<Duration>,
    /// Injection state when a `FaultPlan` targets the owning copy.
    pub(crate) faults: Option<Arc<CopyFaults>>,
}

impl InPort {
    /// Blocks for the next buffer. `Ok(None)` once every producer has
    /// closed; [`GraphStorageError::Timeout`] if a stream timeout is
    /// configured and elapses first (the guard against a dead peer that
    /// never closes its end); [`GraphStorageError::Net`] if the transport
    /// itself fails (a lost peer connection over sockets); an injected
    /// fault may panic or stall here.
    pub fn recv(&self) -> Result<Option<DataBuffer>> {
        if let Some(f) = &self.faults {
            f.tick(false)?;
        }
        let start = self.clocks.as_ref().map(|_| Instant::now());
        let got = match self.rx.recv(self.timeout) {
            RecvOutcome::Buf(buf) => Ok(Some(buf)),
            RecvOutcome::Closed => Ok(None),
            RecvOutcome::TimedOut => Err(GraphStorageError::Timeout(format!(
                "recv on input port {:?} gave up after {:?}",
                self.name,
                self.timeout.unwrap_or_default()
            ))),
            RecvOutcome::Failed(e) => Err(e),
        };
        if let (Some(clocks), Some(start)) = (&self.clocks, start) {
            // racecheck: timing counter, read only after the runtime joins.
            clocks
                .blocked_recv_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        got
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<DataBuffer> {
        self.rx.try_recv()
    }

    /// Drains everything currently queued without blocking.
    pub fn drain(&self) -> Vec<DataBuffer> {
        let mut out = Vec::new();
        while let Some(b) = self.try_recv() {
            out.push(b);
        }
        out
    }

    /// A fresh port on the same endpoint, for a restarted incarnation.
    pub(crate) fn clone_port(&self) -> InPort {
        InPort {
            name: self.name.clone(),
            rx: self.rx.clone_endpoint(),
            clocks: self.clocks.clone(),
            timeout: self.timeout,
            faults: self.faults.clone(),
        }
    }
}

/// Sending end of a logical stream: one endpoint per consumer copy.
pub struct OutPort {
    pub(crate) name: String,
    pub(crate) senders: Vec<Box<dyn TxEndpoint>>,
    pub(crate) my_node: NodeId,
    pub(crate) rr: usize,
    pub(crate) stats: Arc<NetStats>,
    /// Blocked-time clocks of the owning copy (absent in bare test ports).
    pub(crate) clocks: Option<Arc<PortClocks>>,
    /// Queue occupancy sampled after each send — backpressure visibility.
    pub(crate) queue_depth: Option<Histogram>,
    /// Give-up deadline per send (from `GraphBuilder::stream_timeout`).
    pub(crate) timeout: Option<Duration>,
    /// Injection state when a `FaultPlan` targets the owning copy.
    pub(crate) faults: Option<Arc<CopyFaults>>,
}

impl OutPort {
    /// Number of consumer copies reachable from this port.
    pub fn consumers(&self) -> usize {
        self.senders.len()
    }

    /// Sends to a specific consumer copy — the addressing mode the
    /// declustering strategies and the vertex-owner fringe exchange use.
    ///
    /// With a stream timeout configured, a send that stays backpressured
    /// past the deadline fails with [`GraphStorageError::Timeout`]; an
    /// injected [`FaultKind::SendError`](crate::FaultKind::SendError)
    /// surfaces as [`GraphStorageError::Fault`] without delivering; a
    /// transport failure (lost peer connection) surfaces as
    /// [`GraphStorageError::Net`].
    pub fn send_to(&mut self, copy: usize, buf: DataBuffer) -> Result<()> {
        if let Some(f) = &self.faults {
            f.tick(true)?;
        }
        let sender = self.senders.get(copy).ok_or_else(|| {
            GraphStorageError::Unsupported(format!(
                "port has {} consumers, copy {copy} addressed",
                self.senders.len()
            ))
        })?;
        // The endpoint reports what this payload costs on *its* wire —
        // payload-only for a memory copy, payload + frame header over a
        // socket — so NetStats reflects real framing overhead.
        self.stats.record(
            self.my_node,
            sender.dst_node(),
            sender.wire_bytes(buf.len()),
        );
        let start = self.clocks.as_ref().map(|_| Instant::now());
        let sent: Result<()> = match sender.send(buf, self.timeout) {
            SendOutcome::Sent => Ok(()),
            SendOutcome::Closed => Err(GraphStorageError::Unsupported("consumer hung up".into())),
            SendOutcome::TimedOut => Err(GraphStorageError::Timeout(format!(
                "send on output port {:?} gave up after {:?}",
                self.name,
                self.timeout.unwrap_or_default()
            ))),
            SendOutcome::Failed(e) => Err(e),
        };
        if let (Some(clocks), Some(start)) = (&self.clocks, start) {
            // racecheck: timing counter, read only after the runtime joins.
            clocks
                .blocked_send_ns
                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
        if let Some(depth) = &self.queue_depth {
            depth.record(sender.queue_len() as u64);
        }
        sent
    }

    /// Sends to the next consumer in round-robin order.
    pub fn send_rr(&mut self, buf: DataBuffer) -> Result<()> {
        let copy = self.rr % self.senders.len();
        self.rr += 1;
        self.send_to(copy, buf)
    }

    /// Sends a clone to every consumer copy (payload shared, not copied).
    pub fn broadcast(&mut self, buf: DataBuffer) -> Result<()> {
        for copy in 0..self.senders.len() {
            self.send_to(copy, buf.clone())?;
        }
        Ok(())
    }

    /// A fresh port on the same endpoints, for a restarted incarnation.
    /// Endpoint clones share close identity, so a restart never closes a
    /// stream the original still holds.
    pub(crate) fn clone_port(&self) -> OutPort {
        OutPort {
            name: self.name.clone(),
            senders: self.senders.iter().map(|s| s.clone_endpoint()).collect(),
            my_node: self.my_node,
            rr: self.rr,
            stats: Arc::clone(&self.stats),
            clocks: self.clocks.clone(),
            queue_depth: self.queue_depth.clone(),
            timeout: self.timeout,
            faults: self.faults.clone(),
        }
    }
}

/// Per-instance execution context handed to every [`Filter`] callback.
pub struct FilterContext {
    /// This instance's index among the filter's transparent copies.
    pub copy_index: usize,
    /// Total transparent copies of this filter.
    pub copies: usize,
    /// The logical node this instance is placed on.
    pub node: NodeId,
    pub(crate) inputs: HashMap<String, InPort>,
    pub(crate) outputs: HashMap<String, OutPort>,
    pub(crate) telemetry: Telemetry,
}

impl FilterContext {
    /// The run's telemetry bundle: open spans and record metrics from
    /// inside a filter. Disabled (free) unless the graph was built with an
    /// enabled [`Telemetry`].
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Looks up an input port by name.
    pub fn input(&mut self, name: &str) -> Result<&mut InPort> {
        self.inputs.get_mut(name).ok_or_else(|| {
            GraphStorageError::Unsupported(format!("no input port {name:?} connected"))
        })
    }

    /// Looks up an output port by name.
    pub fn output(&mut self, name: &str) -> Result<&mut OutPort> {
        self.outputs.get_mut(name).ok_or_else(|| {
            GraphStorageError::Unsupported(format!("no output port {name:?} connected"))
        })
    }

    /// Closes an output port early (drops its senders), letting downstream
    /// filters drain before this one finishes.
    pub fn close_output(&mut self, name: &str) {
        self.outputs.remove(name);
    }

    /// `true` if an input port with this name is connected.
    pub fn has_input(&self, name: &str) -> bool {
        self.inputs.contains_key(name)
    }

    /// `true` if an output port with this name is connected.
    pub fn has_output(&self, name: &str) -> bool {
        self.outputs.contains_key(name)
    }

    /// A pristine context on the same channels — what the supervisor hands
    /// a restarted incarnation (ports closed by the previous incarnation
    /// via `close_output` come back open).
    pub(crate) fn clone_ports(&self) -> FilterContext {
        FilterContext {
            copy_index: self.copy_index,
            copies: self.copies,
            node: self.node,
            inputs: self
                .inputs
                .iter()
                .map(|(k, v)| (k.clone(), v.clone_port()))
                .collect(),
            outputs: self
                .outputs
                .iter()
                .map(|(k, v)| (k.clone(), v.clone_port()))
                .collect(),
            telemetry: self.telemetry.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{ChannelRx, ChannelTx};
    use crossbeam::channel::{bounded, Receiver};

    fn out_port(n: usize) -> (OutPort, Vec<Receiver<DataBuffer>>) {
        let mut senders: Vec<Box<dyn TxEndpoint>> = Vec::new();
        let mut receivers = Vec::new();
        for dst in 0..n {
            let (tx, rx) = bounded(16);
            senders.push(Box::new(ChannelTx { tx, dst }));
            receivers.push(rx);
        }
        (
            OutPort {
                name: "out".into(),
                senders,
                my_node: 0,
                rr: 0,
                stats: NetStats::new(),
                clocks: None,
                queue_depth: None,
                timeout: None,
                faults: None,
            },
            receivers,
        )
    }

    fn in_port(rx: Receiver<DataBuffer>, clocks: Option<Arc<PortClocks>>) -> InPort {
        InPort {
            name: "in".into(),
            rx: Box::new(ChannelRx { rx }),
            clocks,
            timeout: None,
            faults: None,
        }
    }

    #[test]
    fn send_to_targets_one_copy() {
        let (mut port, rxs) = out_port(3);
        port.send_to(1, DataBuffer::control(42)).unwrap();
        assert!(rxs[0].try_recv().is_err());
        assert_eq!(rxs[1].try_recv().unwrap().tag, 42);
        assert!(port.send_to(9, DataBuffer::control(0)).is_err());
    }

    #[test]
    fn round_robin_cycles() {
        let (mut port, rxs) = out_port(2);
        for i in 0..4 {
            port.send_rr(DataBuffer::control(i)).unwrap();
        }
        assert_eq!(rxs[0].try_recv().unwrap().tag, 0);
        assert_eq!(rxs[1].try_recv().unwrap().tag, 1);
        assert_eq!(rxs[0].try_recv().unwrap().tag, 2);
        assert_eq!(rxs[1].try_recv().unwrap().tag, 3);
    }

    #[test]
    fn broadcast_reaches_all() {
        let (mut port, rxs) = out_port(3);
        port.broadcast(DataBuffer::from_words(5, &[1])).unwrap();
        for rx in &rxs {
            assert_eq!(rx.try_recv().unwrap().tag, 5);
        }
    }

    #[test]
    fn local_vs_remote_accounting() {
        let (mut port, _rxs) = out_port(2); // consumer nodes 0 and 1; we are node 0
        port.send_to(0, DataBuffer::from_words(0, &[1])).unwrap();
        port.send_to(1, DataBuffer::from_words(0, &[1])).unwrap();
        let snap = port.stats.snapshot();
        assert_eq!(snap.local_msgs, 1);
        assert_eq!(snap.remote_msgs, 1);
        assert_eq!(snap.remote_bytes, 8);
    }

    #[test]
    fn inport_drains() {
        let (tx, rx) = bounded(8);
        tx.send(DataBuffer::control(1)).unwrap();
        tx.send(DataBuffer::control(2)).unwrap();
        let port = in_port(rx, None);
        let drained = port.drain();
        assert_eq!(drained.len(), 2);
        drop(tx);
        assert!(port.recv().unwrap().is_none());
    }

    #[test]
    fn blocked_recv_time_is_accounted() {
        let (tx, rx) = bounded(1);
        let clocks = Arc::new(PortClocks::default());
        let port = in_port(rx, Some(Arc::clone(&clocks)));
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(DataBuffer::control(1)).unwrap();
        });
        assert!(port.recv().unwrap().is_some());
        t.join().unwrap();
        assert!(
            clocks.blocked_recv_ns.load(Ordering::Relaxed) >= 10_000_000,
            "a recv parked ~20ms must show up in the blocked clock"
        );
    }

    #[test]
    fn port_timeouts_surface_as_typed_errors() {
        let (tx, rx) = bounded(1);
        let mut port = in_port(rx, None);
        port.timeout = Some(Duration::from_millis(15));
        match port.recv() {
            Err(GraphStorageError::Timeout(m)) => assert!(m.contains("in")),
            other => panic!("expected recv timeout, got {other:?}"),
        }
        tx.send(DataBuffer::control(1)).unwrap();
        assert!(port.recv().unwrap().is_some());

        let (mut out, rxs) = out_port(1);
        out.timeout = Some(Duration::from_millis(15));
        out.send_to(0, DataBuffer::control(1)).unwrap();
        // Channel capacity is 16: fill it, then the next send must time out.
        for i in 0..15 {
            out.send_to(0, DataBuffer::control(i)).unwrap();
        }
        match out.send_to(0, DataBuffer::control(99)) {
            Err(GraphStorageError::Timeout(_)) => {}
            other => panic!("expected send timeout, got {other:?}"),
        }
        drop(rxs);
        match out.send_to(0, DataBuffer::control(0)) {
            Err(GraphStorageError::Unsupported(m)) => assert!(m.contains("hung up")),
            other => panic!("expected disconnect, got {other:?}"),
        }
    }

    #[test]
    fn queue_depth_sampled_per_send() {
        let depth = Histogram::default();
        let (tx, _rx) = bounded(8);
        let mut port = OutPort {
            name: "out".into(),
            senders: vec![Box::new(ChannelTx { tx, dst: 1 })],
            my_node: 0,
            rr: 0,
            stats: NetStats::new(),
            clocks: Some(Arc::new(PortClocks::default())),
            queue_depth: Some(depth.clone()),
            timeout: None,
            faults: None,
        };
        port.send_to(0, DataBuffer::control(1)).unwrap();
        port.send_to(0, DataBuffer::control(2)).unwrap();
        port.send_to(0, DataBuffer::control(3)).unwrap();
        let snap = depth.snapshot();
        assert_eq!(snap.count, 3, "one occupancy sample per send");
        // Depths observed were 1, 2, 3.
        assert_eq!(snap.sum, 6);
    }
}
