//! The filter interface and its stream ports.

use crate::buffer::DataBuffer;
use crate::netstats::NetStats;
use crate::NodeId;
use crossbeam::channel::{Receiver, Sender};
use mssg_obs::{Histogram, Telemetry};
use mssg_types::{GraphStorageError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-copy blocked-time accounting, shared between a copy's ports and
/// the runtime. Nanoseconds spent parked on channel operations; the
/// runtime subtracts them from the copy's wall time to get busy time.
#[derive(Debug, Default)]
pub(crate) struct PortClocks {
    /// Time blocked inside `InPort::recv`.
    pub(crate) blocked_recv_ns: AtomicU64,
    /// Time blocked inside `OutPort` sends.
    pub(crate) blocked_send_ns: AtomicU64,
    /// Wall time of the whole filter lifecycle, set once by the runtime.
    pub(crate) total_ns: AtomicU64,
}

/// A processing component. The runtime calls `init`, then `process`, then
/// `finalize`, on the filter's own thread. `process` typically loops on an
/// input port until it drains (`recv` returns `None` once every producer
/// has finished).
pub trait Filter: Send {
    /// One-time setup before any data flows.
    fn init(&mut self, _ctx: &mut FilterContext) -> Result<()> {
        Ok(())
    }

    /// The filter's main loop.
    fn process(&mut self, ctx: &mut FilterContext) -> Result<()>;

    /// Cleanup after `process` returns; output ports are still open.
    fn finalize(&mut self, _ctx: &mut FilterContext) -> Result<()> {
        Ok(())
    }
}

/// Receiving end of a logical stream (all producer copies merged).
pub struct InPort {
    pub(crate) rx: Receiver<DataBuffer>,
    /// Blocked-time clocks of the owning copy (absent in bare test ports).
    pub(crate) clocks: Option<Arc<PortClocks>>,
}

impl InPort {
    /// Blocks for the next buffer; `None` when every producer has closed.
    pub fn recv(&self) -> Option<DataBuffer> {
        match &self.clocks {
            None => self.rx.recv().ok(),
            Some(clocks) => {
                let start = Instant::now();
                let got = self.rx.recv().ok();
                clocks
                    .blocked_recv_ns
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                got
            }
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<DataBuffer> {
        self.rx.try_recv().ok()
    }

    /// Drains everything currently queued without blocking.
    pub fn drain(&self) -> Vec<DataBuffer> {
        let mut out = Vec::new();
        while let Some(b) = self.try_recv() {
            out.push(b);
        }
        out
    }
}

/// Sending end of a logical stream: one channel per consumer copy.
pub struct OutPort {
    pub(crate) senders: Vec<Sender<DataBuffer>>,
    pub(crate) consumer_nodes: Vec<NodeId>,
    pub(crate) my_node: NodeId,
    pub(crate) rr: usize,
    pub(crate) stats: Arc<NetStats>,
    /// Blocked-time clocks of the owning copy (absent in bare test ports).
    pub(crate) clocks: Option<Arc<PortClocks>>,
    /// Queue occupancy sampled after each send — backpressure visibility.
    pub(crate) queue_depth: Option<Histogram>,
}

impl OutPort {
    /// Number of consumer copies reachable from this port.
    pub fn consumers(&self) -> usize {
        self.senders.len()
    }

    /// Sends to a specific consumer copy — the addressing mode the
    /// declustering strategies and the vertex-owner fringe exchange use.
    pub fn send_to(&mut self, copy: usize, buf: DataBuffer) -> Result<()> {
        let sender = self.senders.get(copy).ok_or_else(|| {
            GraphStorageError::Unsupported(format!(
                "port has {} consumers, copy {copy} addressed",
                self.senders.len()
            ))
        })?;
        self.stats
            .record(self.my_node, self.consumer_nodes[copy], buf.len() as u64);
        let sent = match &self.clocks {
            None => sender.send(buf),
            Some(clocks) => {
                let start = Instant::now();
                let sent = sender.send(buf);
                clocks
                    .blocked_send_ns
                    .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                sent
            }
        };
        if let Some(depth) = &self.queue_depth {
            depth.record(sender.len() as u64);
        }
        sent.map_err(|_| GraphStorageError::Unsupported("consumer hung up".into()))
    }

    /// Sends to the next consumer in round-robin order.
    pub fn send_rr(&mut self, buf: DataBuffer) -> Result<()> {
        let copy = self.rr % self.senders.len();
        self.rr += 1;
        self.send_to(copy, buf)
    }

    /// Sends a clone to every consumer copy (payload shared, not copied).
    pub fn broadcast(&mut self, buf: DataBuffer) -> Result<()> {
        for copy in 0..self.senders.len() {
            self.send_to(copy, buf.clone())?;
        }
        Ok(())
    }
}

/// Per-instance execution context handed to every [`Filter`] callback.
pub struct FilterContext {
    /// This instance's index among the filter's transparent copies.
    pub copy_index: usize,
    /// Total transparent copies of this filter.
    pub copies: usize,
    /// The logical node this instance is placed on.
    pub node: NodeId,
    pub(crate) inputs: HashMap<String, InPort>,
    pub(crate) outputs: HashMap<String, OutPort>,
    pub(crate) telemetry: Telemetry,
}

impl FilterContext {
    /// The run's telemetry bundle: open spans and record metrics from
    /// inside a filter. Disabled (free) unless the graph was built with an
    /// enabled [`Telemetry`].
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Looks up an input port by name.
    pub fn input(&mut self, name: &str) -> Result<&mut InPort> {
        self.inputs.get_mut(name).ok_or_else(|| {
            GraphStorageError::Unsupported(format!("no input port {name:?} connected"))
        })
    }

    /// Looks up an output port by name.
    pub fn output(&mut self, name: &str) -> Result<&mut OutPort> {
        self.outputs.get_mut(name).ok_or_else(|| {
            GraphStorageError::Unsupported(format!("no output port {name:?} connected"))
        })
    }

    /// Closes an output port early (drops its senders), letting downstream
    /// filters drain before this one finishes.
    pub fn close_output(&mut self, name: &str) {
        self.outputs.remove(name);
    }

    /// `true` if an input port with this name is connected.
    pub fn has_input(&self, name: &str) -> bool {
        self.inputs.contains_key(name)
    }

    /// `true` if an output port with this name is connected.
    pub fn has_output(&self, name: &str) -> bool {
        self.outputs.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    fn out_port(n: usize) -> (OutPort, Vec<Receiver<DataBuffer>>) {
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for _ in 0..n {
            let (tx, rx) = bounded(16);
            senders.push(tx);
            receivers.push(rx);
        }
        (
            OutPort {
                senders,
                consumer_nodes: (0..n).collect(),
                my_node: 0,
                rr: 0,
                stats: NetStats::new(),
                clocks: None,
                queue_depth: None,
            },
            receivers,
        )
    }

    #[test]
    fn send_to_targets_one_copy() {
        let (mut port, rxs) = out_port(3);
        port.send_to(1, DataBuffer::control(42)).unwrap();
        assert!(rxs[0].try_recv().is_err());
        assert_eq!(rxs[1].try_recv().unwrap().tag, 42);
        assert!(port.send_to(9, DataBuffer::control(0)).is_err());
    }

    #[test]
    fn round_robin_cycles() {
        let (mut port, rxs) = out_port(2);
        for i in 0..4 {
            port.send_rr(DataBuffer::control(i)).unwrap();
        }
        assert_eq!(rxs[0].try_recv().unwrap().tag, 0);
        assert_eq!(rxs[1].try_recv().unwrap().tag, 1);
        assert_eq!(rxs[0].try_recv().unwrap().tag, 2);
        assert_eq!(rxs[1].try_recv().unwrap().tag, 3);
    }

    #[test]
    fn broadcast_reaches_all() {
        let (mut port, rxs) = out_port(3);
        port.broadcast(DataBuffer::from_words(5, &[1])).unwrap();
        for rx in &rxs {
            assert_eq!(rx.try_recv().unwrap().tag, 5);
        }
    }

    #[test]
    fn local_vs_remote_accounting() {
        let (mut port, _rxs) = out_port(2); // consumer nodes 0 and 1; we are node 0
        port.send_to(0, DataBuffer::from_words(0, &[1])).unwrap();
        port.send_to(1, DataBuffer::from_words(0, &[1])).unwrap();
        let snap = port.stats.snapshot();
        assert_eq!(snap.local_msgs, 1);
        assert_eq!(snap.remote_msgs, 1);
        assert_eq!(snap.remote_bytes, 8);
    }

    #[test]
    fn inport_drains() {
        let (tx, rx) = bounded(8);
        tx.send(DataBuffer::control(1)).unwrap();
        tx.send(DataBuffer::control(2)).unwrap();
        let port = InPort { rx, clocks: None };
        let drained = port.drain();
        assert_eq!(drained.len(), 2);
        drop(tx);
        assert!(port.recv().is_none());
    }

    #[test]
    fn blocked_recv_time_is_accounted() {
        let (tx, rx) = bounded(1);
        let clocks = Arc::new(PortClocks::default());
        let port = InPort {
            rx,
            clocks: Some(Arc::clone(&clocks)),
        };
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(DataBuffer::control(1)).unwrap();
        });
        assert!(port.recv().is_some());
        t.join().unwrap();
        assert!(
            clocks.blocked_recv_ns.load(Ordering::Relaxed) >= 10_000_000,
            "a recv parked ~20ms must show up in the blocked clock"
        );
    }

    #[test]
    fn queue_depth_sampled_per_send() {
        let depth = Histogram::default();
        let (tx, _rx) = bounded(8);
        let mut port = OutPort {
            senders: vec![tx],
            consumer_nodes: vec![1],
            my_node: 0,
            rr: 0,
            stats: NetStats::new(),
            clocks: Some(Arc::new(PortClocks::default())),
            queue_depth: Some(depth.clone()),
        };
        port.send_to(0, DataBuffer::control(1)).unwrap();
        port.send_to(0, DataBuffer::control(2)).unwrap();
        port.send_to(0, DataBuffer::control(3)).unwrap();
        let snap = depth.snapshot();
        assert_eq!(snap.count, 3, "one occupancy sample per send");
        // Depths observed were 1, 2, 3.
        assert_eq!(snap.sum, 6);
    }
}
