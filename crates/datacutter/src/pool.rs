//! Pooled payload buffers for the hot ingest path.
//!
//! Every window an ingestion pipeline moves is one heap allocation: the
//! source encodes a `Vec<u8>`, wraps it in a [`DataBuffer`], and the
//! consumer drops it after decoding. At millions of edges per second the
//! allocator becomes a measurable fraction of the ingest wall time. A
//! [`BufferPool`] closes the loop: consumers hand spent payloads back
//! (conceptually at the same point the transport returns a flow-control
//! *credit* — the buffer is free exactly when the window it carried has
//! been popped), and producers reuse the allocation for the next window.
//!
//! Recycling relies on the `Bytes` payload being **uniquely owned** when
//! it is returned: the zero-copy send path moves one `Arc`-backed buffer
//! from producer to consumer, so by the time the consumer has decoded it
//! no other clone exists and [`bytes::Bytes::try_into_vec`] unwraps the backing
//! `Vec` with its capacity intact. A payload that is still shared (e.g.
//! one arm of a broadcast) is simply dropped and counted — recycling is
//! an optimisation, never a correctness requirement.
//!
//! ```
//! use datacutter::{BufferPool, DataBuffer};
//! use mssg_types::Edge;
//!
//! let pool = BufferPool::new(4);
//! let window = pool.from_edges(0, &[Edge::of(1, 2), Edge::of(2, 3)]);
//! let edges = window.edges();          // consumer decodes...
//! assert_eq!(edges.len(), 2);
//! assert!(pool.recycle(window));       // ...and returns the allocation.
//! let next = pool.from_edges(1, &edges);
//! assert_eq!(pool.stats().hits, 1, "second window reused the first's Vec");
//! assert_eq!(next.edges(), edges);
//! ```

use crate::buffer::DataBuffer;
use mssg_types::Edge;
// The free list lives behind the model-checking shim mutex: identical to
// `std::sync::Mutex` in production, scheduler-controlled inside
// `mssg_modelcheck::check` — which is what lets the racecheck corpus
// explore recycle/clone/drop interleavings exhaustively.
use mssg_modelcheck::shim::{Mutex, MutexGuard};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters describing how well a pool is closing the allocation loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Allocations served from the free list.
    pub hits: u64,
    /// Allocations that had to go to the allocator (cold pool).
    pub misses: u64,
    /// Payloads successfully returned to the free list.
    pub recycled: u64,
    /// Payloads that could not be recycled (still shared, or pool full).
    pub dropped: u64,
}

struct PoolInner {
    free: Mutex<Vec<Vec<u8>>>,
    max_buffers: usize,
    // racecheck: monotonic stats counters, read only for reporting (or
    // after joining the worker threads); the free list itself is the
    // synchronized state.
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    dropped: AtomicU64,
}

/// A bounded free list of payload `Vec`s shared by the producers and
/// consumers of a stream. Cloning shares the pool.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// Creates a pool retaining at most `max_buffers` free payloads;
    /// returns beyond the bound are dropped (the pool never grows the
    /// process's high-water mark).
    pub fn new(max_buffers: usize) -> BufferPool {
        BufferPool {
            inner: Arc::new(PoolInner {
                free: Mutex::new(Vec::new()),
                max_buffers,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    fn free(&self) -> MutexGuard<'_, Vec<Vec<u8>>> {
        // A poisoned pool just means some thread panicked mid-push; the
        // free list itself is always valid.
        match self.inner.free.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Takes an empty `Vec` with at least `capacity` bytes reserved,
    /// reusing a recycled allocation when one is available.
    pub fn take(&self, capacity: usize) -> Vec<u8> {
        if let Some(mut v) = self.free().pop() {
            // racecheck: stats-only counters (see PoolInner).
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            v.clear();
            v.reserve(capacity);
            return v;
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        Vec::with_capacity(capacity)
    }

    /// Returns a raw `Vec` to the free list (dropped when the pool is at
    /// capacity).
    pub fn give(&self, v: Vec<u8>) {
        let mut free = self.free();
        // racecheck: stats-only counters (see PoolInner).
        if free.len() < self.inner.max_buffers {
            free.push(v);
            drop(free);
            self.inner.recycled.fetch_add(1, Ordering::Relaxed);
        } else {
            drop(free);
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Recycles a spent buffer's payload. Succeeds (and returns `true`)
    /// only when the payload is uniquely owned — the normal case after a
    /// point-to-point send has been consumed; shared payloads are dropped
    /// and counted.
    pub fn recycle(&self, buf: DataBuffer) -> bool {
        match buf.data.try_into_vec() {
            Ok(v) => {
                self.give(v);
                true
            }
            Err(_) => {
                // racecheck: stats-only counter (see PoolInner).
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Encodes edges into a pooled buffer — the recycling counterpart of
    /// [`DataBuffer::from_edges`].
    pub fn from_edges(&self, tag: u64, edges: &[Edge]) -> DataBuffer {
        let mut data = self.take(edges.len() * 16);
        for e in edges {
            data.extend_from_slice(&e.to_bytes());
        }
        DataBuffer::new(tag, data)
    }

    /// Encodes 64-bit words into a pooled buffer — the recycling
    /// counterpart of [`DataBuffer::from_words`].
    pub fn from_words(&self, tag: u64, words: &[u64]) -> DataBuffer {
        let mut data = self.take(words.len() * 8);
        for w in words {
            data.extend_from_slice(&w.to_le_bytes());
        }
        DataBuffer::new(tag, data)
    }

    /// Free payloads currently held.
    pub fn available(&self) -> usize {
        self.free().len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        // racecheck: stats snapshot; exact only once workers have joined.
        PoolStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            recycled: self.inner.recycled.load(Ordering::Relaxed),
            dropped: self.inner.dropped.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("max_buffers", &self.inner.max_buffers)
            .field("available", &self.available())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_pool_misses_then_hits() {
        let pool = BufferPool::new(2);
        let v = pool.take(64);
        assert_eq!(pool.stats().misses, 1);
        pool.give(v);
        let v2 = pool.take(8);
        assert_eq!(pool.stats().hits, 1);
        assert!(v2.capacity() >= 8);
    }

    #[test]
    fn recycle_round_trips_the_allocation() {
        let pool = BufferPool::new(4);
        let buf = pool.from_words(3, &[1, 2, 3]);
        let ptr = buf.data.as_ptr();
        assert!(pool.recycle(buf));
        let again = pool.from_words(4, &[9, 9, 9]);
        assert_eq!(again.data.as_ptr(), ptr, "allocation reused");
        assert_eq!(again.words(), vec![9, 9, 9]);
    }

    #[test]
    fn shared_payload_is_dropped_not_recycled() {
        let pool = BufferPool::new(4);
        let buf = pool.from_words(0, &[7]);
        let _clone = buf.clone();
        assert!(!pool.recycle(buf));
        assert_eq!(pool.stats().dropped, 1);
        assert_eq!(pool.available(), 0);
    }

    #[test]
    fn pool_bound_is_respected() {
        let pool = BufferPool::new(1);
        pool.give(Vec::with_capacity(8));
        pool.give(Vec::with_capacity(8));
        assert_eq!(pool.available(), 1);
        assert_eq!(pool.stats().dropped, 1);
    }

    #[test]
    fn pooled_encoding_matches_plain_encoding() {
        let pool = BufferPool::new(4);
        let edges = vec![Edge::of(1, 2), Edge::of(3, 4), Edge::of(5, 6)];
        let pooled = pool.from_edges(9, &edges);
        let plain = DataBuffer::from_edges(9, &edges);
        assert_eq!(pooled, plain);
        let words = vec![10, 20, 30];
        assert_eq!(
            pool.from_words(1, &words),
            DataBuffer::from_words(1, &words)
        );
    }
}
