//! The filtering service: instantiates filter copies on their nodes,
//! connects logical endpoints, and drives the filter lifecycle — the role
//! DataCutter's runtime plays on a real cluster.

use crate::buffer::DataBuffer;
use crate::filter::{FilterContext, InPort, OutPort};
use crate::graph::GraphBuilder;
use crate::netstats::{NetSnapshot, NetStats};
use crossbeam::channel::{bounded, Receiver, Sender};
use mssg_types::{GraphStorageError, Result};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of a completed graph run.
#[derive(Clone, Copy, Debug)]
pub struct RunReport {
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Message traffic, split local/remote.
    pub net: NetSnapshot,
}

/// Runs a built graph to completion.
pub fn run(mut graph: GraphBuilder) -> Result<RunReport> {
    let stats = NetStats::new();
    let cap = graph.channel_capacity;

    // One merged channel set per (consumer filter, in_port): a sender
    // vector (one per consumer copy) shared by all producers, and a
    // receiver per copy.
    type PortKey = (usize, String);
    let mut senders: HashMap<PortKey, Vec<Sender<DataBuffer>>> = HashMap::new();
    let mut receivers: HashMap<PortKey, Vec<Receiver<DataBuffer>>> = HashMap::new();
    let mut shared_ports: std::collections::HashSet<PortKey> = std::collections::HashSet::new();
    for s in &graph.streams {
        let key = (s.to, s.in_port.clone());
        match senders.get(&key) {
            Some(_) => {
                // Mixed shared/addressed wiring of one input port would be
                // ambiguous.
                if shared_ports.contains(&key) != s.shared {
                    return Err(GraphStorageError::Unsupported(format!(
                        "input port {:?} of filter {:?} wired both shared and addressed",
                        s.in_port, graph.filters[s.to].name
                    )));
                }
            }
            None => {
                let copies = graph.filters[s.to].placement.len();
                if s.shared {
                    // One MPMC queue; every consumer copy holds a clone of
                    // the same receiver (crossbeam channels are MPMC).
                    let (tx, rx) = bounded(cap);
                    senders.insert(key.clone(), vec![tx]);
                    receivers.insert(key.clone(), (0..copies).map(|_| rx.clone()).collect());
                    shared_ports.insert(key);
                } else {
                    let mut txs = Vec::with_capacity(copies);
                    let mut rxs = Vec::with_capacity(copies);
                    for _ in 0..copies {
                        let (tx, rx) = bounded(cap);
                        txs.push(tx);
                        rxs.push(rx);
                    }
                    senders.insert(key.clone(), txs);
                    receivers.insert(key, rxs);
                }
            }
        }
    }

    // Reject one out_port feeding two different destinations (a logical
    // stream is point-to-point in the DataCutter model).
    {
        let mut seen: HashMap<(usize, &str), (usize, &str)> = HashMap::new();
        for s in &graph.streams {
            if let Some(&(to, port)) =
                seen.get(&(s.from, s.out_port.as_str()))
            {
                if (to, port) != (s.to, s.in_port.as_str()) {
                    return Err(GraphStorageError::Unsupported(format!(
                        "output port {:?} of filter {:?} connected twice",
                        s.out_port, graph.filters[s.from].name
                    )));
                }
            }
            seen.insert((s.from, s.out_port.as_str()), (s.to, s.in_port.as_str()));
        }
    }

    // Build per-copy contexts.
    let nfilters = graph.filters.len();
    let mut contexts: Vec<Vec<FilterContext>> = (0..nfilters)
        .map(|fi| {
            let placement = &graph.filters[fi].placement;
            placement
                .iter()
                .enumerate()
                .map(|(ci, &node)| FilterContext {
                    copy_index: ci,
                    copies: placement.len(),
                    node,
                    inputs: HashMap::new(),
                    outputs: HashMap::new(),
                })
                .collect()
        })
        .collect();

    // Attach receivers to consumer copies.
    for ((fi, port), rxs) in receivers {
        for (ci, rx) in rxs.into_iter().enumerate() {
            contexts[fi][ci].inputs.insert(port.clone(), InPort { rx });
        }
    }

    // Attach out ports to producer copies.
    for s in &graph.streams {
        let key = (s.to, s.in_port.clone());
        let txs = &senders[&key];
        // Shared queues are charged as remote traffic (a distributed
        // queue crosses the network by design).
        let consumer_nodes = if s.shared {
            vec![usize::MAX]
        } else {
            graph.filters[s.to].placement.clone()
        };
        for ctx in contexts[s.from].iter_mut() {
            // connect() allows listing the same stream only once per
            // out_port, so insertion here cannot clobber a different
            // destination.
            ctx.outputs.insert(
                s.out_port.clone(),
                OutPort {
                    senders: txs.clone(),
                    consumer_nodes: consumer_nodes.clone(),
                    my_node: ctx.node,
                    rr: ctx.copy_index, // Stagger round-robin across copies.
                    stats: Arc::clone(&stats),
                },
            );
        }
    }
    // Drop the original senders so streams close once producers finish.
    drop(senders);

    // Spawn one thread per filter copy and drive the lifecycle.
    let start = Instant::now();
    let mut handles = Vec::new();
    for (fi, def) in graph.filters.iter_mut().enumerate() {
        for (ci, mut ctx) in std::mem::take(&mut contexts[fi]).into_iter().enumerate() {
            let mut instance = (def.factory)(ci);
            let name = format!("{}.{}", def.name, ci);
            let handle = std::thread::Builder::new()
                .name(name.clone())
                .spawn(move || -> Result<()> {
                    instance.init(&mut ctx)?;
                    instance.process(&mut ctx)?;
                    instance.finalize(&mut ctx)?;
                    Ok(())
                })
                .map_err(|e| GraphStorageError::Io(e))?;
            handles.push((name, handle));
        }
    }

    let mut first_error: Option<GraphStorageError> = None;
    for (name, handle) in handles {
        match handle.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
            Err(_) => {
                if first_error.is_none() {
                    first_error =
                        Some(GraphStorageError::Unsupported(format!("filter {name} panicked")));
                }
            }
        }
    }
    if let Some(e) = first_error {
        return Err(e);
    }
    Ok(RunReport { elapsed: start.elapsed(), net: stats.snapshot() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::Filter;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Producer {
        count: u64,
    }

    impl Filter for Producer {
        fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
            for i in 0..self.count {
                ctx.output("out")?.send_rr(DataBuffer::from_words(0, &[i]))?;
            }
            Ok(())
        }
    }

    struct Collector {
        sum: Arc<AtomicU64>,
    }

    impl Filter for Collector {
        fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
            while let Some(b) = ctx.input("in")?.recv() {
                for w in b.words() {
                    self.sum.fetch_add(w, Ordering::Relaxed);
                }
            }
            Ok(())
        }
    }

    #[test]
    fn pipeline_delivers_all_data() {
        let sum = Arc::new(AtomicU64::new(0));
        let mut g = GraphBuilder::new();
        let p = g.add_filter("p", vec![0], |_| Box::new(Producer { count: 100 }));
        let sum2 = Arc::clone(&sum);
        let c = g.add_filter("c", vec![1, 2], move |_| {
            Box::new(Collector { sum: Arc::clone(&sum2) })
        });
        g.connect(p, "out", c, "in");
        let report = g.run().unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum::<u64>());
        assert_eq!(report.net.local_msgs + report.net.remote_msgs, 100);
    }

    #[test]
    fn colocated_filters_count_as_local() {
        let sum = Arc::new(AtomicU64::new(0));
        let mut g = GraphBuilder::new();
        let p = g.add_filter("p", vec![3], |_| Box::new(Producer { count: 10 }));
        let sum2 = Arc::clone(&sum);
        let c = g.add_filter("c", vec![3], move |_| {
            Box::new(Collector { sum: Arc::clone(&sum2) })
        });
        g.connect(p, "out", c, "in");
        let report = g.run().unwrap();
        assert_eq!(report.net.local_msgs, 10);
        assert_eq!(report.net.remote_msgs, 0);
    }

    struct Broadcaster;
    impl Filter for Broadcaster {
        fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
            ctx.output("out")?.broadcast(DataBuffer::from_words(0, &[7]))?;
            Ok(())
        }
    }

    #[test]
    fn broadcast_reaches_every_copy() {
        let sum = Arc::new(AtomicU64::new(0));
        let mut g = GraphBuilder::new();
        let b = g.add_filter("b", vec![0], |_| Box::new(Broadcaster));
        let sum2 = Arc::clone(&sum);
        let c = g.add_filter("c", vec![1, 2, 3, 4], move |_| {
            Box::new(Collector { sum: Arc::clone(&sum2) })
        });
        g.connect(b, "out", c, "in");
        g.run().unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 28);
    }

    struct Failer;
    impl Filter for Failer {
        fn process(&mut self, _ctx: &mut FilterContext) -> Result<()> {
            Err(GraphStorageError::Unsupported("deliberate".into()))
        }
    }

    #[test]
    fn filter_errors_propagate() {
        let mut g = GraphBuilder::new();
        g.add_filter("f", vec![0], |_| Box::new(Failer));
        let err = g.run().unwrap_err();
        assert!(err.to_string().contains("deliberate"));
    }

    struct Panicker;
    impl Filter for Panicker {
        fn process(&mut self, _ctx: &mut FilterContext) -> Result<()> {
            panic!("boom");
        }
    }

    #[test]
    fn filter_panics_become_errors() {
        let mut g = GraphBuilder::new();
        g.add_filter("f", vec![0], |_| Box::new(Panicker));
        let err = g.run().unwrap_err();
        assert!(err.to_string().contains("panicked"));
    }

    #[test]
    fn double_connected_out_port_rejected() {
        let mut g = GraphBuilder::new();
        let p = g.add_filter("p", vec![0], |_| Box::new(Producer { count: 1 }));
        let c1 = g.add_filter("c1", vec![0], |_| {
            Box::new(Collector { sum: Arc::new(AtomicU64::new(0)) })
        });
        let c2 = g.add_filter("c2", vec![0], |_| {
            Box::new(Collector { sum: Arc::new(AtomicU64::new(0)) })
        });
        g.connect(p, "out", c1, "in");
        g.connect(p, "out", c2, "in");
        assert!(g.run().is_err());
    }

    /// All-to-all exchange among copies of one filter — the communication
    /// pattern of the parallel BFS.
    struct Exchanger {
        got: Arc<AtomicU64>,
    }

    impl Filter for Exchanger {
        fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
            let me = ctx.copy_index as u64;
            let copies = ctx.copies;
            ctx.output("peers")?.broadcast(DataBuffer::from_words(me, &[me * 10]))?;
            ctx.close_output("peers");
            let mut received = 0;
            while let Some(b) = ctx.input("peers")?.recv() {
                self.got.fetch_add(b.words()[0], Ordering::Relaxed);
                received += 1;
            }
            assert_eq!(received, copies, "each copy hears every copy (incl. itself)");
            Ok(())
        }
    }

    #[test]
    fn self_connected_all_to_all() {
        let got = Arc::new(AtomicU64::new(0));
        let mut g = GraphBuilder::new();
        let got2 = Arc::clone(&got);
        let e = g.add_filter("x", vec![0, 1, 2], move |_| {
            Box::new(Exchanger { got: Arc::clone(&got2) })
        });
        g.connect(e, "peers", e, "peers");
        g.run().unwrap();
        // Each of 3 copies broadcasts its value to all 3: sum = 3*(0+10+20).
        assert_eq!(got.load(Ordering::Relaxed), 90);
    }

    /// Consumer that sleeps per item, simulating a slow node.
    struct SlowCollector {
        delay_us: u64,
        got: Arc<AtomicU64>,
        total: Arc<AtomicU64>,
    }

    impl Filter for SlowCollector {
        fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
            while let Some(b) = ctx.input("in")?.recv() {
                std::thread::sleep(std::time::Duration::from_micros(self.delay_us));
                self.got.fetch_add(1, Ordering::Relaxed);
                self.total.fetch_add(b.words()[0], Ordering::Relaxed);
            }
            Ok(())
        }
    }

    #[test]
    fn shared_queue_delivers_everything_once() {
        let total = Arc::new(AtomicU64::new(0));
        let counts: Vec<Arc<AtomicU64>> =
            (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut g = GraphBuilder::new();
        let p = g.add_filter("p", vec![0], |_| Box::new(Producer { count: 300 }));
        let total2 = Arc::clone(&total);
        let counts2 = counts.clone();
        let c = g.add_filter("c", vec![1, 2, 3], move |i| {
            Box::new(SlowCollector {
                delay_us: 0,
                got: Arc::clone(&counts2[i]),
                total: Arc::clone(&total2),
            })
        });
        g.connect_shared(p, "out", c, "in");
        let report = g.run().unwrap();
        assert_eq!(total.load(Ordering::Relaxed), (0..300).sum::<u64>());
        let per: Vec<u64> = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_eq!(per.iter().sum::<u64>(), 300, "each item consumed exactly once");
        // Shared-queue traffic is charged as remote.
        assert_eq!(report.net.remote_msgs, 300);
    }

    #[test]
    fn shared_queue_balances_by_demand() {
        // One consumer is 100× slower; the fast one must take the bulk of
        // the work — River's adaptive allocation.
        let total = Arc::new(AtomicU64::new(0));
        let counts: Vec<Arc<AtomicU64>> =
            (0..2).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut g = GraphBuilder::new();
        // Small channel so the producer cannot just park everything in the
        // queue ahead of the consumers.
        g.channel_capacity(4);
        let p = g.add_filter("p", vec![0], |_| Box::new(Producer { count: 200 }));
        let total2 = Arc::clone(&total);
        let counts2 = counts.clone();
        let c = g.add_filter("c", vec![1, 2], move |i| {
            Box::new(SlowCollector {
                delay_us: if i == 0 { 500 } else { 5 },
                got: Arc::clone(&counts2[i]),
                total: Arc::clone(&total2),
            })
        });
        g.connect_shared(p, "out", c, "in");
        g.run().unwrap();
        let slow = counts[0].load(Ordering::Relaxed);
        let fast = counts[1].load(Ordering::Relaxed);
        assert_eq!(slow + fast, 200);
        assert!(
            fast > 3 * slow,
            "demand-driven queue should favour the fast consumer (fast={fast}, slow={slow})"
        );
    }

    #[test]
    fn mixed_shared_and_addressed_wiring_rejected() {
        let mut g = GraphBuilder::new();
        let p1 = g.add_filter("p1", vec![0], |_| Box::new(Producer { count: 1 }));
        let p2 = g.add_filter("p2", vec![0], |_| Box::new(Producer { count: 1 }));
        let c = g.add_filter("c", vec![1], |_| {
            Box::new(Collector { sum: Arc::new(AtomicU64::new(0)) })
        });
        g.connect(p1, "out", c, "in");
        g.connect_shared(p2, "out", c, "in");
        assert!(g.run().is_err());
    }

    #[test]
    fn missing_port_is_an_error() {
        struct NeedsPort;
        impl Filter for NeedsPort {
            fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
                ctx.output("ghost")?;
                Ok(())
            }
        }
        let mut g = GraphBuilder::new();
        g.add_filter("n", vec![0], |_| Box::new(NeedsPort));
        assert!(g.run().is_err());
    }
}
