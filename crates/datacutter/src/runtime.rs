//! The filtering service: instantiates filter copies on their nodes,
//! connects logical endpoints, and drives the filter lifecycle — the role
//! DataCutter's runtime plays on a real cluster.

use crate::fault::{panic_message, silence_injected_panics, CopyFaults, FaultEvent};
use crate::filter::{Filter, FilterContext, InPort, OutPort, PortClocks};
use crate::graph::{FilterFactory, GraphBuilder};
use crate::netstats::{NetSnapshot, NetStats};
use crate::transport::{EndpointSpec, InProc, Transport};
use crate::NodeId;
use mssg_obs::{Counter, Tracer};
use mssg_types::{GraphStorageError, Result};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where one filter copy spent its run: busy computing, parked on a
/// `recv`, or parked on a full downstream channel.
#[derive(Clone, Debug)]
pub struct FilterTiming {
    /// Filter name (as given to `add_filter`).
    pub filter: String,
    /// Transparent-copy index.
    pub copy: usize,
    /// Node the copy ran on.
    pub node: NodeId,
    /// Wall time from `init` through `finalize`.
    pub total: Duration,
    /// Time parked inside `InPort::recv` (starved for input).
    pub blocked_recv: Duration,
    /// Time parked inside sends (downstream backpressure).
    pub blocked_send: Duration,
}

impl FilterTiming {
    /// Time neither starved nor backpressured: `total − blocked`.
    pub fn busy(&self) -> Duration {
        self.total
            .saturating_sub(self.blocked_recv + self.blocked_send)
    }
}

/// An audit record of one supervised restart, collected into
/// [`RunReport::restarts`].
#[derive(Clone, Debug)]
pub struct RestartEvent {
    /// Filter name.
    pub filter: String,
    /// Copy index that crashed and was restarted.
    pub copy: usize,
    /// Restart number for this copy (1 = first restart).
    pub attempt: u32,
    /// The panic message of the crashed incarnation.
    pub cause: String,
}

/// Outcome of a completed graph run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Message traffic, split local/remote.
    pub net: NetSnapshot,
    /// Per-filter-copy time breakdown (busy vs. blocked on recv/send).
    pub filters: Vec<FilterTiming>,
    /// Supervised restarts that happened during the run (empty without
    /// [`GraphBuilder::supervise`] or without crashes).
    pub restarts: Vec<RestartEvent>,
    /// Injected faults that actually fired (empty without a
    /// [`FaultPlan`](crate::FaultPlan)).
    pub faults: Vec<FaultEvent>,
}

/// One input port's endpoint layout, planned identically by every
/// process from the shared graph description.
struct PortPlan {
    shared: bool,
    /// Addressed: one spec per consumer copy (indexed by copy). Shared:
    /// a single spec every copy pulls from.
    specs: Vec<EndpointSpec>,
}

/// Derives the deterministic endpoint table: iterate streams in
/// declaration order, assign dense ids to each (consumer, in_port) key
/// on first sight, and split each endpoint's producers into co-located
/// vs. remote relative to `only_node` semantics (in single-process mode
/// everything is co-located).
fn plan_endpoints(
    graph: &GraphBuilder,
    only_node: Option<NodeId>,
) -> Result<HashMap<(usize, String), PortPlan>> {
    // Group producer streams by consumer port, preserving first-seen
    // order for id assignment.
    let mut order: Vec<(usize, String)> = Vec::new();
    let mut producers: HashMap<(usize, String), Vec<NodeId>> = HashMap::new();
    let mut shared_ports: std::collections::HashSet<(usize, String)> =
        std::collections::HashSet::new();
    for s in &graph.streams {
        let key = (s.to, s.in_port.clone());
        let entry = producers.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            Vec::new()
        });
        entry.extend(graph.filters[s.from].placement.iter().copied());
        if s.shared {
            shared_ports.insert(key);
        }
    }

    // In single-process mode every node lives in this process, so all
    // producers are "local" to every endpoint.
    let distributed = only_node.is_some();
    let mut plans = HashMap::new();
    let mut next_id: u64 = 0;
    for key in order {
        let prods = &producers[&key];
        let (fi, port) = (key.0, key.1.clone());
        let name = graph.filters[fi].name.clone();
        let consumer_nodes = graph.filters[fi].placement.clone();
        let shared = shared_ports.contains(&key);
        let mut specs = Vec::new();
        if shared {
            // A demand-driven queue has no per-copy address, so v1 cannot
            // stripe it across processes: require the whole group on one
            // node when running distributed.
            let mut nodes: Vec<NodeId> =
                consumer_nodes.iter().chain(prods.iter()).copied().collect();
            nodes.sort_unstable();
            nodes.dedup();
            if distributed && nodes.len() > 1 {
                return Err(GraphStorageError::Unsupported(format!(
                    "shared stream into {name}.{port} spans nodes {nodes:?}: \
                     demand-driven queues cannot cross process boundaries \
                     (place the producer and every consumer copy on one node)"
                )));
            }
            specs.push(EndpointSpec {
                id: next_id,
                filter: name,
                in_port: port.clone(),
                copy: 0,
                node: nodes[0],
                shared: true,
                capacity: graph.channel_capacity,
                local_producers: prods.len(),
                remote_producers: Vec::new(),
            });
            next_id += 1;
        } else {
            for (ci, &node) in consumer_nodes.iter().enumerate() {
                let (mut local, mut remote) = (0usize, HashMap::<NodeId, usize>::new());
                for &p in prods {
                    if !distributed || p == node {
                        local += 1;
                    } else {
                        *remote.entry(p).or_insert(0) += 1;
                    }
                }
                let mut remote_producers: Vec<(NodeId, usize)> = remote.into_iter().collect();
                remote_producers.sort_unstable();
                specs.push(EndpointSpec {
                    id: next_id,
                    filter: name.clone(),
                    in_port: port.clone(),
                    copy: ci,
                    node,
                    shared: false,
                    capacity: graph.channel_capacity,
                    local_producers: local,
                    remote_producers,
                });
                next_id += 1;
            }
        }
        plans.insert(key, PortPlan { shared, specs });
    }
    Ok(plans)
}

/// Runs a built graph to completion with every node as a thread in this
/// process — the classic substrate.
pub fn run(graph: GraphBuilder) -> Result<RunReport> {
    run_with(graph, &mut InProc::new(), None)
}

/// Runs only the filter copies placed on `node`, wiring cross-node
/// streams through `transport` — one call per OS process in a
/// distributed launch. Every process must build the *same* graph
/// description (the transport's handshake checks
/// [`GraphBuilder::topology_signature`]) so all processes derive the
/// same endpoint ids. The returned report covers this node's copies and
/// this node's send-side traffic only.
pub fn run_node(
    graph: GraphBuilder,
    node: NodeId,
    transport: &mut dyn Transport,
) -> Result<RunReport> {
    run_with(graph, transport, Some(node))
}

fn run_with(
    mut graph: GraphBuilder,
    transport: &mut dyn Transport,
    only_node: Option<NodeId>,
) -> Result<RunReport> {
    // Refuse unverified graphs: a topology the static analysis rejects
    // would at best hang until a stream timeout. Experiments that *want*
    // the pathological launch opt out via `allow_unverified`. Every
    // process of a distributed run verifies the same full graph.
    if graph.verify_gate {
        if let Err(mut errs) = graph.verify() {
            return Err(GraphStorageError::Verify(errs.remove(0)));
        }
    }
    let stats = NetStats::new();
    let telemetry = graph.telemetry.clone();
    let is_local = |node: NodeId| only_node.is_none_or(|n| n == node);

    let plans = plan_endpoints(&graph, only_node)?;

    // Build per-copy contexts (local copies only), each with its own
    // blocked-time clocks.
    let nfilters = graph.filters.len();
    let mut contexts: Vec<Vec<Option<FilterContext>>> = (0..nfilters)
        .map(|fi| {
            let placement = &graph.filters[fi].placement;
            placement
                .iter()
                .enumerate()
                .map(|(ci, &node)| {
                    is_local(node).then(|| FilterContext {
                        copy_index: ci,
                        copies: placement.len(),
                        node,
                        inputs: HashMap::new(),
                        outputs: HashMap::new(),
                        telemetry: telemetry.clone(),
                    })
                })
                .collect()
        })
        .collect();
    let clocks: Vec<Vec<Arc<PortClocks>>> = (0..nfilters)
        .map(|fi| {
            (0..graph.filters[fi].placement.len())
                .map(|_| Arc::new(PortClocks::default()))
                .collect()
        })
        .collect();

    // Open receive endpoints and attach them to local consumer copies —
    // all endpoints before any sender, so the transport can route local
    // senders to already-registered queues.
    let mut keys: Vec<&(usize, String)> = plans.keys().collect();
    keys.sort();
    for key in keys {
        let plan = &plans[key];
        let (fi, port) = (key.0, key.1.as_str());
        if plan.shared {
            let spec = &plan.specs[0];
            if !is_local(spec.node) {
                continue;
            }
            let master = transport.open_endpoint(spec)?;
            for (ci, slot) in contexts[fi].iter_mut().enumerate() {
                let Some(ctx) = slot else { continue };
                ctx.inputs.insert(
                    port.to_string(),
                    InPort {
                        name: port.to_string(),
                        rx: master.clone_endpoint(),
                        clocks: Some(Arc::clone(&clocks[fi][ci])),
                        timeout: graph.stream_timeout,
                        faults: None,
                    },
                );
            }
        } else {
            for spec in &plan.specs {
                if !is_local(spec.node) {
                    continue;
                }
                let rx = transport.open_endpoint(spec)?;
                let ci = spec.copy;
                if let Some(ctx) = contexts[fi][ci].as_mut() {
                    ctx.inputs.insert(
                        port.to_string(),
                        InPort {
                            name: port.to_string(),
                            rx,
                            clocks: Some(Arc::clone(&clocks[fi][ci])),
                            timeout: graph.stream_timeout,
                            faults: None,
                        },
                    );
                }
            }
        }
    }

    // Attach out ports to local producer copies: one send endpoint per
    // (producer copy, consumer endpoint).
    for s in &graph.streams {
        let key = (s.to, s.in_port.clone());
        let plan = &plans[&key];
        // One occupancy histogram per logical stream, sampled after each
        // send — the backpressure picture per consumer port.
        let queue_depth = if telemetry.is_enabled() {
            Some(telemetry.metrics.histogram(&format!(
                "dc.queue_depth.{}.{}",
                graph.filters[s.to].name, s.in_port
            )))
        } else {
            None
        };
        for (ci, slot) in contexts[s.from].iter_mut().enumerate() {
            let Some(ctx) = slot else { continue };
            let mut senders = Vec::new();
            for spec in &plan.specs {
                senders.push(transport.open_sender(spec)?);
            }
            // connect() allows listing the same stream only once per
            // out_port, so insertion here cannot clobber a different
            // destination.
            ctx.outputs.insert(
                s.out_port.clone(),
                OutPort {
                    name: s.out_port.clone(),
                    senders,
                    my_node: ctx.node,
                    rr: ctx.copy_index, // Stagger round-robin across copies.
                    stats: Arc::clone(&stats),
                    clocks: Some(Arc::clone(&clocks[s.from][ci])),
                    queue_depth: queue_depth.clone(),
                    timeout: graph.stream_timeout,
                    faults: None,
                },
            );
        }
    }
    // Wiring is done: the transport releases its own endpoint handles
    // (streams then close once producers finish) and synchronizes with
    // peer processes before any filter runs.
    transport.start()?;

    // Attach per-copy fault-injection state wherever the plan targets a
    // copy (the state is shared by all of the copy's ports and survives
    // supervised restarts, so fired faults stay fired).
    let fault_log: Arc<Mutex<Vec<FaultEvent>>> = Arc::new(Mutex::new(Vec::new()));
    if let Some(plan) = &graph.fault_plan {
        silence_injected_panics();
        let fault_counter = telemetry.metrics.counter("dc.faults_injected");
        for (fi, def) in graph.filters.iter().enumerate() {
            for (ci, slot) in contexts[fi].iter_mut().enumerate() {
                let Some(ctx) = slot else { continue };
                let specs = plan.for_copy(&def.name, ci);
                if specs.is_empty() {
                    continue;
                }
                let state = Arc::new(CopyFaults::new(
                    def.name.clone(),
                    ci,
                    specs,
                    Arc::clone(&fault_log),
                    fault_counter.clone(),
                ));
                for p in ctx.inputs.values_mut() {
                    p.faults = Some(Arc::clone(&state));
                }
                for p in ctx.outputs.values_mut() {
                    p.faults = Some(Arc::clone(&state));
                }
            }
        }
    }

    // Share each filter's factory so a supervised copy can be rebuilt
    // from its own thread after a crash.
    let factories: Vec<Arc<Mutex<FilterFactory>>> = graph
        .filters
        .iter_mut()
        .map(|def| {
            let dummy: FilterFactory =
                Box::new(|_| -> Box<dyn Filter> { unreachable!("factory already taken") });
            Arc::new(Mutex::new(std::mem::replace(&mut def.factory, dummy)))
        })
        .collect();

    // Spawn one supervisor thread per filter copy; each drives the filter
    // lifecycle, restarting crashed incarnations while budget remains.
    let restart_log: Arc<Mutex<Vec<RestartEvent>>> = Arc::new(Mutex::new(Vec::new()));
    let restart_counter = telemetry.metrics.counter("dc.restarts");
    let start = Instant::now();
    let mut handles = Vec::new();
    for (fi, def) in graph.filters.iter().enumerate() {
        for (ci, slot) in std::mem::take(&mut contexts[fi]).into_iter().enumerate() {
            let Some(ctx) = slot else { continue };
            let name = format!("{}.{}", def.name, ci);
            // Build the first incarnation on the caller's thread, like the
            // unsupervised runtime did (a factory panic here propagates).
            let first = {
                let mut factory = factories[fi].lock().unwrap_or_else(|p| p.into_inner());
                factory(ci)
            };
            let sup = Supervisor {
                factory: Arc::clone(&factories[fi]),
                filter: def.name.clone(),
                copy: ci,
                node: def.placement[ci],
                max_restarts: graph.max_restarts,
                backoff: graph.restart_backoff,
                tracer: telemetry.tracer.clone(),
                restart_log: Arc::clone(&restart_log),
                restart_counter: restart_counter.clone(),
            };
            let copy_clocks = Arc::clone(&clocks[fi][ci]);
            let handle = std::thread::Builder::new()
                .name(name.clone())
                .spawn(move || -> Result<()> {
                    let started = Instant::now();
                    let result = sup.run(first, ctx);
                    // racecheck: timing slot; the thread join below is the
                    // happens-before edge to whoever reads it.
                    copy_clocks
                        .total_ns
                        .store(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    result
                })
                .map_err(GraphStorageError::Io)?;
            handles.push((name, handle));
        }
    }

    // Collect outcomes. When several copies fail, prefer a root-cause
    // error (a crashed or faulted filter) over the secondary "hung up" /
    // timeout errors its death cascades through the graph.
    let mut errors: Vec<GraphStorageError> = Vec::new();
    for (name, handle) in handles {
        match handle.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => errors.push(e),
            // Unreachable: the supervisor catches filter panics. Kept as a
            // backstop so a runtime bug still surfaces as an error.
            Err(_) => errors.push(GraphStorageError::FilterFailed(format!(
                "filter {name} panicked"
            ))),
        }
    }
    // All local filters joined: flush close notifications to peer
    // processes and wait for theirs (no-op in-process). Best-effort when
    // the run already failed.
    let finish = transport.finish();
    if errors.is_empty() {
        finish?;
    }
    if !errors.is_empty() {
        // A "hung up" error can only arise after a peer died, a lost
        // connection is itself a root cause, and a timeout is what kills
        // the first filter of a wedged graph — so crash > transport
        // failure > timeout > disconnect-cascade as the reported cause.
        let root = errors
            .iter()
            .position(|e| {
                matches!(
                    e,
                    GraphStorageError::FilterFailed(_) | GraphStorageError::Fault(_)
                )
            })
            .or_else(|| {
                errors
                    .iter()
                    .position(|e| matches!(e, GraphStorageError::Net(_)))
            })
            .or_else(|| {
                errors
                    .iter()
                    .position(|e| matches!(e, GraphStorageError::Timeout(_)))
            })
            .unwrap_or(0);
        return Err(errors.swap_remove(root));
    }
    let mut filters = Vec::new();
    for (fi, def) in graph.filters.iter().enumerate() {
        for (ci, &node) in def.placement.iter().enumerate() {
            if !is_local(node) {
                continue;
            }
            let c = &clocks[fi][ci];
            // racecheck: timing counters read after every writer joined.
            filters.push(FilterTiming {
                filter: def.name.clone(),
                copy: ci,
                node,
                total: Duration::from_nanos(c.total_ns.load(Ordering::Relaxed)),
                blocked_recv: Duration::from_nanos(c.blocked_recv_ns.load(Ordering::Relaxed)),
                blocked_send: Duration::from_nanos(c.blocked_send_ns.load(Ordering::Relaxed)),
            });
        }
    }
    let restarts = restart_log.lock().unwrap().clone();
    let faults = fault_log.lock().unwrap().clone();
    Ok(RunReport {
        elapsed: start.elapsed(),
        net: stats.snapshot(),
        filters,
        restarts,
        faults,
    })
}

/// Drives one filter copy's lifecycle, restarting crashed incarnations.
struct Supervisor {
    factory: Arc<Mutex<FilterFactory>>,
    filter: String,
    copy: usize,
    node: NodeId,
    max_restarts: u32,
    backoff: Duration,
    tracer: Tracer,
    restart_log: Arc<Mutex<Vec<RestartEvent>>>,
    restart_counter: Counter,
}

impl Supervisor {
    /// Runs init → process → finalize, restarting on panic while budget
    /// remains.
    ///
    /// Semantics, pinned for the failure-model doc:
    /// - Only *panics* are retried: an error a filter returns is a
    ///   deterministic, deliberate outcome and fails the run immediately
    ///   (fail-stop), exactly like an unsupervised run.
    /// - Every non-final attempt runs on cloned ports, so the copy's
    ///   channel endpoints stay open across the crash and a restarted
    ///   incarnation resumes the same streams; nothing the crashed
    ///   incarnation already consumed is re-delivered.
    /// - The final allowed attempt takes ownership of the ports, so once
    ///   the budget is spent (or with no supervision at all) endpoint
    ///   lifetimes match the classic runtime exactly — including
    ///   `close_output`-then-drain protocols.
    fn run(&self, first: Box<dyn Filter>, ctx: FilterContext) -> Result<()> {
        let mut attempt: u32 = 0;
        let mut template = Some(ctx);
        let mut prebuilt = Some(first);
        loop {
            let last = attempt >= self.max_restarts;
            let mut ctx = if last {
                template.take().expect("context template present")
            } else {
                template
                    .as_ref()
                    .expect("context template present")
                    .clone_ports()
            };
            let mut filter = match prebuilt.take() {
                Some(f) => f,
                None => {
                    let factory = &self.factory;
                    let copy = self.copy;
                    match catch_unwind(AssertUnwindSafe(|| {
                        let mut f = factory.lock().unwrap_or_else(|p| p.into_inner());
                        f(copy)
                    })) {
                        Ok(f) => f,
                        // A factory that cannot rebuild the copy (e.g. a
                        // one-shot source) ends supervision immediately.
                        Err(payload) => {
                            return Err(GraphStorageError::FilterFailed(format!(
                                "filter {}.{}: factory panicked during restart: {}",
                                self.filter,
                                self.copy,
                                panic_message(payload.as_ref())
                            )));
                        }
                    }
                }
            };
            let outcome = {
                let _span = self
                    .tracer
                    .span("filter.run")
                    .with_str("filter", &self.filter)
                    .with("copy", self.copy as u64)
                    .with("node", self.node as u64)
                    .with("attempt", attempt as u64);
                catch_unwind(AssertUnwindSafe(|| {
                    filter.init(&mut ctx)?;
                    filter.process(&mut ctx)?;
                    filter.finalize(&mut ctx)
                }))
            };
            match outcome {
                Ok(Ok(())) => return Ok(()),
                Ok(Err(e)) => return Err(e),
                Err(payload) => {
                    let cause = panic_message(payload.as_ref());
                    if last {
                        let after = if attempt > 0 {
                            format!(" (after {attempt} restarts)")
                        } else {
                            String::new()
                        };
                        return Err(GraphStorageError::FilterFailed(format!(
                            "filter {}.{} panicked{after}: {cause}",
                            self.filter, self.copy
                        )));
                    }
                    attempt += 1;
                    self.restart_counter.inc();
                    drop(
                        self.tracer
                            .span("filter.restart")
                            .with_str("filter", &self.filter)
                            .with("copy", self.copy as u64)
                            .with("attempt", attempt as u64),
                    );
                    self.restart_log.lock().unwrap().push(RestartEvent {
                        filter: self.filter.clone(),
                        copy: self.copy,
                        attempt,
                        cause,
                    });
                    // Exponential backoff, capped at 64× the base.
                    std::thread::sleep(self.backoff.saturating_mul(1 << (attempt - 1).min(6)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DataBuffer;
    use crate::filter::Filter;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Producer {
        count: u64,
    }

    impl Filter for Producer {
        fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
            for i in 0..self.count {
                ctx.output("out")?
                    .send_rr(DataBuffer::from_words(0, &[i]))?;
            }
            Ok(())
        }
    }

    struct Collector {
        sum: Arc<AtomicU64>,
    }

    impl Filter for Collector {
        fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
            while let Some(b) = ctx.input("in")?.recv()? {
                for w in b.words() {
                    self.sum.fetch_add(w, Ordering::Relaxed);
                }
            }
            Ok(())
        }
    }

    #[test]
    fn pipeline_delivers_all_data() {
        let sum = Arc::new(AtomicU64::new(0));
        let mut g = GraphBuilder::new();
        let p = g
            .add_filter("p", vec![0], |_| Box::new(Producer { count: 100 }))
            .unwrap();
        let sum2 = Arc::clone(&sum);
        let c = g
            .add_filter("c", vec![1, 2], move |_| {
                Box::new(Collector {
                    sum: Arc::clone(&sum2),
                })
            })
            .unwrap();
        g.connect(p, "out", c, "in").unwrap();
        let report = g.run().unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum::<u64>());
        assert_eq!(report.net.local_msgs + report.net.remote_msgs, 100);
    }

    #[test]
    fn colocated_filters_count_as_local() {
        let sum = Arc::new(AtomicU64::new(0));
        let mut g = GraphBuilder::new();
        let p = g
            .add_filter("p", vec![3], |_| Box::new(Producer { count: 10 }))
            .unwrap();
        let sum2 = Arc::clone(&sum);
        let c = g
            .add_filter("c", vec![3], move |_| {
                Box::new(Collector {
                    sum: Arc::clone(&sum2),
                })
            })
            .unwrap();
        g.connect(p, "out", c, "in").unwrap();
        let report = g.run().unwrap();
        assert_eq!(report.net.local_msgs, 10);
        assert_eq!(report.net.remote_msgs, 0);
    }

    struct Broadcaster;
    impl Filter for Broadcaster {
        fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
            ctx.output("out")?
                .broadcast(DataBuffer::from_words(0, &[7]))?;
            Ok(())
        }
    }

    #[test]
    fn broadcast_reaches_every_copy() {
        let sum = Arc::new(AtomicU64::new(0));
        let mut g = GraphBuilder::new();
        let b = g
            .add_filter("b", vec![0], |_| Box::new(Broadcaster))
            .unwrap();
        let sum2 = Arc::clone(&sum);
        let c = g
            .add_filter("c", vec![1, 2, 3, 4], move |_| {
                Box::new(Collector {
                    sum: Arc::clone(&sum2),
                })
            })
            .unwrap();
        g.connect(b, "out", c, "in").unwrap();
        g.run().unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 28);
    }

    struct Failer;
    impl Filter for Failer {
        fn process(&mut self, _ctx: &mut FilterContext) -> Result<()> {
            Err(GraphStorageError::Unsupported("deliberate".into()))
        }
    }

    #[test]
    fn filter_errors_propagate() {
        let mut g = GraphBuilder::new();
        g.add_filter("f", vec![0], |_| Box::new(Failer)).unwrap();
        let err = g.run().unwrap_err();
        assert!(err.to_string().contains("deliberate"));
    }

    struct Panicker;
    impl Filter for Panicker {
        fn process(&mut self, _ctx: &mut FilterContext) -> Result<()> {
            panic!("boom");
        }
    }

    #[test]
    fn filter_panics_become_errors() {
        let mut g = GraphBuilder::new();
        g.add_filter("f", vec![0], |_| Box::new(Panicker)).unwrap();
        let err = g.run().unwrap_err();
        assert!(err.to_string().contains("panicked"));
    }

    #[test]
    fn supervised_copy_restarts_after_injected_panic() {
        let sum = Arc::new(AtomicU64::new(0));
        let mut g = GraphBuilder::new();
        g.supervise(2, Duration::from_millis(1));
        g.fault_plan(crate::FaultPlan::new().inject("c", Some(0), 3, crate::FaultKind::Panic));
        let p = g
            .add_filter("p", vec![0], |_| Box::new(Producer { count: 50 }))
            .unwrap();
        let sum2 = Arc::clone(&sum);
        let c = g
            .add_filter("c", vec![1], move |_| {
                Box::new(Collector {
                    sum: Arc::clone(&sum2),
                })
            })
            .unwrap();
        g.connect(p, "out", c, "in").unwrap();
        let report = g.run().unwrap();
        // The panic fires at a recv boundary, before the buffer is popped,
        // so the restarted incarnation loses nothing.
        assert_eq!(sum.load(Ordering::Relaxed), (0..50).sum::<u64>());
        assert_eq!(report.restarts.len(), 1);
        assert_eq!(report.restarts[0].filter, "c");
        assert_eq!(report.restarts[0].attempt, 1);
        assert!(report.restarts[0].cause.contains("injected"));
        assert_eq!(report.faults.len(), 1);
        assert_eq!(report.faults[0].kind, "panic");
    }

    #[test]
    fn restarts_exhausted_surface_typed_error() {
        let mut g = GraphBuilder::new();
        g.supervise(1, Duration::from_millis(1));
        g.fault_plan(
            crate::FaultPlan::new()
                .inject("c", Some(0), 1, crate::FaultKind::Panic)
                .inject("c", Some(0), 2, crate::FaultKind::Panic),
        );
        let p = g
            .add_filter("p", vec![0], |_| Box::new(Producer { count: 5 }))
            .unwrap();
        let c = g
            .add_filter("c", vec![1], |_| {
                Box::new(Collector {
                    sum: Arc::new(AtomicU64::new(0)),
                })
            })
            .unwrap();
        g.connect(p, "out", c, "in").unwrap();
        let err = g.run().unwrap_err();
        match &err {
            GraphStorageError::FilterFailed(m) => {
                assert!(m.contains("panicked"), "got: {m}");
                assert!(m.contains("after 1 restarts"), "got: {m}");
            }
            other => panic!("expected FilterFailed, got {other:?}"),
        }
    }

    #[test]
    fn injected_send_error_is_fail_stop() {
        let mut g = GraphBuilder::new();
        g.fault_plan(crate::FaultPlan::new().inject("p", Some(0), 3, crate::FaultKind::SendError));
        let p = g
            .add_filter("p", vec![0], |_| Box::new(Producer { count: 50 }))
            .unwrap();
        let c = g
            .add_filter("c", vec![1], |_| {
                Box::new(Collector {
                    sum: Arc::new(AtomicU64::new(0)),
                })
            })
            .unwrap();
        g.connect(p, "out", c, "in").unwrap();
        let err = g.run().unwrap_err();
        assert!(
            matches!(err, GraphStorageError::Fault(_)),
            "expected injected fault to propagate, got {err:?}"
        );
    }

    #[test]
    fn stalls_fire_and_are_audited() {
        let mut g = GraphBuilder::new();
        g.fault_plan(crate::FaultPlan::new().inject(
            "p",
            Some(0),
            1,
            crate::FaultKind::Stall(Duration::from_millis(5)),
        ));
        let p = g
            .add_filter("p", vec![0], |_| Box::new(Producer { count: 10 }))
            .unwrap();
        let c = g
            .add_filter("c", vec![1], |_| {
                Box::new(Collector {
                    sum: Arc::new(AtomicU64::new(0)),
                })
            })
            .unwrap();
        g.connect(p, "out", c, "in").unwrap();
        let report = g.run().unwrap();
        assert_eq!(report.faults.len(), 1);
        assert!(report.faults[0].kind.starts_with("stall"));
    }

    /// Holds an output port open without ever sending, then exits.
    struct Mute {
        linger: Duration,
    }
    impl Filter for Mute {
        fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
            let _ = ctx.output("out")?;
            std::thread::sleep(self.linger);
            Ok(())
        }
    }

    #[test]
    fn stream_timeout_turns_starved_recv_into_typed_error() {
        let mut g = GraphBuilder::new();
        g.stream_timeout(Duration::from_millis(20));
        let p = g
            .add_filter("p", vec![0], |_| {
                Box::new(Mute {
                    linger: Duration::from_millis(300),
                })
            })
            .unwrap();
        let c = g
            .add_filter("c", vec![1], |_| {
                Box::new(Collector {
                    sum: Arc::new(AtomicU64::new(0)),
                })
            })
            .unwrap();
        g.connect(p, "out", c, "in").unwrap();
        let start = Instant::now();
        let err = g.run().unwrap_err();
        assert!(
            matches!(err, GraphStorageError::Timeout(_)),
            "expected timeout, got {err:?}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "the run must not hang"
        );
    }

    #[test]
    fn double_connected_out_port_rejected() {
        let mut g = GraphBuilder::new();
        let p = g
            .add_filter("p", vec![0], |_| Box::new(Producer { count: 1 }))
            .unwrap();
        let c1 = g
            .add_filter("c1", vec![0], |_| {
                Box::new(Collector {
                    sum: Arc::new(AtomicU64::new(0)),
                })
            })
            .unwrap();
        let c2 = g
            .add_filter("c2", vec![0], |_| {
                Box::new(Collector {
                    sum: Arc::new(AtomicU64::new(0)),
                })
            })
            .unwrap();
        g.connect(p, "out", c1, "in").unwrap();
        // Re-wiring the same out port is now rejected when the stream is
        // declared, with a typed error naming both destinations.
        let err = g.connect(p, "out", c2, "in").unwrap_err();
        assert!(
            matches!(err, mssg_types::VerifyError::OutPortConflict { .. }),
            "got {err:?}"
        );
    }

    /// All-to-all exchange among copies of one filter — the communication
    /// pattern of the parallel BFS.
    struct Exchanger {
        got: Arc<AtomicU64>,
    }

    impl Filter for Exchanger {
        fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
            let me = ctx.copy_index as u64;
            let copies = ctx.copies;
            ctx.output("peers")?
                .broadcast(DataBuffer::from_words(me, &[me * 10]))?;
            ctx.close_output("peers");
            let mut received = 0;
            while let Some(b) = ctx.input("peers")?.recv()? {
                self.got.fetch_add(b.words()[0], Ordering::Relaxed);
                received += 1;
            }
            assert_eq!(
                received, copies,
                "each copy hears every copy (incl. itself)"
            );
            Ok(())
        }
    }

    #[test]
    fn self_connected_all_to_all() {
        let got = Arc::new(AtomicU64::new(0));
        let mut g = GraphBuilder::new();
        let got2 = Arc::clone(&got);
        let e = g
            .add_filter("x", vec![0, 1, 2], move |_| {
                Box::new(Exchanger {
                    got: Arc::clone(&got2),
                })
            })
            .unwrap();
        g.connect(e, "peers", e, "peers").unwrap();
        g.run().unwrap();
        // Each of 3 copies broadcasts its value to all 3: sum = 3*(0+10+20).
        assert_eq!(got.load(Ordering::Relaxed), 90);
    }

    /// Consumer that sleeps per item, simulating a slow node.
    struct SlowCollector {
        delay_us: u64,
        got: Arc<AtomicU64>,
        total: Arc<AtomicU64>,
    }

    impl Filter for SlowCollector {
        fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
            while let Some(b) = ctx.input("in")?.recv()? {
                std::thread::sleep(std::time::Duration::from_micros(self.delay_us));
                self.got.fetch_add(1, Ordering::Relaxed);
                self.total.fetch_add(b.words()[0], Ordering::Relaxed);
            }
            Ok(())
        }
    }

    #[test]
    fn shared_queue_delivers_everything_once() {
        let total = Arc::new(AtomicU64::new(0));
        let counts: Vec<Arc<AtomicU64>> = (0..3).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut g = GraphBuilder::new();
        let p = g
            .add_filter("p", vec![0], |_| Box::new(Producer { count: 300 }))
            .unwrap();
        let total2 = Arc::clone(&total);
        let counts2 = counts.clone();
        let c = g
            .add_filter("c", vec![1, 2, 3], move |i| {
                Box::new(SlowCollector {
                    delay_us: 0,
                    got: Arc::clone(&counts2[i]),
                    total: Arc::clone(&total2),
                })
            })
            .unwrap();
        g.connect_shared(p, "out", c, "in").unwrap();
        let report = g.run().unwrap();
        assert_eq!(total.load(Ordering::Relaxed), (0..300).sum::<u64>());
        let per: Vec<u64> = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        assert_eq!(
            per.iter().sum::<u64>(),
            300,
            "each item consumed exactly once"
        );
        // Shared-queue traffic is charged as remote.
        assert_eq!(report.net.remote_msgs, 300);
    }

    #[test]
    fn shared_queue_balances_by_demand() {
        // One consumer is 100× slower; the fast one must take the bulk of
        // the work — River's adaptive allocation.
        let total = Arc::new(AtomicU64::new(0));
        let counts: Vec<Arc<AtomicU64>> = (0..2).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let mut g = GraphBuilder::new();
        // Small channel so the producer cannot just park everything in the
        // queue ahead of the consumers.
        g.channel_capacity(4);
        let p = g
            .add_filter("p", vec![0], |_| Box::new(Producer { count: 200 }))
            .unwrap();
        let total2 = Arc::clone(&total);
        let counts2 = counts.clone();
        let c = g
            .add_filter("c", vec![1, 2], move |i| {
                Box::new(SlowCollector {
                    delay_us: if i == 0 { 500 } else { 5 },
                    got: Arc::clone(&counts2[i]),
                    total: Arc::clone(&total2),
                })
            })
            .unwrap();
        g.connect_shared(p, "out", c, "in").unwrap();
        g.run().unwrap();
        let slow = counts[0].load(Ordering::Relaxed);
        let fast = counts[1].load(Ordering::Relaxed);
        assert_eq!(slow + fast, 200);
        assert!(
            fast > 3 * slow,
            "demand-driven queue should favour the fast consumer (fast={fast}, slow={slow})"
        );
    }

    #[test]
    fn mixed_shared_and_addressed_wiring_rejected() {
        let mut g = GraphBuilder::new();
        let p1 = g
            .add_filter("p1", vec![0], |_| Box::new(Producer { count: 1 }))
            .unwrap();
        let p2 = g
            .add_filter("p2", vec![0], |_| Box::new(Producer { count: 1 }))
            .unwrap();
        let c = g
            .add_filter("c", vec![1], |_| {
                Box::new(Collector {
                    sum: Arc::new(AtomicU64::new(0)),
                })
            })
            .unwrap();
        g.connect(p1, "out", c, "in").unwrap();
        let err = g.connect_shared(p2, "out", c, "in").unwrap_err();
        assert!(
            matches!(err, mssg_types::VerifyError::MixedWiring { .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn report_includes_per_filter_breakdown() {
        let sum = Arc::new(AtomicU64::new(0));
        let mut g = GraphBuilder::new();
        // Tiny channel + slow consumer: the producer must spend most of
        // its time blocked on send.
        g.channel_capacity(2);
        let p = g
            .add_filter("p", vec![0], |_| Box::new(Producer { count: 50 }))
            .unwrap();
        let sum2 = Arc::clone(&sum);
        let c = g
            .add_filter("c", vec![1], move |_| {
                Box::new(SlowCollector {
                    delay_us: 500,
                    got: Arc::new(AtomicU64::new(0)),
                    total: Arc::clone(&sum2),
                })
            })
            .unwrap();
        g.connect(p, "out", c, "in").unwrap();
        let report = g.run().unwrap();
        assert_eq!(report.filters.len(), 2);
        let timing = |name: &str| report.filters.iter().find(|t| t.filter == name).unwrap();
        let producer = timing("p");
        assert!(producer.total > Duration::ZERO);
        assert!(
            producer.blocked_send > producer.total / 2,
            "producer should be mostly backpressured (blocked {:?} of {:?})",
            producer.blocked_send,
            producer.total
        );
        let consumer = timing("c");
        assert!(consumer.busy() <= consumer.total);
        assert_eq!(consumer.copy, 0);
        assert_eq!(consumer.node, 1);
    }

    #[test]
    fn telemetry_records_spans_and_queue_depth() {
        let telemetry = mssg_obs::Telemetry::enabled();
        let sum = Arc::new(AtomicU64::new(0));
        let mut g = GraphBuilder::new();
        g.telemetry(telemetry.clone());
        let p = g
            .add_filter("p", vec![0], |_| Box::new(Producer { count: 100 }))
            .unwrap();
        let sum2 = Arc::clone(&sum);
        let c = g
            .add_filter("c", vec![1, 2], move |_| {
                Box::new(Collector {
                    sum: Arc::clone(&sum2),
                })
            })
            .unwrap();
        g.connect(p, "out", c, "in").unwrap();
        g.run().unwrap();

        // One filter.run span per copy (1 producer + 2 consumers).
        let spans = telemetry.tracer.finished_spans();
        let runs: Vec<_> = spans.iter().filter(|s| s.name == "filter.run").collect();
        assert_eq!(runs.len(), 3);

        // Queue occupancy was sampled once per send into the stream's
        // histogram.
        let snap = telemetry.metrics.snapshot();
        let depth = &snap.histograms["dc.queue_depth.c.in"];
        assert_eq!(depth.count, 100);
    }

    #[test]
    fn filters_reach_telemetry_through_context() {
        struct Spanner;
        impl Filter for Spanner {
            fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
                let _s = ctx.telemetry().tracer.span("inner.work").with("copy", 1);
                ctx.telemetry().metrics.counter("spanner.calls").inc();
                Ok(())
            }
        }
        let telemetry = mssg_obs::Telemetry::enabled();
        let mut g = GraphBuilder::new();
        g.telemetry(telemetry.clone());
        g.add_filter("s", vec![0], |_| Box::new(Spanner)).unwrap();
        g.run().unwrap();
        assert!(telemetry
            .tracer
            .finished_spans()
            .iter()
            .any(|s| s.name == "inner.work"));
        assert_eq!(telemetry.metrics.snapshot().counters["spanner.calls"], 1);
        // The inner span nests under the runtime's filter.run span.
        let inner = telemetry
            .tracer
            .finished_spans()
            .into_iter()
            .find(|s| s.name == "inner.work");
        assert_eq!(inner.unwrap().path, "filter.run;inner.work");
    }

    #[test]
    fn missing_port_is_an_error() {
        struct NeedsPort;
        impl Filter for NeedsPort {
            fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
                ctx.output("ghost")?;
                Ok(())
            }
        }
        let mut g = GraphBuilder::new();
        g.add_filter("n", vec![0], |_| Box::new(NeedsPort)).unwrap();
        assert!(g.run().is_err());
    }
}
