//! Static verification of filter graphs: wiring checks and
//! bounded-buffer deadlock analysis, run by [`GraphBuilder::verify`] and
//! gating [`GraphBuilder::run`] by default.
//!
//! ## What is checked
//!
//! **Wiring** (for filters that opted in via
//! [`GraphBuilder::declare_ports`]): every declared port is connected,
//! and every stream touching the filter uses a declared port name. The
//! runtime only discovers a missing port when a filter first asks for it
//! — possibly minutes into a run; declarations move that to launch time.
//!
//! **Decluster contracts** ([`GraphBuilder::expect_consumers`]): a
//! producer that addresses consumer copies by index (`send_to(i)`,
//! round-robin ranges) encodes an assumption about the consumer's copy
//! count. The verifier checks the assumption against the placement
//! actually wired.
//!
//! **Capacity-starved cycles** — the credit-flow analysis. Every stream
//! is a bounded buffer; a cycle of filters can deadlock when all of its
//! buffers fill and every filter blocks on `send` while holding back the
//! `recv` that would drain its predecessor. For each elementary cycle
//! `C` the verifier compares:
//!
//! - `credit(C)`: total messages the cycle's buffers can absorb —
//!   `Σ capacity × queues(stream)`, where an addressed stream has one
//!   queue per consumer copy and a shared stream has one queue total;
//! - `window(C)`: the largest burst any producing stage may have in
//!   flight before it drains its own input —
//!   `max(send_window(filter, out_port) × copies(filter))` over the
//!   cycle's edges (send windows declared via
//!   [`GraphBuilder::send_window`], default 1).
//!
//! If `credit(C) < window(C)`, some schedule can wedge the cycle and the
//! graph is rejected with
//! [`VerifyError::CapacityStarvedCycle`] naming the cycle's edges.
//!
//! ## What it cannot prove
//!
//! The analysis is *topological*: it ignores buffers a filter holds in
//! hand between `recv` and `send` (each forwarder in a k-ring can park
//! one extra message, so rings with `credit < window ≤ credit + k − 1`
//! are rejected conservatively even though they squeak by), it trusts
//! declared send windows rather than inferring them from filter code,
//! and it says nothing about protocol-level hangs — a filter that simply
//! never sends what its peer awaits deadlocks with empty buffers; that
//! class is covered by `stream_timeout` at runtime, not statically.
//! Cross-validation of both directions lives in
//! `tests/verify_props.rs` (accepted graphs complete; rejected ring
//! topologies demonstrably deadlock when run unverified).

use crate::graph::GraphBuilder;
use mssg_types::VerifyError;
use std::collections::HashMap;

/// Most elementary cycles examined before the analysis stops adding
/// findings (a safety valve for pathological topologies; real graphs in
/// this workspace have a handful).
const MAX_CYCLES: usize = 256;

/// Runs every static check over the built graph, returning all findings
/// (empty result = verified). See the module docs for the check list.
pub(crate) fn verify(g: &GraphBuilder) -> Result<(), Vec<VerifyError>> {
    let mut errs: Vec<VerifyError> = Vec::new();
    check_declarations(g, &mut errs);
    check_consumer_contracts(g, &mut errs);
    check_cycles(g, &mut errs);
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

fn check_declarations(g: &GraphBuilder, errs: &mut Vec<VerifyError>) {
    for (&fi, decl) in &g.decls {
        let name = &g.filters[fi].name;
        for port in &decl.inputs {
            if !g.streams.iter().any(|s| s.to == fi && &s.in_port == port) {
                errs.push(VerifyError::UnconnectedInPort {
                    filter: name.clone(),
                    port: port.clone(),
                });
            }
        }
        for port in &decl.outputs {
            if !g
                .streams
                .iter()
                .any(|s| s.from == fi && &s.out_port == port)
            {
                errs.push(VerifyError::UnconnectedOutPort {
                    filter: name.clone(),
                    port: port.clone(),
                });
            }
        }
        for s in &g.streams {
            if s.to == fi && !decl.inputs.contains(&s.in_port) {
                errs.push(VerifyError::UndeclaredPort {
                    filter: name.clone(),
                    port: s.in_port.clone(),
                    input: true,
                });
            }
            if s.from == fi && !decl.outputs.contains(&s.out_port) {
                errs.push(VerifyError::UndeclaredPort {
                    filter: name.clone(),
                    port: s.out_port.clone(),
                    input: false,
                });
            }
        }
    }
}

fn check_consumer_contracts(g: &GraphBuilder, errs: &mut Vec<VerifyError>) {
    for ((fi, out_port), &expected) in &g.expected_consumers {
        for s in &g.streams {
            if s.from == *fi && &s.out_port == out_port {
                let actual = g.filters[s.to].placement.len();
                if actual != expected {
                    errs.push(VerifyError::ConsumerMismatch {
                        filter: g.filters[*fi].name.clone(),
                        out_port: out_port.clone(),
                        expected,
                        actual,
                    });
                }
            }
        }
    }
}

/// Buffer credit one stream contributes to a cycle: its capacity times
/// its queue count (addressed streams get one queue per consumer copy).
fn stream_credit(g: &GraphBuilder, edge: usize) -> u64 {
    let s = &g.streams[edge];
    let queues = if s.shared {
        1
    } else {
        g.filters[s.to].placement.len()
    };
    g.channel_capacity as u64 * queues as u64
}

/// In-flight demand one stream's producer contributes: its declared
/// per-copy send window times its copy count.
fn stream_window(g: &GraphBuilder, edge: usize) -> u64 {
    let s = &g.streams[edge];
    let per_copy = g
        .windows
        .get(&(s.from, s.out_port.clone()))
        .copied()
        .unwrap_or(1);
    per_copy * g.filters[s.from].placement.len() as u64
}

fn check_cycles(g: &GraphBuilder, errs: &mut Vec<VerifyError>) {
    // Adjacency by filter: for each ordered filter pair, the cheapest
    // (least-credit) stream edge — the conservative representative when
    // parallel edges exist, since a cycle through the tightest buffers
    // is the first to starve.
    let n = g.filters.len();
    let mut adj: HashMap<(usize, usize), usize> = HashMap::new();
    for (ei, s) in g.streams.iter().enumerate() {
        let key = (s.from, s.to);
        match adj.get(&key) {
            Some(&prev) if stream_credit(g, prev) <= stream_credit(g, ei) => {}
            _ => {
                adj.insert(key, ei);
            }
        }
    }
    let succ: Vec<Vec<usize>> = (0..n)
        .map(|f| {
            let mut out: Vec<usize> = adj
                .iter()
                .filter(|((from, _), _)| *from == f)
                .map(|(_, &e)| e)
                .collect();
            out.sort_unstable();
            out
        })
        .collect();

    // Elementary-cycle enumeration: DFS from each start filter, visiting
    // only filters ≥ start (each cycle is found exactly once, rooted at
    // its smallest filter index).
    let mut found = 0usize;
    for start in 0..n {
        let mut path: Vec<usize> = Vec::new(); // stream edge indices
        let mut on_stack = vec![false; n];
        dfs(
            g,
            &succ,
            start,
            start,
            &mut path,
            &mut on_stack,
            &mut found,
            errs,
        );
        if found >= MAX_CYCLES {
            break;
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &GraphBuilder,
    succ: &[Vec<usize>],
    start: usize,
    at: usize,
    path: &mut Vec<usize>,
    on_stack: &mut [bool],
    found: &mut usize,
    errs: &mut Vec<VerifyError>,
) {
    if *found >= MAX_CYCLES {
        return;
    }
    on_stack[at] = true;
    for &edge in &succ[at] {
        let to = g.streams[edge].to;
        if to < start {
            continue;
        }
        if to == start {
            path.push(edge);
            *found += 1;
            audit_cycle(g, path, errs);
            path.pop();
        } else if !on_stack[to] {
            path.push(edge);
            dfs(g, succ, start, to, path, on_stack, found, errs);
            path.pop();
        }
    }
    on_stack[at] = false;
}

fn audit_cycle(g: &GraphBuilder, edges: &[usize], errs: &mut Vec<VerifyError>) {
    let credit: u64 = edges.iter().map(|&e| stream_credit(g, e)).sum();
    let window: u64 = edges
        .iter()
        .map(|&e| stream_window(g, e))
        .max()
        .unwrap_or(1);
    if credit < window {
        let cycle = edges
            .iter()
            .map(|&e| {
                let s = &g.streams[e];
                format!(
                    "{}.{} -> {}.{}",
                    g.filters[s.from].name, s.out_port, g.filters[s.to].name, s.in_port
                )
            })
            .collect();
        errs.push(VerifyError::CapacityStarvedCycle {
            cycle,
            credit,
            window,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DataBuffer;
    use crate::filter::{Filter, FilterContext};
    use mssg_types::Result;

    /// Inert filter for topology-only tests.
    struct Nop;
    impl Filter for Nop {
        fn process(&mut self, _ctx: &mut FilterContext) -> Result<()> {
            Ok(())
        }
    }

    fn nop() -> Box<dyn Filter> {
        Box::new(Nop)
    }

    #[test]
    fn empty_graph_verifies() {
        let g = GraphBuilder::new();
        assert!(g.verify().is_ok());
    }

    #[test]
    fn undeclared_graphs_get_structural_checks_only() {
        // No declarations: a dangling filter is fine (sources/sinks exist).
        let mut g = GraphBuilder::new();
        g.add_filter("solo", vec![0], |_| nop()).unwrap();
        assert!(g.verify().is_ok());
    }

    #[test]
    fn declared_ports_must_be_connected() {
        let mut g = GraphBuilder::new();
        let f = g.add_filter("f", vec![0], |_| nop()).unwrap();
        g.declare_ports(f, &["in"], &["out"]);
        let errs = g.verify().unwrap_err();
        assert!(errs.iter().any(
            |e| matches!(e, VerifyError::UnconnectedInPort { filter, port }
                if filter == "f" && port == "in")
        ));
        assert!(errs.iter().any(
            |e| matches!(e, VerifyError::UnconnectedOutPort { filter, port }
                if filter == "f" && port == "out")
        ));
    }

    #[test]
    fn streams_must_use_declared_ports() {
        let mut g = GraphBuilder::new();
        let a = g.add_filter("a", vec![0], |_| nop()).unwrap();
        let b = g.add_filter("b", vec![0], |_| nop()).unwrap();
        g.declare_ports(b, &["expected"], &[]);
        g.connect(a, "out", b, "typo").unwrap();
        let errs = g.verify().unwrap_err();
        assert!(errs.iter().any(
            |e| matches!(e, VerifyError::UndeclaredPort { filter, port, input: true }
                if filter == "b" && port == "typo")
        ));
    }

    #[test]
    fn consumer_contract_mismatch_detected() {
        let mut g = GraphBuilder::new();
        let p = g.add_filter("p", vec![0], |_| nop()).unwrap();
        let c = g.add_filter("c", vec![1, 2], |_| nop()).unwrap();
        g.connect(p, "out", c, "in").unwrap();
        g.expect_consumers(p, "out", 4);
        let errs = g.verify().unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            VerifyError::ConsumerMismatch {
                expected: 4,
                actual: 2,
                ..
            }
        )));
        // Matching contract verifies clean.
        let mut g = GraphBuilder::new();
        let p = g.add_filter("p", vec![0], |_| nop()).unwrap();
        let c = g.add_filter("c", vec![1, 2], |_| nop()).unwrap();
        g.connect(p, "out", c, "in").unwrap();
        g.expect_consumers(p, "out", 2);
        assert!(g.verify().is_ok());
    }

    #[test]
    fn acyclic_pipelines_always_pass_the_cycle_check() {
        let mut g = GraphBuilder::new();
        g.channel_capacity(1);
        let a = g.add_filter("a", vec![0], |_| nop()).unwrap();
        let b = g.add_filter("b", vec![0], |_| nop()).unwrap();
        let c = g.add_filter("c", vec![0], |_| nop()).unwrap();
        g.connect(a, "out", b, "in").unwrap();
        g.connect(b, "out", c, "in").unwrap();
        g.send_window(a, "out", 1_000_000);
        assert!(g.verify().is_ok(), "no cycle, no credit constraint");
    }

    #[test]
    fn capacity_starved_ring_rejected_with_named_cycle() {
        // Two-filter ring, capacity 1 each way (credit 2), but the driver
        // declares it bursts 4 before draining: starved.
        let mut g = GraphBuilder::new();
        g.channel_capacity(1);
        let a = g.add_filter("a", vec![0], |_| nop()).unwrap();
        let b = g.add_filter("b", vec![0], |_| nop()).unwrap();
        g.connect(a, "down", b, "in").unwrap();
        g.connect(b, "up", a, "back").unwrap();
        g.send_window(a, "down", 4);
        let errs = g.verify().unwrap_err();
        let starved = errs
            .iter()
            .find_map(|e| match e {
                VerifyError::CapacityStarvedCycle {
                    cycle,
                    credit,
                    window,
                } => Some((cycle, *credit, *window)),
                _ => None,
            })
            .expect("starved cycle reported");
        let (cycle, credit, window) = starved;
        assert_eq!(credit, 2);
        assert_eq!(window, 4);
        assert!(
            cycle.iter().any(|e| e.contains("a.down -> b.in")),
            "{cycle:?}"
        );
        assert!(
            cycle.iter().any(|e| e.contains("b.up -> a.back")),
            "{cycle:?}"
        );
        // The same ring with enough credit passes.
        let mut g = GraphBuilder::new();
        g.channel_capacity(2);
        let a = g.add_filter("a", vec![0], |_| nop()).unwrap();
        let b = g.add_filter("b", vec![0], |_| nop()).unwrap();
        g.connect(a, "down", b, "in").unwrap();
        g.connect(b, "up", a, "back").unwrap();
        g.send_window(a, "down", 4);
        assert!(g.verify().is_ok());
    }

    #[test]
    fn self_loop_window_scales_with_copies() {
        // One filter, 3 copies, all-to-all self-loop. Each copy may have
        // `w` in flight, so the cycle's window is 3w; the addressed
        // stream has one queue per copy, so credit is 3·cap.
        let mut g = GraphBuilder::new();
        g.channel_capacity(2);
        let x = g.add_filter("x", vec![0, 1, 2], |_| nop()).unwrap();
        g.connect(x, "peers", x, "peers").unwrap();
        g.send_window(x, "peers", 2);
        assert!(g.verify().is_ok(), "3·2 credit ≥ 3·2 window");
        let mut g = GraphBuilder::new();
        g.channel_capacity(2);
        let x = g.add_filter("x", vec![0, 1, 2], |_| nop()).unwrap();
        g.connect(x, "peers", x, "peers").unwrap();
        g.send_window(x, "peers", 3);
        let errs = g.verify().unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            VerifyError::CapacityStarvedCycle {
                credit: 6,
                window: 9,
                ..
            }
        )));
    }

    #[test]
    fn shared_stream_counts_one_queue() {
        // Shared (demand-driven) self-loop: one queue regardless of the
        // 4 copies, so credit is just the capacity.
        let mut g = GraphBuilder::new();
        g.channel_capacity(3);
        let x = g.add_filter("x", vec![0, 1, 2, 3], |_| nop()).unwrap();
        g.connect_shared(x, "work", x, "work").unwrap();
        let errs = g.verify().unwrap_err();
        assert!(
            errs.iter().any(|e| matches!(
                e,
                VerifyError::CapacityStarvedCycle {
                    credit: 3,
                    window: 4,
                    ..
                }
            )),
            "4 copies × window 1 > shared credit 3: {errs:?}"
        );
    }

    #[test]
    fn builder_rejects_duplicates_at_build_time() {
        let mut g = GraphBuilder::new();
        g.add_filter("same", vec![0], |_| nop()).unwrap();
        assert!(matches!(
            g.add_filter("same", vec![1], |_| nop()),
            Err(VerifyError::DuplicateFilter { .. })
        ));
        assert!(matches!(
            g.add_filter("empty", vec![], |_| nop()),
            Err(VerifyError::EmptyPlacement { .. })
        ));
        let a = g.add_filter("a", vec![0], |_| nop()).unwrap();
        let b = g.add_filter("b", vec![0], |_| nop()).unwrap();
        g.connect(a, "out", b, "in").unwrap();
        assert!(matches!(
            g.connect(a, "out", b, "in"),
            Err(VerifyError::DuplicateStream { .. })
        ));
        let c = g.add_filter("c", vec![0], |_| nop()).unwrap();
        assert!(matches!(
            g.connect(a, "out", c, "in"),
            Err(VerifyError::OutPortConflict { .. })
        ));
        assert!(matches!(
            g.connect_shared(b, "x", b, "in"),
            Err(VerifyError::MixedWiring { .. })
        ));
    }

    /// A real starved ring must also be *dynamically* refused by the
    /// default gate in `run` — the static diagnostic and the gate agree.
    struct Burst {
        n: u64,
    }
    impl Filter for Burst {
        fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
            for i in 0..self.n {
                ctx.output("down")?
                    .send_to(0, DataBuffer::from_words(0, &[i]))?;
            }
            Ok(())
        }
    }

    #[test]
    fn run_refuses_unverified_graph_by_default() {
        let mut g = GraphBuilder::new();
        g.channel_capacity(1);
        let a = g
            .add_filter("a", vec![0], |_| Box::new(Burst { n: 4 }))
            .unwrap();
        let b = g.add_filter("b", vec![0], |_| nop()).unwrap();
        g.connect(a, "down", b, "in").unwrap();
        g.connect(b, "up", a, "back").unwrap();
        g.send_window(a, "down", 4);
        let err = g.run().unwrap_err();
        match err {
            mssg_types::GraphStorageError::Verify(VerifyError::CapacityStarvedCycle {
                cycle,
                ..
            }) => {
                assert!(cycle.iter().any(|e| e.contains("a.down")), "{cycle:?}");
            }
            other => panic!("expected a verify rejection, got {other:?}"),
        }
    }
}
