#![warn(missing_docs)]
//! A filter/stream component middleware — the DataCutter substrate
//! (thesis §3.1) that MSSG is built on.
//!
//! DataCutter's model: an application is a graph of *filters* that exchange
//! [`DataBuffer`]s over unidirectional *logical streams*. The runtime
//! places filter instances ("transparent copies") on cluster nodes,
//! connects the logical endpoints, and drives each filter's
//! `init` / `process` / `finalize` interface. Data exchange between filters
//! on the same host is a memory copy; between hosts it crosses the network.
//!
//! ## The cluster substitution
//!
//! The original runs over MPI on a physical cluster. Here a *node* is an OS
//! thread and a stream is a bounded crossbeam channel — preserving message
//! ordering, backpressure, and the communication structure, which is what
//! the algorithms actually observe. What a thread pool cannot preserve is
//! the *cost* of remote messages, so every send is classified local/remote
//! and counted in [`NetStats`]; [`NetworkCostModel`] converts the counts
//! into modeled network time (per-message latency + bandwidth), mirroring
//! how `simio` treats disk I/O. See DESIGN.md §2.
//!
//! ## Shape of an application
//!
//! ```
//! use datacutter::{DataBuffer, Filter, FilterContext, GraphBuilder};
//! use mssg_types::Result;
//!
//! struct Producer;
//! impl Filter for Producer {
//!     fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
//!         for i in 0..10u64 {
//!             ctx.output("out")?.send_rr(DataBuffer::from_words(0, &[i]))?;
//!         }
//!         Ok(())
//!     }
//! }
//!
//! struct Summer(u64);
//! impl Filter for Summer {
//!     fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
//!         while let Some(buf) = ctx.input("in")?.recv()? {
//!             self.0 += buf.words()[0];
//!         }
//!         Ok(())
//!     }
//! }
//!
//! let mut g = GraphBuilder::new();
//! let p = g.add_filter("producer", vec![0], |_| Box::new(Producer)).unwrap();
//! let s = g.add_filter("summer", vec![1, 2], |_| Box::new(Summer(0))).unwrap();
//! g.connect(p, "out", s, "in").unwrap();
//! let report = g.run().unwrap();
//! assert_eq!(report.net.remote_msgs + report.net.local_msgs, 10);
//! ```
//!
//! ## Static verification
//!
//! Misbuilt graphs fail *before* launch, not minutes into a run:
//! [`GraphBuilder::add_filter`] and [`GraphBuilder::connect`] reject
//! duplicate names and conflicting wiring with a typed
//! [`VerifyError`](mssg_types::VerifyError), and [`GraphBuilder::run`]
//! gates on [`GraphBuilder::verify`] — declared-port wiring, decluster
//! contracts ([`GraphBuilder::expect_consumers`]), and a credit-flow
//! analysis that rejects bounded-buffer cycles capable of deadlock,
//! naming the starved cycle. See the [`verify`] module for the
//! analysis and its limits, and [`GraphBuilder::allow_unverified`] for
//! the experiment escape hatch.
//!
//! ## Fault tolerance
//!
//! The classic DataCutter runtime is fail-stop: one dead filter copy
//! poisons the whole run. This substrate layers three opt-in mechanisms
//! on top (all off by default, preserving the classic semantics):
//!
//! - **Supervision** ([`GraphBuilder::supervise`]): a copy that *panics*
//!   is rebuilt from its factory and restarted, up to `max_restarts`
//!   times per copy with exponential backoff. Because a supervised copy's
//!   channel endpoints are kept open across the crash, a restarted
//!   incarnation resumes the same streams; whatever the dead incarnation
//!   had already consumed is *not* re-delivered (at-most-once within a
//!   run — the ingestion checkpoint in `mssg-core` upgrades this to
//!   at-least-once across runs). Errors a filter *returns* stay
//!   fail-stop. Once the budget is spent, [`GraphBuilder::run`] fails
//!   with a typed `FilterFailed` error naming the copy and its panic.
//! - **Stream timeouts** ([`GraphBuilder::stream_timeout`]): every
//!   blocking send/recv gains a deadline; exceeding it fails the
//!   operation with a typed `Timeout` error instead of hanging — the
//!   guard that turns "a peer died and will never send ROUND_DONE" into
//!   a clean error.
//! - **Fault injection** ([`FaultPlan`], [`GraphBuilder::fault_plan`]):
//!   deterministic, seed-driven panics, send errors, and stalls at
//!   chosen port operations, for chaos testing the two mechanisms above.
//!   Fired faults and restarts are audited in [`RunReport::faults`] /
//!   [`RunReport::restarts`] and the `dc.faults_injected` / `dc.restarts`
//!   counters.
//!
//! See DESIGN.md §"Failure model" for what is and is not guaranteed.
//!
//! ## Hot-path buffers
//!
//! Payloads are `Arc`-backed ([`bytes::Bytes`]): point-to-point sends move
//! one allocation end to end, broadcast shares it across consumers, and
//! the TCP transport encodes it without an intermediate copy. A
//! [`BufferPool`] closes the allocation loop entirely — consumers recycle
//! spent payloads and producers reuse them:
//!
//! ```
//! use datacutter::{BufferPool, DataBuffer};
//!
//! let pool = BufferPool::new(8);
//! let buf = pool.from_words(0, &[1, 2, 3]);
//! assert_eq!(buf.words(), vec![1, 2, 3]);
//! pool.recycle(buf);                      // unique owner: Vec goes back
//! let reused = pool.from_words(1, &[4]);  // ...and is reused here
//! assert_eq!(pool.stats().hits, 1);
//! assert_eq!(reused.words(), vec![4]);
//! ```
//!
//! See DESIGN.md §10 "Hot-path performance" for the full lifecycle and
//! the measured effect.

pub mod buffer;
pub mod fault;
pub mod filter;
pub mod graph;
pub mod netstats;
pub mod pool;
pub mod runtime;
pub mod transport;
pub mod verify;

pub use buffer::DataBuffer;
pub use fault::{splitmix64, FaultEvent, FaultKind, FaultPlan, FaultSpec};
pub use filter::{Filter, FilterContext, InPort, OutPort};
pub use graph::{FilterHandle, GraphBuilder};
pub use netstats::{NetSnapshot, NetStats, NetworkCostModel};
pub use pool::{BufferPool, PoolStats};
pub use runtime::{run_node, FilterTiming, RestartEvent, RunReport};
pub use transport::{
    ChannelRx, ChannelTx, EndpointSpec, InProc, RecvOutcome, RxEndpoint, SendOutcome, Transport,
    TxEndpoint, SHARED_NODE,
};

/// Identifies a logical cluster node (a thread in this substrate).
pub type NodeId = usize;
