#![warn(missing_docs)]
//! A filter/stream component middleware — the DataCutter substrate
//! (thesis §3.1) that MSSG is built on.
//!
//! DataCutter's model: an application is a graph of *filters* that exchange
//! [`DataBuffer`]s over unidirectional *logical streams*. The runtime
//! places filter instances ("transparent copies") on cluster nodes,
//! connects the logical endpoints, and drives each filter's
//! `init` / `process` / `finalize` interface. Data exchange between filters
//! on the same host is a memory copy; between hosts it crosses the network.
//!
//! ## The cluster substitution
//!
//! The original runs over MPI on a physical cluster. Here a *node* is an OS
//! thread and a stream is a bounded crossbeam channel — preserving message
//! ordering, backpressure, and the communication structure, which is what
//! the algorithms actually observe. What a thread pool cannot preserve is
//! the *cost* of remote messages, so every send is classified local/remote
//! and counted in [`NetStats`]; [`NetworkCostModel`] converts the counts
//! into modeled network time (per-message latency + bandwidth), mirroring
//! how `simio` treats disk I/O. See DESIGN.md §2.
//!
//! ## Shape of an application
//!
//! ```
//! use datacutter::{DataBuffer, Filter, FilterContext, GraphBuilder};
//! use mssg_types::Result;
//!
//! struct Producer;
//! impl Filter for Producer {
//!     fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
//!         for i in 0..10u64 {
//!             ctx.output("out")?.send_rr(DataBuffer::from_words(0, &[i]))?;
//!         }
//!         Ok(())
//!     }
//! }
//!
//! struct Summer(u64);
//! impl Filter for Summer {
//!     fn process(&mut self, ctx: &mut FilterContext) -> Result<()> {
//!         while let Some(buf) = ctx.input("in")?.recv() {
//!             self.0 += buf.words()[0];
//!         }
//!         Ok(())
//!     }
//! }
//!
//! let mut g = GraphBuilder::new();
//! let p = g.add_filter("producer", vec![0], |_| Box::new(Producer));
//! let s = g.add_filter("summer", vec![1, 2], |_| Box::new(Summer(0)));
//! g.connect(p, "out", s, "in");
//! let report = g.run().unwrap();
//! assert_eq!(report.net.remote_msgs + report.net.local_msgs, 10);
//! ```

pub mod buffer;
pub mod filter;
pub mod graph;
pub mod netstats;
pub mod runtime;

pub use buffer::DataBuffer;
pub use filter::{Filter, FilterContext, InPort, OutPort};
pub use graph::{FilterHandle, GraphBuilder};
pub use netstats::{NetSnapshot, NetStats, NetworkCostModel};
pub use runtime::{FilterTiming, RunReport};

/// Identifies a logical cluster node (a thread in this substrate).
pub type NodeId = usize;
