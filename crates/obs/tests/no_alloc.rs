//! A disabled tracer must be a true no-op: opening spans and attaching
//! fields allocates nothing. Verified with a counting global allocator,
//! which is why this lives in its own integration-test binary.

use mssg_obs::Tracer;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Only the thread that armed the counter is measured — the test
    /// harness's own threads allocate at unpredictable moments, and a
    /// process-global count would pick those up as spurious failures.
    /// `Cell<bool>` has no destructor, so touching it from `alloc` is
    /// safe at any point in a thread's life.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAllocator;

// SAFETY: delegates directly to the system allocator; only bookkeeping is
// added.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.with(|c| c.get()) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn disabled_tracer_does_not_allocate() {
    let tracer = Tracer::disabled();

    // Warm up thread-locals and anything lazy.
    {
        let _g = tracer.span("warmup").with("k", 0);
    }

    COUNTING.with(|c| c.set(true));
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..10_000u64 {
        let mut g = tracer
            .span("bfs.level")
            .with("level", i)
            .with("frontier", i * 2);
        g.record("visited", i);
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(false));

    assert_eq!(
        after - before,
        0,
        "disabled spans must not allocate ({} allocations in 10k spans)",
        after - before
    );
}

#[test]
fn enabled_tracer_records_here_too() {
    // Sanity check that the allocator shim doesn't break recording.
    let tracer = Tracer::enabled();
    {
        let _g = tracer.span("x");
    }
    assert_eq!(tracer.span_count(), 1);
}
