//! Spans emitted from interleaved threads must serialize to valid Chrome
//! trace-event JSON that parses back with the right structure.

use mssg_obs::{json, Tracer};

#[test]
fn nested_and_interleaved_spans_produce_valid_chrome_json() {
    let tracer = Tracer::enabled();

    // Interleave spans across four threads, each with nesting.
    let handles: Vec<_> = (0..4)
        .map(|worker| {
            let t = tracer.clone();
            std::thread::Builder::new()
                .name(format!("worker.{worker}"))
                .spawn(move || {
                    for round in 0..5u64 {
                        let _outer = t.span("round").with("worker", worker).with("round", round);
                        let _inner = t.span("work").with("items", round * 3);
                    }
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(tracer.span_count(), 4 * 5 * 2);

    let text = tracer.chrome_trace_json();
    let doc = json::parse(&text).expect("emitted trace is valid JSON");

    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("top-level traceEvents array");

    let complete: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .collect();
    assert_eq!(complete.len(), 40);

    let metadata: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .collect();
    assert_eq!(metadata.len(), 4, "one thread_name record per worker");

    // Every complete event carries name, ts, dur, tid; args hold the
    // fields we attached.
    let mut tids = std::collections::BTreeSet::new();
    for e in &complete {
        let name = e.get("name").and_then(|n| n.as_str()).expect("span name");
        assert!(name == "round" || name == "work");
        assert!(e.get("ts").and_then(|v| v.as_f64()).is_some());
        assert!(e.get("dur").and_then(|v| v.as_f64()).unwrap() >= 0.0);
        tids.insert(e.get("tid").and_then(|v| v.as_f64()).unwrap() as u64);
        if name == "round" {
            let worker = e
                .get("args")
                .and_then(|a| a.get("worker"))
                .and_then(|v| v.as_f64());
            assert!(worker.is_some(), "round spans carry the worker field");
        }
    }
    assert_eq!(tids.len(), 4, "spans landed on four distinct tids");
}

#[test]
fn folded_output_covers_all_paths() {
    let tracer = Tracer::enabled();
    {
        let _q = tracer.span("query");
        for _ in 0..3 {
            let _l = tracer.span("bfs.level");
        }
    }
    let folded = tracer.folded();
    let paths: Vec<&str> = folded
        .lines()
        .map(|l| l.rsplit_once(' ').unwrap().0)
        .collect();
    assert_eq!(paths, vec!["query", "query;bfs.level"]);
    // Every line ends in a parseable nanosecond count.
    for line in folded.lines() {
        let (_, ns) = line.rsplit_once(' ').unwrap();
        ns.parse::<u64>().unwrap();
    }
}
