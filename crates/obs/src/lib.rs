#![warn(missing_docs)]
//! `mssg-obs` — the unified telemetry layer for the MSSG pipeline.
//!
//! Two instruments, one bundle:
//!
//! - [`Tracer`] — lightweight spans (`tracer.span("bfs.level")` returns an
//!   RAII guard) exportable as Chrome trace-event JSON
//!   ([`Tracer::chrome_trace_json`], loadable in `chrome://tracing` /
//!   Perfetto) or a flamegraph-folded dump ([`Tracer::folded`]). Disabled
//!   tracers are free: no allocation, no locking.
//! - [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, and
//!   log2-bucketed [`Histogram`]s (queue depths, window latencies, chunk
//!   sizes), snapshotable ([`MetricsSnapshot`]) and mergeable across
//!   simulated cluster nodes like `simio::IoSnapshot::merged`.
//!
//! [`Telemetry`] carries both through the stack; every MSSG layer
//! (DataCutter runtime, ingestion, BFS, the cluster) accepts one and
//! stays silent unless it is enabled.
//!
//! ```
//! use mssg_obs::Telemetry;
//! let t = Telemetry::enabled();
//! {
//!     let _span = t.tracer.span("ingest.window").with("edges", 512);
//!     t.metrics.counter("ingest.windows").inc();
//!     t.metrics.histogram("ingest.window_edges").record(512);
//! }
//! let snap = t.metrics.snapshot();
//! assert_eq!(snap.counters["ingest.windows"], 1);
//! assert!(t.tracer.chrome_trace_json().contains("ingest.window"));
//! ```

pub mod cluster;
pub mod json;
pub mod metrics;
pub mod names;
pub mod span;

pub use cluster::{
    detect_stragglers, ClusterTelemetryReport, Heartbeat, NodeTelemetry, StragglerConfig,
    StragglerReport,
};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use span::{FieldValue, FlowRecord, SpanGuard, SpanRecord, Tracer};

/// The telemetry bundle handed through the pipeline: a span tracer plus a
/// metrics registry. Cloning shares both.
///
/// The default bundle has a *disabled* tracer (spans are free no-ops) and
/// a live metrics registry (atomic counters are cheap enough to always
/// keep on).
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    /// Span tracer.
    pub tracer: Tracer,
    /// Metrics registry.
    pub metrics: MetricsRegistry,
}

impl Telemetry {
    /// Disabled tracer + fresh registry (same as `Default`).
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// Recording tracer + fresh registry.
    pub fn enabled() -> Telemetry {
        Telemetry {
            tracer: Tracer::enabled(),
            metrics: MetricsRegistry::new(),
        }
    }

    /// `true` if the tracer records spans.
    pub fn is_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_shares_on_clone() {
        let t = Telemetry::enabled();
        let t2 = t.clone();
        {
            let _g = t2.tracer.span("x");
        }
        t2.metrics.counter("c").inc();
        assert_eq!(t.tracer.span_count(), 1);
        assert_eq!(t.metrics.snapshot().counters["c"], 1);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Telemetry::default().is_enabled());
    }
}
