//! Metrics: named counters, gauges, and log2-bucketed histograms, with
//! snapshotting and cross-node merging.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one per possible bit length of a `u64`
/// (0..=64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter handle. Cloning shares the counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // racecheck: metric counter — no reader orders memory on it.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // racecheck: approximate metric read.
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a settable signed value. Cloning shares the gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        // racecheck: metric gauge — no reader orders memory on it.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        // racecheck: metric gauge — no reader orders memory on it.
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // racecheck: approximate metric read.
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log2-bucketed histogram handle. Bucket `0` holds the value `0`;
/// bucket `b > 0` holds values in `[2^(b-1), 2^b)` — i.e. values of bit
/// length `b`. Cloning shares the histogram.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Index of the bucket holding `value`: its bit length.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive `(low, high)` bounds of bucket `index`. Indices past the
    /// last bucket saturate to the last bucket's bounds, so callers
    /// iterating hostile (deserialized) snapshots can never overflow the
    /// shift.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 0),
            b if b >= HISTOGRAM_BUCKETS - 1 => (1 << 63, u64::MAX),
            b => (1 << (b - 1), (1 << b) - 1),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        // racecheck: histogram cells tear across fields by design — a
        // snapshot may catch the bucket without the count; tolerated.
        self.0.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Point-in-time copy. Trailing empty buckets are trimmed so
    /// snapshots stay small to ship between nodes.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // racecheck: approximate snapshot, see record() — fields may tear.
        let mut buckets: Vec<u64> = (0..HISTOGRAM_BUCKETS)
            .map(|i| self.0.buckets[i].load(Ordering::Relaxed))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            buckets,
            // racecheck: approximate, may tear against the buckets above.
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
///
/// `buckets` holds the occupied log2-bucket prefix: trailing empty
/// buckets are trimmed, so two snapshots of different lengths are still
/// mergeable (missing buckets count as zero).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count per log2 bucket (possibly shorter than
    /// [`HISTOGRAM_BUCKETS`]; absent trailing buckets are empty).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket where the cumulative count first reaches
    /// `q` (0.0..=1.0) of all observations; 0 when empty. A coarse
    /// (power-of-two) quantile.
    ///
    /// Edge cases are pinned down: `q` is clamped to `[0, 1]` (NaN maps
    /// to 0), `q = 0` answers the first non-empty bucket, `q = 1` the
    /// last non-empty bucket, and a snapshot whose `count` exceeds the
    /// bucket sums (possible after merging hostile or torn input) still
    /// answers the last non-empty bucket instead of inventing a bucket
    /// that was never observed.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        let mut last_nonempty = None;
        for (i, n) in self.buckets.iter().enumerate() {
            if *n > 0 {
                last_nonempty = Some(i);
            }
            cum = cum.saturating_add(*n);
            if cum >= target {
                return Histogram::bucket_bounds(i).1;
            }
        }
        // count said there were more observations than the buckets hold;
        // the last occupied bucket is the best truthful answer.
        match last_nonempty {
            Some(i) => Histogram::bucket_bounds(i).1,
            None => 0,
        }
    }

    /// Bucketwise sum of two snapshots. Handles mismatched bucket
    /// lengths (shorter snapshot is zero-extended) and saturates instead
    /// of overflowing on adversarial inputs.
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let len = self.buckets.len().max(other.buckets.len());
        let at = |v: &[u64], i: usize| v.get(i).copied().unwrap_or(0);
        let mut buckets: Vec<u64> = (0..len)
            .map(|i| at(&self.buckets, i).saturating_add(at(&other.buckets, i)))
            .collect();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
        }
    }
}

impl fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.1}", self.count, self.mean())?;
        for (i, n) in self.buckets.iter().enumerate() {
            if *n > 0 {
                let (lo, hi) = Histogram::bucket_bounds(i);
                write!(f, " [{lo},{hi}]:{n}")?;
            }
        }
        Ok(())
    }
}

#[derive(Clone, Debug)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Default)]
struct RegistryInner {
    metrics: Mutex<BTreeMap<String, Handle>>,
}

/// A registry of named metrics. Cloning shares the registry; handles
/// returned by the accessors are cheap `Arc` clones, so hot paths look a
/// metric up once and keep the handle.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, registering it if absent.
    ///
    /// # Panics
    /// Panics if `name` is registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.inner.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Handle::Counter(Counter::default()))
        {
            Handle::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the gauge named `name`, registering it if absent.
    ///
    /// # Panics
    /// Panics if `name` is registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.inner.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Handle::Gauge(Gauge::default()))
        {
            Handle::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the histogram named `name`, registering it if absent.
    ///
    /// # Panics
    /// Panics if `name` is registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.inner.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Handle::Histogram(Histogram::default()))
        {
            Handle::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.inner.metrics.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, handle) in m.iter() {
            match handle {
                Handle::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Handle::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Handle::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// Point-in-time copy of a [`MetricsRegistry`], mergeable across
/// simulated cluster nodes like `IoSnapshot::merged`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Union of two snapshots: counters and gauges sum, histograms merge
    /// bucketwise.
    pub fn merged(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (name, v) in &other.counters {
            *out.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *out.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            let entry = out.histograms.entry(name.clone()).or_default();
            *entry = entry.merged(h);
        }
        out
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "counter {name} = {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "gauge {name} = {v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(f, "histogram {name}: {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for b in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(b);
            assert_eq!(Histogram::bucket_index(lo), b, "low bound of bucket {b}");
            assert_eq!(Histogram::bucket_index(hi), b, "high bound of bucket {b}");
            if b > 0 {
                assert_eq!(Histogram::bucket_bounds(b - 1).1, lo.wrapping_sub(1));
            }
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::default();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 9);
        assert_eq!(s.sum, 1050);
        assert_eq!(s.buckets[0], 1); // {0}
        assert_eq!(s.buckets[1], 2); // {1}
        assert_eq!(s.buckets[2], 2); // {2,3}
        assert_eq!(s.buckets[3], 2); // {4..7}
        assert_eq!(s.buckets[4], 1); // {8..15}
        assert_eq!(s.buckets[11], 1); // {1024..2047}
        assert!((s.mean() - 1050.0 / 9.0).abs() < 1e-9);
        assert_eq!(s.quantile_bound(0.5), 3);
        assert_eq!(s.quantile_bound(1.0), 2047);
    }

    #[test]
    fn bucket_bounds_saturates_past_last_bucket() {
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
        // Hostile indices (e.g. from a deserialized snapshot with too
        // many buckets) must not overflow the shift.
        assert_eq!(Histogram::bucket_bounds(65), (1 << 63, u64::MAX));
        assert_eq!(Histogram::bucket_bounds(usize::MAX), (1 << 63, u64::MAX));
    }

    #[test]
    fn snapshot_trims_trailing_empty_buckets() {
        let h = Histogram::default();
        h.record(5); // bucket 3
        let s = h.snapshot();
        assert_eq!(s.buckets.len(), 4);
        assert_eq!(s.buckets, vec![0, 0, 0, 1]);
        let empty = Histogram::default().snapshot();
        assert!(empty.buckets.is_empty());
        assert_eq!(empty, HistogramSnapshot::default());
    }

    #[test]
    fn merged_handles_mismatched_bucket_lengths() {
        let a = Histogram::default();
        a.record(1); // bucket 1 -> len 2
        let b = Histogram::default();
        b.record(1024); // bucket 11 -> len 12
        let m = a.snapshot().merged(&b.snapshot());
        assert_eq!(m.count, 2);
        assert_eq!(m.sum, 1025);
        assert_eq!(m.buckets.len(), 12);
        assert_eq!(m.buckets[1], 1);
        assert_eq!(m.buckets[11], 1);
        // Merge is symmetric in length handling.
        assert_eq!(m, b.snapshot().merged(&a.snapshot()));
    }

    #[test]
    fn merged_empty_vs_nonempty_is_identity() {
        let h = Histogram::default();
        for v in [0, 3, 900] {
            h.record(v);
        }
        let s = h.snapshot();
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.merged(&s), s);
        assert_eq!(s.merged(&empty), s);
        assert_eq!(empty.merged(&empty), empty);
    }

    #[test]
    fn merged_saturates_instead_of_overflowing() {
        let a = HistogramSnapshot {
            buckets: vec![u64::MAX],
            count: u64::MAX,
            sum: u64::MAX,
        };
        let m = a.merged(&a);
        assert_eq!(m.count, u64::MAX);
        assert_eq!(m.sum, u64::MAX);
        assert_eq!(m.buckets[0], u64::MAX);
    }

    #[test]
    fn quantile_bound_extremes() {
        let h = Histogram::default();
        for v in [1, 2, 2, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        // q=0 answers the first non-empty bucket, q=1 the last.
        assert_eq!(s.quantile_bound(0.0), 1);
        assert_eq!(s.quantile_bound(1.0), 2047);
        // Out-of-range and NaN inputs clamp rather than panic.
        assert_eq!(s.quantile_bound(-3.0), 1);
        assert_eq!(s.quantile_bound(7.5), 2047);
        assert_eq!(s.quantile_bound(f64::NAN), 1);
        // Empty snapshot answers 0 for every q.
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.quantile_bound(0.0), 0);
        assert_eq!(empty.quantile_bound(1.0), 0);
    }

    #[test]
    fn quantile_bound_with_inconsistent_count() {
        // A (hostile or torn) snapshot whose count exceeds the bucket
        // sums must answer from an occupied bucket, not bucket 64.
        let s = HistogramSnapshot {
            buckets: vec![0, 2, 1],
            count: 100,
            sum: 8,
        };
        assert_eq!(s.quantile_bound(1.0), 3);
        // All-empty buckets but a nonzero count: nothing observed, so 0.
        let s = HistogramSnapshot {
            buckets: Vec::new(),
            count: 5,
            sum: 0,
        };
        assert_eq!(s.quantile_bound(0.5), 0);
    }

    #[test]
    fn registry_reuses_handles() {
        let r = MetricsRegistry::new();
        r.counter("x").inc();
        r.counter("x").add(2);
        assert_eq!(r.counter("x").get(), 3);
        r.gauge("g").set(-5);
        assert_eq!(r.gauge("g").get(), -5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn merge_across_threads() {
        let r = MetricsRegistry::new();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let c = r.counter("work");
                    let h = r.histogram("sizes");
                    for j in 0..100 {
                        c.inc();
                        h.record(i * 100 + j);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.counters["work"], 400);
        assert_eq!(snap.histograms["sizes"].count, 400);

        // Merging two disjoint node snapshots behaves like one registry
        // that saw both loads.
        let r2 = MetricsRegistry::new();
        r2.counter("work").add(10);
        r2.counter("other").inc();
        r2.histogram("sizes").record(7);
        let merged = snap.merged(&r2.snapshot());
        assert_eq!(merged.counters["work"], 410);
        assert_eq!(merged.counters["other"], 1);
        assert_eq!(merged.histograms["sizes"].count, 401);
        assert_eq!(
            merged.histograms["sizes"].buckets[3],
            snap.histograms["sizes"].buckets[3] + 1
        );
    }

    #[test]
    fn display_lists_everything() {
        let r = MetricsRegistry::new();
        r.counter("c").inc();
        r.gauge("g").set(2);
        r.histogram("h").record(5);
        let text = r.snapshot().to_string();
        assert!(text.contains("counter c = 1"));
        assert!(text.contains("gauge g = 2"));
        assert!(text.contains("histogram h: n=1"));
    }
}
