//! Metrics: named counters, gauges, and log2-bucketed histograms, with
//! snapshotting and cross-node merging.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one per possible bit length of a `u64`
/// (0..=64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter handle. Cloning shares the counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a settable signed value. Cloning shares the gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta`.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log2-bucketed histogram handle. Bucket `0` holds the value `0`;
/// bucket `b > 0` holds values in `[2^(b-1), 2^b)` — i.e. values of bit
/// length `b`. Cloning shares the histogram.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistInner {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// Index of the bucket holding `value`: its bit length.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive `(low, high)` bounds of bucket `index`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        match index {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            b => (1 << (b - 1), (1 << b) - 1),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.0.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed)),
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observation count per log2 bucket.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket where the cumulative count first reaches
    /// `q` (0.0..=1.0) of all observations; 0 when empty. A coarse
    /// (power-of-two) quantile.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut cum = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target.max(1) {
                return Histogram::bucket_bounds(i).1;
            }
        }
        Histogram::bucket_bounds(HISTOGRAM_BUCKETS - 1).1
    }

    /// Bucketwise sum of two snapshots.
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
            count: self.count + other.count,
            sum: self.sum + other.sum,
        }
    }
}

impl fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n={} mean={:.1}", self.count, self.mean())?;
        for (i, n) in self.buckets.iter().enumerate() {
            if *n > 0 {
                let (lo, hi) = Histogram::bucket_bounds(i);
                write!(f, " [{lo},{hi}]:{n}")?;
            }
        }
        Ok(())
    }
}

#[derive(Clone, Debug)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Default)]
struct RegistryInner {
    metrics: Mutex<BTreeMap<String, Handle>>,
}

/// A registry of named metrics. Cloning shares the registry; handles
/// returned by the accessors are cheap `Arc` clones, so hot paths look a
/// metric up once and keep the handle.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, registering it if absent.
    ///
    /// # Panics
    /// Panics if `name` is registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.inner.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Handle::Counter(Counter::default()))
        {
            Handle::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the gauge named `name`, registering it if absent.
    ///
    /// # Panics
    /// Panics if `name` is registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.inner.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Handle::Gauge(Gauge::default()))
        {
            Handle::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the histogram named `name`, registering it if absent.
    ///
    /// # Panics
    /// Panics if `name` is registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.inner.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Handle::Histogram(Histogram::default()))
        {
            Handle::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.inner.metrics.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, handle) in m.iter() {
            match handle {
                Handle::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Handle::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Handle::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// Point-in-time copy of a [`MetricsRegistry`], mergeable across
/// simulated cluster nodes like `IoSnapshot::merged`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Union of two snapshots: counters and gauges sum, histograms merge
    /// bucketwise.
    pub fn merged(&self, other: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (name, v) in &other.counters {
            *out.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            *out.gauges.entry(name.clone()).or_insert(0) += v;
        }
        for (name, h) in &other.histograms {
            let entry = out.histograms.entry(name.clone()).or_default();
            *entry = entry.merged(h);
        }
        out
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, v) in &self.counters {
            writeln!(f, "counter {name} = {v}")?;
        }
        for (name, v) in &self.gauges {
            writeln!(f, "gauge {name} = {v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(f, "histogram {name}: {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        for b in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(b);
            assert_eq!(Histogram::bucket_index(lo), b, "low bound of bucket {b}");
            assert_eq!(Histogram::bucket_index(hi), b, "high bound of bucket {b}");
            if b > 0 {
                assert_eq!(Histogram::bucket_bounds(b - 1).1, lo.wrapping_sub(1));
            }
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::default();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 9);
        assert_eq!(s.sum, 1050);
        assert_eq!(s.buckets[0], 1); // {0}
        assert_eq!(s.buckets[1], 2); // {1}
        assert_eq!(s.buckets[2], 2); // {2,3}
        assert_eq!(s.buckets[3], 2); // {4..7}
        assert_eq!(s.buckets[4], 1); // {8..15}
        assert_eq!(s.buckets[11], 1); // {1024..2047}
        assert!((s.mean() - 1050.0 / 9.0).abs() < 1e-9);
        assert_eq!(s.quantile_bound(0.5), 3);
        assert_eq!(s.quantile_bound(1.0), 2047);
    }

    #[test]
    fn registry_reuses_handles() {
        let r = MetricsRegistry::new();
        r.counter("x").inc();
        r.counter("x").add(2);
        assert_eq!(r.counter("x").get(), 3);
        r.gauge("g").set(-5);
        assert_eq!(r.gauge("g").get(), -5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        r.gauge("x");
    }

    #[test]
    fn merge_across_threads() {
        let r = MetricsRegistry::new();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let r = r.clone();
                std::thread::spawn(move || {
                    let c = r.counter("work");
                    let h = r.histogram("sizes");
                    for j in 0..100 {
                        c.inc();
                        h.record(i * 100 + j);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.counters["work"], 400);
        assert_eq!(snap.histograms["sizes"].count, 400);

        // Merging two disjoint node snapshots behaves like one registry
        // that saw both loads.
        let r2 = MetricsRegistry::new();
        r2.counter("work").add(10);
        r2.counter("other").inc();
        r2.histogram("sizes").record(7);
        let merged = snap.merged(&r2.snapshot());
        assert_eq!(merged.counters["work"], 410);
        assert_eq!(merged.counters["other"], 1);
        assert_eq!(merged.histograms["sizes"].count, 401);
        assert_eq!(
            merged.histograms["sizes"].buckets[3],
            snap.histograms["sizes"].buckets[3] + 1
        );
    }

    #[test]
    fn display_lists_everything() {
        let r = MetricsRegistry::new();
        r.counter("c").inc();
        r.gauge("g").set(2);
        r.histogram("h").record(5);
        let text = r.snapshot().to_string();
        assert!(text.contains("counter c = 1"));
        assert!(text.contains("gauge g = 2"));
        assert!(text.contains("histogram h: n=1"));
    }
}
