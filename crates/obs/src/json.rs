//! Minimal JSON support: string escaping for the trace writer, and a
//! small recursive-descent parser used to validate emitted traces
//! (round-trip tests, tooling) without external dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// Escapes `s` as a JSON string literal, including the quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (keys ordered).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The text if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A JSON parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text}")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for the
                            // traces we emit; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| ParseError {
                message: format!("bad number {text:?}"),
                offset: start,
            })
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_special_chars() {
        assert_eq!(escape("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_escapes() {
        let original = "quote\" slash\\ newline\n tab\t";
        let parsed = parse(&escape(original)).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn parse_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":null,"d":true},"e":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
