//! Central registry of metric and span names used across MSSG crates.
//!
//! The `metric-names` xtask lint checks every literal `counter("…")` /
//! `gauge("…")` / `histogram("…")` / `span("…")` call in non-test code
//! against this file, so a typo in a metric name fails the build instead
//! of silently forking a time series. Names built dynamically (with
//! `format!`) cannot be checked literally; their prefixes are listed in
//! [`DYNAMIC_PREFIXES`] for documentation.

/// Counter names.
pub const COUNTERS: &[&str] = &[
    "dc.faults_injected",
    "dc.pool.dropped",
    "dc.pool.hits",
    "dc.pool.misses",
    "dc.pool.recycled",
    "dc.restarts",
    "ingest.windows",
    "ingest.windows_skipped",
    "net.bytes",
    "net.credit_stalls",
    "net.frames",
    "net.heartbeats",
    "net.telemetry_reports",
    "serve.cache.hits",
    "serve.cache.misses",
    "serve.overloaded",
    "serve.requests",
    "sim.bytes",
    "sim.faults",
    "sim.frames",
];

/// Gauge names.
pub const GAUGES: &[&str] = &[
    "grdb.cache.evictions",
    "grdb.cache.hits",
    "grdb.cache.misses",
    "serve.clients",
    "serve.inflight",
];

/// Histogram names.
pub const HISTOGRAMS: &[&str] = &["ingest.window_edges", "serve.latency_us", "serve.queue_us"];

/// Span names.
pub const SPANS: &[&str] = &[
    "bfs.level",
    "bfs.round",
    "filter.restart",
    "filter.run",
    "ingest.shard",
    "ingest.window",
    "net.connect",
    "net.handshake",
    "net.telemetry_ship",
    "serve.execute",
];

/// Prefixes of dynamically constructed names (the lint cannot check
/// these; they are documented here).
pub const DYNAMIC_PREFIXES: &[&str] = &["dc.queue_depth."];

/// `true` if `name` appears in any of the registries above.
pub fn is_registered(name: &str) -> bool {
    COUNTERS.contains(&name)
        || GAUGES.contains(&name)
        || HISTOGRAMS.contains(&name)
        || SPANS.contains(&name)
        || DYNAMIC_PREFIXES.iter().any(|p| name.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registries_are_sorted_and_unique() {
        for list in [COUNTERS, GAUGES, HISTOGRAMS, SPANS] {
            let mut sorted = list.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(list, &sorted[..], "registry lists stay sorted and unique");
        }
    }

    #[test]
    fn lookup_covers_dynamic_prefixes() {
        assert!(is_registered("net.bytes"));
        assert!(is_registered("dc.queue_depth.store.edges"));
        assert!(!is_registered("net.bytez"));
    }
}
