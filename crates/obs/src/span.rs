//! Span tracing: RAII-guarded timed regions with Chrome trace-event JSON
//! and flamegraph-folded export.

use crate::json;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A recorded field value on a span.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Numeric field (counts, sizes, levels).
    U64(u64),
    /// Text field (names, kinds).
    Str(String),
}

/// One completed span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Span name (e.g. `"bfs.level"`).
    pub name: String,
    /// Semicolon-joined ancestry ending in this span's name — the
    /// flamegraph-folded stack path.
    pub path: String,
    /// Start offset from the tracer's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Logical thread id (dense, per tracer-observing thread).
    pub tid: u64,
    /// Key/value annotations.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// The numeric field `key`, if recorded.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.fields.iter().find_map(|(k, v)| match v {
            FieldValue::U64(n) if *k == key => Some(*n),
            _ => None,
        })
    }
}

struct TracerInner {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    /// Thread names keyed by logical tid, for Chrome metadata events.
    threads: Mutex<HashMap<u64, String>>,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Dense per-thread id, assigned on first use.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Stack of active span names on this thread (for folded paths).
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// A lightweight span tracer.
///
/// Cloning shares the underlying buffer. A tracer is either *enabled*
/// (records spans) or *disabled* (every operation is a no-op that
/// allocates nothing — verified by the `no_alloc` integration test), so
/// instrumentation can stay in place permanently:
///
/// ```
/// use mssg_obs::Tracer;
/// let tracer = Tracer::enabled();
/// {
///     let _outer = tracer.span("query");
///     let _inner = tracer.span("bfs.level").with("level", 0).with("frontier", 1);
/// }
/// assert_eq!(tracer.span_count(), 2);
/// assert!(tracer.chrome_trace_json().contains("bfs.level"));
/// ```
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("spans", &self.span_count())
            .finish()
    }
}

impl Tracer {
    /// A recording tracer.
    pub fn enabled() -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
                threads: Mutex::new(HashMap::new()),
            })),
        }
    }

    /// A no-op tracer (the default).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// `true` if spans are being recorded. Callers building dynamic span
    /// names or expensive field values should gate on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; the returned guard records the span when dropped.
    /// On a disabled tracer this is a no-op and does not allocate.
    #[inline]
    pub fn span(&self, name: &str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { active: None },
            Some(inner) => {
                let tid = TID.with(|t| *t);
                // Register the OS thread's name once per logical tid.
                {
                    let mut threads = inner.threads.lock().unwrap();
                    threads.entry(tid).or_insert_with(|| {
                        std::thread::current()
                            .name()
                            .unwrap_or("unnamed")
                            .to_string()
                    });
                }
                let path = STACK.with(|s| {
                    let mut s = s.borrow_mut();
                    let path = if s.is_empty() {
                        name.to_string()
                    } else {
                        format!("{};{}", s.join(";"), name)
                    };
                    s.push(name.to_string());
                    path
                });
                SpanGuard {
                    active: Some(ActiveSpan {
                        tracer: Arc::clone(inner),
                        name: name.to_string(),
                        path,
                        start: Instant::now(),
                        tid,
                        fields: Vec::new(),
                    }),
                }
            }
        }
    }

    /// Number of completed spans so far.
    pub fn span_count(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => inner.spans.lock().unwrap().len(),
        }
    }

    /// Copies of all completed spans (test/report introspection).
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.spans.lock().unwrap().clone(),
        }
    }

    /// Serializes every completed span as Chrome trace-event JSON —
    /// loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace_json(&self) -> String {
        let (spans, threads) = match &self.inner {
            None => (Vec::new(), HashMap::new()),
            Some(inner) => (
                inner.spans.lock().unwrap().clone(),
                inner.threads.lock().unwrap().clone(),
            ),
        };
        let mut out = String::with_capacity(256 + spans.len() * 128);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut threads: Vec<(u64, String)> = threads.into_iter().collect();
        threads.sort();
        for (tid, name) in &threads {
            if !first {
                out.push(',');
            }
            first = false;
            write!(
                out,
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json::escape(name)
            )
            .unwrap();
        }
        for s in &spans {
            if !first {
                out.push(',');
            }
            first = false;
            // ts/dur are microseconds; keep nanosecond precision as
            // fractional digits.
            write!(
                out,
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":{},\
                 \"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{",
                s.tid,
                json::escape(&s.name),
                s.start_ns / 1_000,
                s.start_ns % 1_000,
                s.dur_ns / 1_000,
                s.dur_ns % 1_000,
            )
            .unwrap();
            for (i, (k, v)) in s.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match v {
                    FieldValue::U64(n) => write!(out, "{}:{n}", json::escape(k)).unwrap(),
                    FieldValue::Str(t) => {
                        write!(out, "{}:{}", json::escape(k), json::escape(t)).unwrap()
                    }
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Flamegraph-folded dump: one `path total_self_nanoseconds` line per
    /// distinct stack path, suitable for `inferno`/`flamegraph.pl`.
    pub fn folded(&self) -> String {
        let spans = self.finished_spans();
        // Total time per path, then subtract direct children to get self
        // time.
        let mut totals: std::collections::BTreeMap<String, u64> = Default::default();
        for s in &spans {
            *totals.entry(s.path.clone()).or_insert(0) += s.dur_ns;
        }
        let mut selfs = totals.clone();
        for (path, total) in &totals {
            if let Some((parent, _leaf)) = path.rsplit_once(';') {
                if let Some(p) = selfs.get_mut(parent) {
                    *p = p.saturating_sub(*total);
                }
            }
        }
        let mut out = String::new();
        for (path, self_ns) in &selfs {
            writeln!(out, "{path} {self_ns}").unwrap();
        }
        out
    }
}

struct ActiveSpan {
    tracer: Arc<TracerInner>,
    name: String,
    path: String,
    start: Instant,
    tid: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

/// RAII guard for an open span; records the span on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Attaches a numeric field (builder style).
    #[inline]
    pub fn with(mut self, key: &'static str, value: u64) -> SpanGuard {
        self.record(key, value);
        self
    }

    /// Attaches a text field (builder style).
    #[inline]
    pub fn with_str(mut self, key: &'static str, value: &str) -> SpanGuard {
        if let Some(a) = &mut self.active {
            a.fields.push((key, FieldValue::Str(value.to_string())));
        }
        self
    }

    /// Attaches a numeric field to an already-open span (for values only
    /// known while the span runs, e.g. items processed).
    #[inline]
    pub fn record(&mut self, key: &'static str, value: u64) {
        if let Some(a) = &mut self.active {
            a.fields.push((key, FieldValue::U64(value)));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur_ns = a.start.elapsed().as_nanos() as u64;
        let start_ns = a.start.duration_since(a.tracer.epoch).as_nanos() as u64;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            debug_assert_eq!(s.last(), Some(&a.name), "span guards dropped out of order");
            s.pop();
        });
        a.tracer.spans.lock().unwrap().push(SpanRecord {
            name: a.name,
            path: a.path,
            start_ns,
            dur_ns,
            tid: a.tid,
            fields: a.fields,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Tracer::disabled();
        {
            let _g = t.span("x").with("k", 1);
        }
        assert_eq!(t.span_count(), 0);
        assert!(!t.is_enabled());
        assert_eq!(t.chrome_trace_json(), "{\"traceEvents\":[]}");
        assert_eq!(t.folded(), "");
    }

    #[test]
    fn nesting_builds_paths() {
        let t = Tracer::enabled();
        {
            let _a = t.span("a");
            {
                let _b = t.span("b");
                let _c = t.span("c");
            }
            let _d = t.span("d");
        }
        let spans = t.finished_spans();
        let paths: Vec<&str> = spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["a;b;c", "a;b", "a;d", "a"]);
    }

    #[test]
    fn fields_survive_to_record() {
        let t = Tracer::enabled();
        {
            let mut g = t.span("win").with("edges", 10).with_str("kind", "pubmed");
            g.record("bytes", 160);
        }
        let s = &t.finished_spans()[0];
        assert_eq!(
            s.fields,
            vec![
                ("edges", FieldValue::U64(10)),
                ("kind", FieldValue::Str("pubmed".into())),
                ("bytes", FieldValue::U64(160)),
            ]
        );
    }

    #[test]
    fn folded_subtracts_child_self_time() {
        let t = Tracer::enabled();
        {
            let _a = t.span("a");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _b = t.span("b");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let folded = t.folded();
        let mut lines: Vec<(&str, u64)> = folded
            .lines()
            .map(|l| {
                let (p, n) = l.rsplit_once(' ').unwrap();
                (p, n.parse().unwrap())
            })
            .collect();
        lines.sort();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].0, "a");
        assert_eq!(lines[1].0, "a;b");
        let total_a: u64 = t
            .finished_spans()
            .iter()
            .find(|s| s.path == "a")
            .map(|s| s.dur_ns)
            .unwrap();
        // a's self time excludes b's time.
        assert!(lines[0].1 < total_a);
    }

    #[test]
    fn spans_across_threads_get_distinct_tids() {
        let t = Tracer::enabled();
        let t2 = t.clone();
        let h = std::thread::Builder::new()
            .name("worker".into())
            .spawn(move || {
                let _g = t2.span("remote");
            })
            .unwrap();
        {
            let _g = t.span("local");
        }
        h.join().unwrap();
        let spans = t.finished_spans();
        assert_eq!(spans.len(), 2);
        let tid_of = |n: &str| spans.iter().find(|s| s.name == n).unwrap().tid;
        assert_ne!(tid_of("remote"), tid_of("local"));
        let json = t.chrome_trace_json();
        assert!(
            json.contains("\"worker\""),
            "thread name metadata present: {json}"
        );
    }
}
