//! Span tracing: RAII-guarded timed regions with Chrome trace-event JSON
//! and flamegraph-folded export.

use crate::json;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A recorded field value on a span.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Numeric field (counts, sizes, levels).
    U64(u64),
    /// Text field (names, kinds).
    Str(String),
}

/// One completed span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Per-tracer span id (1-based, assigned at open). Carried on wire
    /// frames so remote receives can stitch back to the sending span.
    pub id: u64,
    /// Span name (e.g. `"bfs.level"`).
    pub name: String,
    /// Semicolon-joined ancestry ending in this span's name — the
    /// flamegraph-folded stack path.
    pub path: String,
    /// Start offset from the tracer's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Logical thread id (dense, per tracer-observing thread).
    pub tid: u64,
    /// Key/value annotations.
    pub fields: Vec<(String, FieldValue)>,
}

impl SpanRecord {
    /// The numeric field `key`, if recorded.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.fields.iter().find_map(|(k, v)| match v {
            FieldValue::U64(n) if k == key => Some(*n),
            _ => None,
        })
    }
}

/// A cross-node causal edge: a frame stamped with the sender's span id
/// arrived while a local span was open. Pairs of flow records become
/// Chrome flow events (`ph:"s"`/`ph:"f"`) in the merged cluster trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowRecord {
    /// Node id of the sender.
    pub from_node: u32,
    /// Span id on the sender's tracer.
    pub from_span: u64,
    /// Span id on this tracer that observed the arrival (0 = none open).
    pub to_span: u64,
    /// Arrival time, nanoseconds since this tracer's epoch.
    pub at_ns: u64,
}

struct TracerInner {
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    /// Thread names keyed by logical tid, for Chrome metadata events.
    threads: Mutex<HashMap<u64, String>>,
    /// Cross-node causal edges observed by this tracer.
    flows: Mutex<Vec<FlowRecord>>,
    /// Next span id (1-based; 0 means "no span").
    next_span: AtomicU64,
}

static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Dense per-thread id, assigned on first use.
    // racecheck: id allocation needs uniqueness (RMW atomicity), not order.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    /// Stack of active `(name, span id)` pairs on this thread (for
    /// folded paths and current-span lookup).
    static STACK: RefCell<Vec<(String, u64)>> = const { RefCell::new(Vec::new()) };
}

/// A lightweight span tracer.
///
/// Cloning shares the underlying buffer. A tracer is either *enabled*
/// (records spans) or *disabled* (every operation is a no-op that
/// allocates nothing — verified by the `no_alloc` integration test), so
/// instrumentation can stay in place permanently:
///
/// ```
/// use mssg_obs::Tracer;
/// let tracer = Tracer::enabled();
/// {
///     let _outer = tracer.span("query");
///     let _inner = tracer.span("bfs.level").with("level", 0).with("frontier", 1);
/// }
/// assert_eq!(tracer.span_count(), 2);
/// assert!(tracer.chrome_trace_json().contains("bfs.level"));
/// ```
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("spans", &self.span_count())
            .finish()
    }
}

impl Tracer {
    /// A recording tracer.
    pub fn enabled() -> Tracer {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                epoch: Instant::now(),
                spans: Mutex::new(Vec::new()),
                threads: Mutex::new(HashMap::new()),
                flows: Mutex::new(Vec::new()),
                next_span: AtomicU64::new(1),
            })),
        }
    }

    /// A no-op tracer (the default).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// `true` if spans are being recorded. Callers building dynamic span
    /// names or expensive field values should gate on this.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a span; the returned guard records the span when dropped.
    /// On a disabled tracer this is a no-op and does not allocate.
    #[inline]
    pub fn span(&self, name: &str) -> SpanGuard {
        match &self.inner {
            None => SpanGuard { active: None },
            Some(inner) => {
                let tid = TID.with(|t| *t);
                // Register the OS thread's name once per logical tid.
                {
                    let mut threads = inner.threads.lock().unwrap();
                    threads.entry(tid).or_insert_with(|| {
                        std::thread::current()
                            .name()
                            .unwrap_or("unnamed")
                            .to_string()
                    });
                }
                // racecheck: span-id allocation — uniqueness, not ordering.
                let id = inner.next_span.fetch_add(1, Ordering::Relaxed);
                let path = STACK.with(|s| {
                    let mut s = s.borrow_mut();
                    let path = if s.is_empty() {
                        name.to_string()
                    } else {
                        let mut p = String::with_capacity(s.len() * 8 + name.len());
                        for (n, _) in s.iter() {
                            p.push_str(n);
                            p.push(';');
                        }
                        p.push_str(name);
                        p
                    };
                    s.push((name.to_string(), id));
                    path
                });
                SpanGuard {
                    active: Some(ActiveSpan {
                        tracer: Arc::clone(inner),
                        id,
                        name: name.to_string(),
                        path,
                        start: Instant::now(),
                        tid,
                        fields: Vec::new(),
                    }),
                }
            }
        }
    }

    /// Number of completed spans so far.
    pub fn span_count(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => inner.spans.lock().unwrap().len(),
        }
    }

    /// Copies of all completed spans (test/report introspection).
    pub fn finished_spans(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.spans.lock().unwrap().clone(),
        }
    }

    /// Id of the innermost span currently open on *this thread*, or 0 if
    /// none (or the tracer is disabled). This is what senders stamp on
    /// outgoing wire frames. Does not allocate.
    #[inline]
    pub fn current_span_id(&self) -> u64 {
        if self.inner.is_none() {
            return 0;
        }
        STACK.with(|s| s.borrow().last().map(|(_, id)| *id).unwrap_or(0))
    }

    /// Nanoseconds elapsed since this tracer's epoch (0 when disabled).
    /// Exchanged in handshakes to estimate per-peer clock offsets.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => inner.epoch.elapsed().as_nanos() as u64,
        }
    }

    /// Records a cross-node causal edge: a frame from `from_node`,
    /// stamped with the sender's span id `from_span`, was consumed on
    /// this thread now. No-op on a disabled tracer or when `from_span`
    /// is 0 (sender had no span open).
    pub fn flow_in(&self, from_node: u32, from_span: u64) {
        let Some(inner) = &self.inner else { return };
        if from_span == 0 {
            return;
        }
        let to_span = STACK.with(|s| s.borrow().last().map(|(_, id)| *id).unwrap_or(0));
        let at_ns = inner.epoch.elapsed().as_nanos() as u64;
        inner.flows.lock().unwrap().push(FlowRecord {
            from_node,
            from_span,
            to_span,
            at_ns,
        });
    }

    /// Copies of all recorded cross-node flow edges.
    pub fn flows(&self) -> Vec<FlowRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.flows.lock().unwrap().clone(),
        }
    }

    /// Thread names observed so far, as sorted `(tid, name)` pairs —
    /// shipped alongside spans so merged traces keep lane labels.
    pub fn thread_names(&self) -> Vec<(u64, String)> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => {
                let mut v: Vec<(u64, String)> = inner
                    .threads
                    .lock()
                    .unwrap()
                    .iter()
                    .map(|(k, v)| (*k, v.clone()))
                    .collect();
                v.sort();
                v
            }
        }
    }

    /// Serializes every completed span as Chrome trace-event JSON —
    /// loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace_json(&self) -> String {
        let (spans, threads) = match &self.inner {
            None => (Vec::new(), HashMap::new()),
            Some(inner) => (
                inner.spans.lock().unwrap().clone(),
                inner.threads.lock().unwrap().clone(),
            ),
        };
        let mut out = String::with_capacity(256 + spans.len() * 128);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut threads: Vec<(u64, String)> = threads.into_iter().collect();
        threads.sort();
        for (tid, name) in &threads {
            if !first {
                out.push(',');
            }
            first = false;
            write!(
                out,
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                json::escape(name)
            )
            .unwrap();
        }
        for s in &spans {
            if !first {
                out.push(',');
            }
            first = false;
            // ts/dur are microseconds; keep nanosecond precision as
            // fractional digits.
            write!(
                out,
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"name\":{},\
                 \"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{",
                s.tid,
                json::escape(&s.name),
                s.start_ns / 1_000,
                s.start_ns % 1_000,
                s.dur_ns / 1_000,
                s.dur_ns % 1_000,
            )
            .unwrap();
            for (i, (k, v)) in s.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match v {
                    FieldValue::U64(n) => write!(out, "{}:{n}", json::escape(k)).unwrap(),
                    FieldValue::Str(t) => {
                        write!(out, "{}:{}", json::escape(k), json::escape(t)).unwrap()
                    }
                }
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// Flamegraph-folded dump: one `path total_self_nanoseconds` line per
    /// distinct stack path, suitable for `inferno`/`flamegraph.pl`.
    pub fn folded(&self) -> String {
        let spans = self.finished_spans();
        // Total time per path, then subtract direct children to get self
        // time.
        let mut totals: std::collections::BTreeMap<String, u64> = Default::default();
        for s in &spans {
            *totals.entry(s.path.clone()).or_insert(0) += s.dur_ns;
        }
        let mut selfs = totals.clone();
        for (path, total) in &totals {
            if let Some((parent, _leaf)) = path.rsplit_once(';') {
                if let Some(p) = selfs.get_mut(parent) {
                    *p = p.saturating_sub(*total);
                }
            }
        }
        let mut out = String::new();
        for (path, self_ns) in &selfs {
            writeln!(out, "{path} {self_ns}").unwrap();
        }
        out
    }
}

struct ActiveSpan {
    tracer: Arc<TracerInner>,
    id: u64,
    name: String,
    path: String,
    start: Instant,
    tid: u64,
    fields: Vec<(String, FieldValue)>,
}

/// RAII guard for an open span; records the span on drop.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Attaches a numeric field (builder style).
    #[inline]
    pub fn with(mut self, key: &'static str, value: u64) -> SpanGuard {
        self.record(key, value);
        self
    }

    /// Attaches a text field (builder style).
    #[inline]
    pub fn with_str(mut self, key: &'static str, value: &str) -> SpanGuard {
        if let Some(a) = &mut self.active {
            a.fields
                .push((key.to_string(), FieldValue::Str(value.to_string())));
        }
        self
    }

    /// Attaches a numeric field to an already-open span (for values only
    /// known while the span runs, e.g. items processed).
    #[inline]
    pub fn record(&mut self, key: &'static str, value: u64) {
        if let Some(a) = &mut self.active {
            a.fields.push((key.to_string(), FieldValue::U64(value)));
        }
    }

    /// Id of this span on its tracer (0 for a disabled tracer's no-op
    /// guard).
    #[inline]
    pub fn id(&self) -> u64 {
        self.active.as_ref().map(|a| a.id).unwrap_or(0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(a) = self.active.take() else { return };
        let dur_ns = a.start.elapsed().as_nanos() as u64;
        let start_ns = a.start.duration_since(a.tracer.epoch).as_nanos() as u64;
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            debug_assert_eq!(
                s.last().map(|(n, _)| n),
                Some(&a.name),
                "span guards dropped out of order"
            );
            s.pop();
        });
        a.tracer.spans.lock().unwrap().push(SpanRecord {
            id: a.id,
            name: a.name,
            path: a.path,
            start_ns,
            dur_ns,
            tid: a.tid,
            fields: a.fields,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let t = Tracer::disabled();
        {
            let _g = t.span("x").with("k", 1);
        }
        assert_eq!(t.span_count(), 0);
        assert!(!t.is_enabled());
        assert_eq!(t.chrome_trace_json(), "{\"traceEvents\":[]}");
        assert_eq!(t.folded(), "");
    }

    #[test]
    fn nesting_builds_paths() {
        let t = Tracer::enabled();
        {
            let _a = t.span("a");
            {
                let _b = t.span("b");
                let _c = t.span("c");
            }
            let _d = t.span("d");
        }
        let spans = t.finished_spans();
        let paths: Vec<&str> = spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["a;b;c", "a;b", "a;d", "a"]);
    }

    #[test]
    fn fields_survive_to_record() {
        let t = Tracer::enabled();
        {
            let mut g = t.span("win").with("edges", 10).with_str("kind", "pubmed");
            g.record("bytes", 160);
        }
        let s = &t.finished_spans()[0];
        assert_eq!(
            s.fields,
            vec![
                ("edges".to_string(), FieldValue::U64(10)),
                ("kind".to_string(), FieldValue::Str("pubmed".into())),
                ("bytes".to_string(), FieldValue::U64(160)),
            ]
        );
    }

    #[test]
    fn span_ids_are_unique_and_current_tracks_nesting() {
        let t = Tracer::enabled();
        assert_eq!(t.current_span_id(), 0);
        {
            let a = t.span("a");
            assert_eq!(t.current_span_id(), a.id());
            {
                let b = t.span("b");
                assert_ne!(a.id(), b.id());
                assert_eq!(t.current_span_id(), b.id());
            }
            assert_eq!(t.current_span_id(), a.id());
        }
        assert_eq!(t.current_span_id(), 0);
        let ids: std::collections::BTreeSet<u64> =
            t.finished_spans().iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), 2);
        assert!(!ids.contains(&0), "0 is reserved for 'no span'");

        let disabled = Tracer::disabled();
        assert_eq!(disabled.current_span_id(), 0);
        assert_eq!(disabled.span("x").id(), 0);
        assert_eq!(disabled.now_ns(), 0);
    }

    #[test]
    fn flow_in_records_causal_edges() {
        let t = Tracer::enabled();
        let to;
        {
            let g = t.span("consume");
            to = g.id();
            t.flow_in(2, 7);
            t.flow_in(2, 0); // sender had no span: dropped
        }
        t.flow_in(1, 9); // no local span open: recorded with to_span 0
        let flows = t.flows();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].from_node, 2);
        assert_eq!(flows[0].from_span, 7);
        assert_eq!(flows[0].to_span, to);
        assert_eq!(flows[1].to_span, 0);

        let disabled = Tracer::disabled();
        disabled.flow_in(1, 1);
        assert!(disabled.flows().is_empty());
    }

    #[test]
    fn thread_names_are_exposed() {
        let t = Tracer::enabled();
        {
            let _g = t.span("x");
        }
        let names = t.thread_names();
        assert_eq!(names.len(), 1);
    }

    #[test]
    fn folded_subtracts_child_self_time() {
        let t = Tracer::enabled();
        {
            let _a = t.span("a");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _b = t.span("b");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let folded = t.folded();
        let mut lines: Vec<(&str, u64)> = folded
            .lines()
            .map(|l| {
                let (p, n) = l.rsplit_once(' ').unwrap();
                (p, n.parse().unwrap())
            })
            .collect();
        lines.sort();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].0, "a");
        assert_eq!(lines[1].0, "a;b");
        let total_a: u64 = t
            .finished_spans()
            .iter()
            .find(|s| s.path == "a")
            .map(|s| s.dur_ns)
            .unwrap();
        // a's self time excludes b's time.
        assert!(lines[0].1 < total_a);
    }

    #[test]
    fn spans_across_threads_get_distinct_tids() {
        let t = Tracer::enabled();
        let t2 = t.clone();
        let h = std::thread::Builder::new()
            .name("worker".into())
            .spawn(move || {
                let _g = t2.span("remote");
            })
            .unwrap();
        {
            let _g = t.span("local");
        }
        h.join().unwrap();
        let spans = t.finished_spans();
        assert_eq!(spans.len(), 2);
        let tid_of = |n: &str| spans.iter().find(|s| s.name == n).unwrap().tid;
        assert_ne!(tid_of("remote"), tid_of("local"));
        let json = t.chrome_trace_json();
        assert!(
            json.contains("\"worker\""),
            "thread name metadata present: {json}"
        );
    }
}
