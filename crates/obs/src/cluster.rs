//! Cluster-wide telemetry: per-node report serialization, clock-offset
//! rebasing, merged Chrome traces with one process lane per node, and
//! heartbeat-based straggler detection.
//!
//! A distributed run produces one [`NodeTelemetry`] per process (spans,
//! cross-node flow edges, thread names, metrics). Non-root nodes
//! serialize theirs with [`NodeTelemetry::to_json`] and ship it over the
//! wire at shutdown; the root parses them back
//! ([`NodeTelemetry::from_json`]) and folds everything into a
//! [`ClusterTelemetryReport`], which merges metrics via
//! [`MetricsSnapshot::merged`] and emits a single Chrome trace where
//! each node is a process lane and remote timestamps are rebased by the
//! handshake-estimated clock offset.
//!
//! Serialized values ride through an `f64`-backed JSON parser, so exact
//! round-tripping holds for integers up to 2^53 — comfortably above any
//! nanosecond timestamp or counter a run produces.

use crate::json::{self, Value};
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::span::{FieldValue, FlowRecord, SpanRecord};
use crate::Telemetry;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Everything one node observed during a run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeTelemetry {
    /// The node's id in the cluster.
    pub node: u32,
    /// Completed spans, timestamps relative to the node's tracer epoch.
    pub spans: Vec<SpanRecord>,
    /// Cross-node causal edges observed by this node.
    pub flows: Vec<FlowRecord>,
    /// Thread names by logical tid, for lane labels.
    pub threads: Vec<(u64, String)>,
    /// Metrics snapshot at capture time.
    pub metrics: MetricsSnapshot,
}

impl NodeTelemetry {
    /// Captures the current state of `telemetry` for `node`.
    pub fn capture(node: u32, telemetry: &Telemetry) -> NodeTelemetry {
        NodeTelemetry {
            node,
            spans: telemetry.tracer.finished_spans(),
            flows: telemetry.tracer.flows(),
            threads: telemetry.tracer.thread_names(),
            metrics: telemetry.metrics.snapshot(),
        }
    }

    /// Serializes the report as a compact JSON document. Span fields are
    /// written as `[key, value]` pairs so order and duplicate keys
    /// survive the round trip.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.spans.len() * 128);
        write!(out, "{{\"node\":{},\"spans\":[", self.node).unwrap();
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"id\":{},\"name\":{},\"path\":{},\"start_ns\":{},\
                 \"dur_ns\":{},\"tid\":{},\"fields\":[",
                s.id,
                json::escape(&s.name),
                json::escape(&s.path),
                s.start_ns,
                s.dur_ns,
                s.tid,
            )
            .unwrap();
            for (j, (k, v)) in s.fields.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match v {
                    FieldValue::U64(n) => write!(out, "[{},{n}]", json::escape(k)).unwrap(),
                    FieldValue::Str(t) => {
                        write!(out, "[{},{}]", json::escape(k), json::escape(t)).unwrap()
                    }
                }
            }
            out.push_str("]}");
        }
        out.push_str("],\"flows\":[");
        for (i, f) in self.flows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{{\"from_node\":{},\"from_span\":{},\"to_span\":{},\"at_ns\":{}}}",
                f.from_node, f.from_span, f.to_span, f.at_ns
            )
            .unwrap();
        }
        out.push_str("],\"threads\":[");
        for (i, (tid, name)) in self.threads.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "[{tid},{}]", json::escape(name)).unwrap();
        }
        out.push_str("],\"metrics\":{\"counters\":{");
        for (i, (name, v)) in self.metrics.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{}:{v}", json::escape(name)).unwrap();
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.metrics.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{}:{v}", json::escape(name)).unwrap();
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.metrics.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"buckets\":[",
                json::escape(name),
                h.count,
                h.sum
            )
            .unwrap();
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write!(out, "{b}").unwrap();
            }
            out.push_str("]}");
        }
        out.push_str("}}}");
        out
    }

    /// Parses a document produced by [`NodeTelemetry::to_json`].
    pub fn from_json(text: &str) -> Result<NodeTelemetry, String> {
        let doc = json::parse(text).map_err(|e| format!("telemetry report: {e}"))?;
        let node = req_u64(&doc, "node")? as u32;
        let mut spans = Vec::new();
        for s in req_array(&doc, "spans")? {
            let mut fields = Vec::new();
            for pair in req_array(s, "fields")? {
                let pair = pair.as_array().ok_or("span field is not a pair")?;
                let [k, v] = pair else {
                    return Err("span field is not a [key, value] pair".into());
                };
                let k = k.as_str().ok_or("span field key is not a string")?;
                let v = match v {
                    Value::String(t) => FieldValue::Str(t.clone()),
                    Value::Number(n) => FieldValue::U64(*n as u64),
                    _ => return Err("span field value is not a string or number".into()),
                };
                fields.push((k.to_string(), v));
            }
            spans.push(SpanRecord {
                id: req_u64(s, "id")?,
                name: req_str(s, "name")?,
                path: req_str(s, "path")?,
                start_ns: req_u64(s, "start_ns")?,
                dur_ns: req_u64(s, "dur_ns")?,
                tid: req_u64(s, "tid")?,
                fields,
            });
        }
        let mut flows = Vec::new();
        for f in req_array(&doc, "flows")? {
            flows.push(FlowRecord {
                from_node: req_u64(f, "from_node")? as u32,
                from_span: req_u64(f, "from_span")?,
                to_span: req_u64(f, "to_span")?,
                at_ns: req_u64(f, "at_ns")?,
            });
        }
        let mut threads = Vec::new();
        for t in req_array(&doc, "threads")? {
            let pair = t.as_array().ok_or("thread entry is not a pair")?;
            let [tid, name] = pair else {
                return Err("thread entry is not a [tid, name] pair".into());
            };
            let tid = tid.as_f64().ok_or("thread tid is not a number")? as u64;
            let name = name.as_str().ok_or("thread name is not a string")?;
            threads.push((tid, name.to_string()));
        }
        let m = doc.get("metrics").ok_or("missing metrics")?;
        let mut metrics = MetricsSnapshot::default();
        for (name, v) in req_object(m, "counters")? {
            let v = v.as_f64().ok_or("counter value is not a number")?;
            metrics.counters.insert(name.clone(), v as u64);
        }
        for (name, v) in req_object(m, "gauges")? {
            let v = v.as_f64().ok_or("gauge value is not a number")?;
            metrics.gauges.insert(name.clone(), v as i64);
        }
        for (name, h) in req_object(m, "histograms")? {
            let mut buckets = Vec::new();
            for b in req_array(h, "buckets")? {
                buckets.push(b.as_f64().ok_or("histogram bucket is not a number")? as u64);
            }
            metrics.histograms.insert(
                name.clone(),
                HistogramSnapshot {
                    buckets,
                    count: req_u64(h, "count")?,
                    sum: req_u64(h, "sum")?,
                },
            );
        }
        Ok(NodeTelemetry {
            node,
            spans,
            flows,
            threads,
            metrics,
        })
    }
}

fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .map(|n| n as u64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn req_array<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    v.get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("missing array field {key:?}"))
}

fn req_object<'a>(
    v: &'a Value,
    key: &str,
) -> Result<&'a std::collections::BTreeMap<String, Value>, String> {
    match v.get(key) {
        Some(Value::Object(m)) => Ok(m),
        _ => Err(format!("missing object field {key:?}")),
    }
}

struct NodeEntry {
    telemetry: NodeTelemetry,
    /// Estimated `remote_clock - root_clock` in nanoseconds; subtracted
    /// from the node's timestamps to land them on the root's timeline.
    offset_ns: i64,
}

/// Telemetry from every node of a run, merged on the root.
#[derive(Default)]
pub struct ClusterTelemetryReport {
    nodes: Vec<NodeEntry>,
}

impl ClusterTelemetryReport {
    /// An empty report.
    pub fn new() -> ClusterTelemetryReport {
        ClusterTelemetryReport::default()
    }

    /// Adds one node's telemetry. `clock_offset_ns` is the estimated
    /// `node_clock - root_clock` (0 for the root itself); the node's
    /// timestamps are rebased by it when the merged trace is emitted.
    pub fn add_node(&mut self, telemetry: NodeTelemetry, clock_offset_ns: i64) {
        self.nodes.push(NodeEntry {
            telemetry,
            offset_ns: clock_offset_ns,
        });
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total spans across all nodes.
    pub fn span_count(&self) -> usize {
        self.nodes.iter().map(|n| n.telemetry.spans.len()).sum()
    }

    /// Per-node `(node id, metrics)` pairs, in insertion order.
    pub fn node_metrics(&self) -> Vec<(u32, &MetricsSnapshot)> {
        self.nodes
            .iter()
            .map(|n| (n.telemetry.node, &n.telemetry.metrics))
            .collect()
    }

    /// Cluster-wide metrics: every node's snapshot folded together with
    /// [`MetricsSnapshot::merged`] (counters and gauges sum, histograms
    /// merge bucketwise).
    pub fn merged_metrics(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for n in &self.nodes {
            out = out.merged(&n.telemetry.metrics);
        }
        out
    }

    /// One Chrome trace for the whole cluster: each node becomes a
    /// process lane (`pid` = node id), remote timestamps are rebased by
    /// the per-node clock offset, and cross-node flow edges are emitted
    /// as Chrome flow events (`ph:"s"`/`ph:"f"`) so stream activity is
    /// visually stitched across lanes.
    pub fn chrome_trace_json(&self) -> String {
        // Rebase everything onto the root's timeline, then shift so the
        // earliest event lands at t=0 (Chrome dislikes negative ts).
        let mut min_ts = i64::MAX;
        for n in &self.nodes {
            for s in &n.telemetry.spans {
                min_ts = min_ts.min(s.start_ns as i64 - n.offset_ns);
            }
            for f in &n.telemetry.flows {
                min_ts = min_ts.min(f.at_ns as i64 - n.offset_ns);
            }
        }
        let shift = if min_ts == i64::MAX {
            0
        } else {
            -min_ts.min(0)
        };
        let rebase = |ns: u64, offset: i64| (ns as i64 - offset + shift).max(0) as u64;

        // Index spans by (node, span id) for flow endpoint lookup.
        let mut by_id: HashMap<(u32, u64), &SpanRecord> = HashMap::new();
        for n in &self.nodes {
            for s in &n.telemetry.spans {
                by_id.insert((n.telemetry.node, s.id), s);
            }
        }
        let offset_of: HashMap<u32, i64> = self
            .nodes
            .iter()
            .map(|n| (n.telemetry.node, n.offset_ns))
            .collect();

        let mut out = String::with_capacity(4096 + self.span_count() * 160);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let push_event = |out: &mut String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
        };

        for n in &self.nodes {
            let pid = n.telemetry.node;
            push_event(&mut out, &mut first);
            write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"node {pid}\"}}}}"
            )
            .unwrap();
            for (tid, name) in &n.telemetry.threads {
                push_event(&mut out, &mut first);
                write!(
                    out,
                    "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":{}}}}}",
                    json::escape(name)
                )
                .unwrap();
            }
            for s in &n.telemetry.spans {
                let ts = rebase(s.start_ns, n.offset_ns);
                push_event(&mut out, &mut first);
                write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"name\":{},\
                     \"ts\":{}.{:03},\"dur\":{}.{:03},\"args\":{{\"span_id\":{}",
                    s.tid,
                    json::escape(&s.name),
                    ts / 1_000,
                    ts % 1_000,
                    s.dur_ns / 1_000,
                    s.dur_ns % 1_000,
                    s.id,
                )
                .unwrap();
                for (k, v) in &s.fields {
                    out.push(',');
                    match v {
                        FieldValue::U64(x) => write!(out, "{}:{x}", json::escape(k)).unwrap(),
                        FieldValue::Str(t) => {
                            write!(out, "{}:{}", json::escape(k), json::escape(t)).unwrap()
                        }
                    }
                }
                out.push_str("}}");
            }
        }

        // Flow events: one s/f pair per observed cross-node edge whose
        // endpoints both resolved to recorded spans.
        let mut flow_id = 0u64;
        for n in &self.nodes {
            let to_node = n.telemetry.node;
            for f in &n.telemetry.flows {
                if f.to_span == 0 {
                    continue;
                }
                let (Some(src), Some(dst)) = (
                    by_id.get(&(f.from_node, f.from_span)),
                    by_id.get(&(to_node, f.to_span)),
                ) else {
                    continue;
                };
                let Some(src_offset) = offset_of.get(&f.from_node) else {
                    continue;
                };
                flow_id += 1;
                // Start the flow where the sending span ends, finish it
                // at the observed arrival inside the receiving span.
                let src_ts = rebase(src.start_ns.saturating_add(src.dur_ns), *src_offset);
                let dst_ts = rebase(f.at_ns, n.offset_ns);
                push_event(&mut out, &mut first);
                write!(
                    out,
                    "{{\"ph\":\"s\",\"pid\":{},\"tid\":{},\"name\":\"net.flow\",\
                     \"cat\":\"net\",\"id\":{flow_id},\"ts\":{}.{:03}}}",
                    f.from_node,
                    src.tid,
                    src_ts / 1_000,
                    src_ts % 1_000,
                )
                .unwrap();
                push_event(&mut out, &mut first);
                write!(
                    out,
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":{to_node},\"tid\":{},\
                     \"name\":\"net.flow\",\"cat\":\"net\",\"id\":{flow_id},\
                     \"ts\":{}.{:03}}}",
                    dst.tid,
                    dst_ts / 1_000,
                    dst_ts % 1_000,
                )
                .unwrap();
            }
        }
        out.push_str("]}");
        out
    }
}

/// One heartbeat sample, pushed periodically by every node while a run
/// is in flight.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Heartbeat {
    /// Sending node.
    pub node: u32,
    /// Cumulative windows ingested (the `ingest.windows` counter).
    pub windows: u64,
    /// Cumulative wire bytes moved (the `net.bytes` counter).
    pub bytes: u64,
    /// Cumulative credit stalls (the `net.credit_stalls` counter).
    pub credit_stalls: u64,
    /// Median queue depth across the node's port queues at sample time.
    pub queue_depth: u64,
    /// Sample time, nanoseconds since the sending node's tracer epoch.
    pub at_ns: u64,
}

/// Tuning for [`detect_stragglers`].
#[derive(Clone, Copy, Debug)]
pub struct StragglerConfig {
    /// A node is flagged when its window rate falls below this fraction
    /// of the cluster median rate.
    pub min_fraction: f64,
}

impl Default for StragglerConfig {
    fn default() -> Self {
        StragglerConfig { min_fraction: 0.5 }
    }
}

/// Per-node ingest progress derived from heartbeats.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeProgress {
    /// Node id.
    pub node: u32,
    /// Total windows the node reported ingesting.
    pub windows: u64,
    /// Windows per second, measured to the first heartbeat at which the
    /// node's window count stopped growing.
    pub rate_per_sec: f64,
    /// `true` if the node's rate fell below the configured fraction of
    /// the cluster median.
    pub straggler: bool,
}

/// Result of [`detect_stragglers`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StragglerReport {
    /// Median window rate across nodes that reported heartbeats.
    pub median_rate: f64,
    /// Per-node progress, sorted by node id.
    pub nodes: Vec<NodeProgress>,
}

impl StragglerReport {
    /// Nodes flagged as stragglers.
    pub fn stragglers(&self) -> Vec<u32> {
        self.nodes
            .iter()
            .filter(|n| n.straggler)
            .map(|n| n.node)
            .collect()
    }
}

/// Flags nodes whose ingest window rate fell below
/// `cfg.min_fraction × median` of the cluster.
///
/// A node's rate is `max windows ÷ time at which that maximum was first
/// observed` — cumulative rather than differential, so a node that
/// finished ingesting before its first heartbeat still gets credit for
/// its full throughput instead of a misleading zero delta.
pub fn detect_stragglers(heartbeats: &[Heartbeat], cfg: &StragglerConfig) -> StragglerReport {
    // Earliest heartbeat per node at which its max window count appears.
    let mut per_node: HashMap<u32, (u64, u64)> = HashMap::new(); // node -> (windows, at_ns)
    for hb in heartbeats {
        let entry = per_node.entry(hb.node).or_insert((hb.windows, hb.at_ns));
        if hb.windows > entry.0 {
            *entry = (hb.windows, hb.at_ns);
        } else if hb.windows == entry.0 {
            entry.1 = entry.1.min(hb.at_ns);
        }
    }
    let mut nodes: Vec<NodeProgress> = per_node
        .into_iter()
        .map(|(node, (windows, at_ns))| {
            let rate = if at_ns == 0 {
                0.0
            } else {
                windows as f64 / (at_ns as f64 / 1e9)
            };
            NodeProgress {
                node,
                windows,
                rate_per_sec: rate,
                straggler: false,
            }
        })
        .collect();
    nodes.sort_by_key(|n| n.node);
    if nodes.is_empty() {
        return StragglerReport::default();
    }
    let mut rates: Vec<f64> = nodes.iter().map(|n| n.rate_per_sec).collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    let mid = rates.len() / 2;
    let median = if rates.len() % 2 == 1 {
        rates[mid]
    } else {
        (rates[mid - 1] + rates[mid]) / 2.0
    };
    if median > 0.0 {
        for n in &mut nodes {
            n.straggler = n.rate_per_sec < cfg.min_fraction * median;
        }
    }
    StragglerReport {
        median_rate: median,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> NodeTelemetry {
        let t = Telemetry::enabled();
        {
            let _a = t.tracer.span("ingest.shard").with("edges", 512);
            let _b = t.tracer.span("ingest.window").with_str("kind", "pubmed");
        }
        t.tracer.flow_in(2, 9);
        t.metrics.counter("net.bytes").add(1234);
        t.metrics.gauge("depth").set(-3);
        t.metrics.histogram("ingest.window_edges").record(512);
        NodeTelemetry::capture(1, &t)
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let text = report.to_json();
        let back = NodeTelemetry::from_json(&text).expect("parses");
        assert_eq!(back, report);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(NodeTelemetry::from_json("not json").is_err());
        assert!(NodeTelemetry::from_json("{}").is_err());
        assert!(NodeTelemetry::from_json("{\"node\":0}").is_err());
    }

    #[test]
    fn capture_of_disabled_telemetry_is_empty_but_valid() {
        let t = Telemetry::disabled();
        t.metrics.counter("net.frames").inc();
        let r = NodeTelemetry::capture(3, &t);
        assert!(r.spans.is_empty());
        assert_eq!(r.metrics.counters["net.frames"], 1);
        let back = NodeTelemetry::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn merged_metrics_sum_across_nodes() {
        let mut cluster = ClusterTelemetryReport::new();
        for (node, bytes) in [(0u32, 100u64), (1, 250), (2, 650)] {
            let t = Telemetry::disabled();
            t.metrics.counter("net.bytes").add(bytes);
            cluster.add_node(NodeTelemetry::capture(node, &t), 0);
        }
        let merged = cluster.merged_metrics();
        assert_eq!(merged.counters["net.bytes"], 1000);
        let per_node: u64 = cluster
            .node_metrics()
            .iter()
            .map(|(_, m)| m.counters["net.bytes"])
            .sum();
        assert_eq!(merged.counters["net.bytes"], per_node);
    }

    #[test]
    fn chrome_trace_has_a_lane_per_node_and_rebases_offsets() {
        let mut cluster = ClusterTelemetryReport::new();
        for node in 0..3u32 {
            let t = Telemetry::enabled();
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _g = t.tracer.span("filter.run");
            }
            // Pretend node clocks disagree wildly; the rebase must pull
            // them back together.
            let offset = (node as i64) * 1_000_000_000;
            let mut report = NodeTelemetry::capture(node, &t);
            for s in &mut report.spans {
                s.start_ns += (offset) as u64;
            }
            cluster.add_node(report, offset);
        }
        let text = cluster.chrome_trace_json();
        let doc = json::parse(&text).expect("valid json");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let mut pids = std::collections::BTreeSet::new();
        let mut max_ts = 0.0f64;
        for e in events {
            if e.get("ph").and_then(Value::as_str) == Some("X") {
                pids.insert(e.get("pid").unwrap().as_f64().unwrap() as u32);
                max_ts = max_ts.max(e.get("ts").unwrap().as_f64().unwrap());
            }
        }
        assert_eq!(pids.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        // Without rebasing, node 2's lane would start ≥ 2 s out; with
        // it, every event lands within a few ms of t=0 (µs units).
        assert!(max_ts < 1_000_000.0, "timestamps rebased, got {max_ts}");
        let names: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("name")))
            .filter_map(Value::as_str)
            .collect();
        assert!(names.contains(&"node 0"));
        assert!(names.contains(&"node 2"));
    }

    #[test]
    fn chrome_trace_emits_flow_pairs_for_resolved_edges() {
        // Node 0 sends from span 1; node 1 consumes inside its span 1.
        let mut sender = NodeTelemetry {
            node: 0,
            ..Default::default()
        };
        sender.spans.push(SpanRecord {
            id: 1,
            name: "filter.run".into(),
            path: "filter.run".into(),
            start_ns: 1000,
            dur_ns: 500,
            tid: 0,
            fields: Vec::new(),
        });
        let mut receiver = NodeTelemetry {
            node: 1,
            ..Default::default()
        };
        receiver.spans.push(SpanRecord {
            id: 1,
            name: "filter.run".into(),
            path: "filter.run".into(),
            start_ns: 1600,
            dur_ns: 700,
            tid: 0,
            fields: Vec::new(),
        });
        receiver.flows.push(FlowRecord {
            from_node: 0,
            from_span: 1,
            to_span: 1,
            at_ns: 1800,
        });
        // An unresolvable edge (unknown sender span) is skipped.
        receiver.flows.push(FlowRecord {
            from_node: 0,
            from_span: 99,
            to_span: 1,
            at_ns: 1900,
        });
        let mut cluster = ClusterTelemetryReport::new();
        cluster.add_node(sender, 0);
        cluster.add_node(receiver, 0);
        let doc = json::parse(&cluster.chrome_trace_json()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let starts: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("s"))
            .collect();
        let finishes: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("f"))
            .collect();
        assert_eq!(starts.len(), 1);
        assert_eq!(finishes.len(), 1);
        assert_eq!(
            starts[0].get("id").unwrap().as_f64(),
            finishes[0].get("id").unwrap().as_f64()
        );
        assert_eq!(starts[0].get("pid").unwrap().as_f64(), Some(0.0));
        assert_eq!(finishes[0].get("pid").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn straggler_detection_flags_slow_node() {
        let mut hbs = Vec::new();
        // Nodes 0 and 2 ingest 60 windows in 100 ms; node 1 takes 1 s.
        for node in [0u32, 2] {
            hbs.push(Heartbeat {
                node,
                windows: 60,
                at_ns: 100_000_000,
                ..Default::default()
            });
            // Later heartbeats with no progress must not dilute the rate.
            hbs.push(Heartbeat {
                node,
                windows: 60,
                at_ns: 1_000_000_000,
                ..Default::default()
            });
        }
        hbs.push(Heartbeat {
            node: 1,
            windows: 6,
            at_ns: 100_000_000,
            ..Default::default()
        });
        hbs.push(Heartbeat {
            node: 1,
            windows: 60,
            at_ns: 1_000_000_000,
            ..Default::default()
        });
        let report = detect_stragglers(&hbs, &StragglerConfig::default());
        assert_eq!(report.nodes.len(), 3);
        assert_eq!(report.stragglers(), vec![1]);
        assert!(report.median_rate > 0.0);
    }

    #[test]
    fn straggler_detection_handles_empty_and_uniform_input() {
        let report = detect_stragglers(&[], &StragglerConfig::default());
        assert!(report.nodes.is_empty());
        assert_eq!(report.median_rate, 0.0);

        // All nodes equal: nobody is a straggler.
        let hbs: Vec<Heartbeat> = (0..3)
            .map(|node| Heartbeat {
                node,
                windows: 10,
                at_ns: 1_000_000_000,
                ..Default::default()
            })
            .collect();
        let report = detect_stragglers(&hbs, &StragglerConfig::default());
        assert!(report.stragglers().is_empty());

        // Zero-progress cluster: median 0, nobody flagged.
        let hbs: Vec<Heartbeat> = (0..3)
            .map(|node| Heartbeat {
                node,
                at_ns: 1_000_000_000,
                ..Default::default()
            })
            .collect();
        assert!(detect_stragglers(&hbs, &StragglerConfig::default())
            .stragglers()
            .is_empty());
    }
}
