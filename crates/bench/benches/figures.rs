//! Criterion benches wrapping the figure-reproduction experiments at a
//! small scale — one benchmark per thesis table/figure plus the ablations,
//! so `cargo bench` exercises every experiment path and tracks regressions
//! in the framework itself.
//!
//! For the real reproduction runs (larger scale, full output tables) use
//! the `figures` binary; these benches keep iterations short on purpose.

use criterion::{criterion_group, criterion_main, Criterion};
use mssg_bench::experiments::{self, ExpConfig};

fn bench_cfg(tag: &str) -> ExpConfig {
    let mut cfg = ExpConfig::tiny();
    cfg.root = std::env::temp_dir().join(format!("mssg-criterion-{tag}"));
    cfg
}

macro_rules! figure_bench {
    ($fn_name:ident, $exp:path, $id:literal) => {
        fn $fn_name(c: &mut Criterion) {
            let cfg = bench_cfg($id);
            c.bench_function($id, |b| {
                b.iter(|| $exp(&cfg).expect("experiment runs"));
            });
        }
    };
}

figure_bench!(bench_table5_1, experiments::table5_1, "table5_1_stats");
figure_bench!(bench_fig5_1, experiments::fig5_1, "fig5_1_inmem_search");
figure_bench!(bench_fig5_2, experiments::fig5_2, "fig5_2_cache_effect");
figure_bench!(bench_fig5_3, experiments::fig5_3, "fig5_3_ingest_pubmed_s");
figure_bench!(bench_fig5_4, experiments::fig5_4, "fig5_4_search_pubmed_s");
figure_bench!(bench_fig5_5, experiments::fig5_5, "fig5_5_ingest_pubmed_l");
figure_bench!(
    bench_fig5_6_7,
    experiments::fig5_6_7,
    "fig5_6_7_search_pubmed_l"
);
figure_bench!(bench_fig5_8_9, experiments::fig5_8_9, "fig5_8_9_syn_grdb");
figure_bench!(
    bench_ablation_growth,
    experiments::ablation_grdb_growth,
    "ablation_grdb_growth_policy"
);
figure_bench!(
    bench_ablation_pipeline,
    experiments::ablation_pipeline,
    "ablation_bfs_pipeline"
);
figure_bench!(
    bench_ablation_decluster,
    experiments::ablation_decluster,
    "ablation_declustering"
);
figure_bench!(
    bench_ablation_cache,
    experiments::ablation_cache_policy,
    "ablation_cache_policy"
);
figure_bench!(
    bench_ablation_prefetch,
    experiments::ablation_grdb_prefetch,
    "ablation_grdb_prefetch"
);
figure_bench!(
    bench_ablation_visited,
    experiments::ablation_visited,
    "ablation_visited"
);
figure_bench!(
    bench_ablation_db_filter,
    experiments::ablation_db_filter,
    "ablation_db_filter"
);
figure_bench!(
    bench_ablation_bulk,
    experiments::ablation_bulk_load,
    "ablation_bulk_load"
);
figure_bench!(
    bench_ablation_geometry,
    experiments::ablation_grdb_geometry,
    "ablation_grdb_level_geometry"
);

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        bench_table5_1,
        bench_fig5_1,
        bench_fig5_2,
        bench_fig5_3,
        bench_fig5_4,
        bench_fig5_5,
        bench_fig5_6_7,
        bench_fig5_8_9,
        bench_ablation_growth,
        bench_ablation_pipeline,
        bench_ablation_decluster,
        bench_ablation_cache,
        bench_ablation_prefetch,
        bench_ablation_visited,
        bench_ablation_db_filter,
        bench_ablation_bulk,
        bench_ablation_geometry,
}
criterion_main!(figures);
