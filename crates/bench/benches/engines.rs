//! Storage-engine micro-benchmarks: the raw cost of one append batch and
//! one adjacency lookup per backend, outside the cluster machinery. These
//! isolate the engine-level differences the figure benchmarks measure
//! end-to-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphdb::{GraphDb, GraphDbExt};
use mssg_core::backend::{open_backend, BackendKind, BackendOptions};
use mssg_types::{Edge, Gid};
use simio::IoStats;
use std::path::PathBuf;

const VERTICES: u64 = 500;
const EDGES: usize = 5_000;

fn workload() -> Vec<Edge> {
    let mut rng = graphgen::Xoshiro256::seeded(2006);
    (0..EDGES)
        .map(|_| {
            let a = rng.next_below(VERTICES);
            let mut b = rng.next_below(VERTICES);
            while b == a {
                b = rng.next_below(VERTICES);
            }
            Edge::of(a, b)
        })
        .collect()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("mssg-engine-bench-{tag}"));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn open(kind: BackendKind, tag: &str) -> Box<dyn GraphDb + Send> {
    open_backend(
        kind,
        &fresh_dir(&format!("{}-{tag}", kind.name())),
        &BackendOptions::default(),
        IoStats::new(),
    )
    .expect("open backend")
}

fn bench_ingest(c: &mut Criterion) {
    let edges = workload();
    let mut group = c.benchmark_group("engine_ingest_5k_edges");
    group.sample_size(10);
    for kind in BackendKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut db = open(kind, "ingest");
                    db.store_edges(&edges).unwrap();
                    db.flush().unwrap();
                });
            },
        );
    }
    group.finish();
}

fn bench_point_lookup(c: &mut Criterion) {
    let edges = workload();
    let mut group = c.benchmark_group("engine_adjacency_lookup");
    group.sample_size(10);
    // StreamDB is excluded: its point lookup is a full scan by design and
    // its batch API is what the search algorithms use.
    for kind in BackendKind::FIGURE_FIVE {
        let mut db = open(kind, "lookup");
        db.store_edges(&edges).unwrap();
        db.flush().unwrap();
        let mut db = db;
        group.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            let mut v = 0u64;
            b.iter(|| {
                v = (v + 17) % VERTICES;
                db.neighbors(Gid::new(v)).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_hub_append(c: &mut Criterion) {
    // Appends to one ever-growing hub — grDB's chain walk, the B-tree's
    // tail chunk, the SQL engine's UPDATE path.
    let mut group = c.benchmark_group("engine_hub_append_1k");
    group.sample_size(10);
    for kind in [
        BackendKind::Grdb,
        BackendKind::BerkeleyDb,
        BackendKind::MySql,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut db = open(kind, "hub");
                    let batch: Vec<Edge> = (0..1000).map(|i| Edge::of(0, i + 1)).collect();
                    db.store_edges(&batch).unwrap();
                });
            },
        );
    }
    group.finish();
}

criterion_group!(engines, bench_ingest, bench_point_lookup, bench_hub_append);
criterion_main!(engines);
