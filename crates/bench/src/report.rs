//! Result tables: one per figure/table, printable as aligned text or
//! Markdown (EXPERIMENTS.md is generated from these).

use std::fmt;

/// A rendered experiment result.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Experiment id and description, e.g. "Figure 5.4 — search, PubMed-S".
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the width disagrees with the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in {}",
            self.title
        );
        self.rows.push(cells);
    }

    /// Column widths for aligned text output.
    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Renders as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== {} ==", self.title)?;
        let w = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                write!(f, "{:<width$}  ", c, width = w[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let rule: Vec<String> = w.iter().map(|&n| "-".repeat(n)).collect();
        line(f, &rule)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Formats a rate with thousands grouping.
pub fn fmt_rate(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2} M/s", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1} K/s", v / 1e3)
    } else {
        format!("{v:.0} /s")
    }
}

/// Formats a count with thousands separators.
pub fn fmt_count(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn aligned_text_output() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["grDB".into(), "1.23 s".into()]);
        t.row(vec!["BerkeleyDB".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("grDB"));
        // Alignment: both value columns start at the same offset.
        let lines: Vec<&str> = s.lines().collect();
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find("1.23 s").unwrap(), col);
    }

    #[test]
    fn markdown_output() {
        let mut t = Table::new("Fig X", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### Fig X"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("Bad", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.0 µs");
        assert_eq!(fmt_rate(2_500_000.0), "2.50 M/s");
        assert_eq!(fmt_rate(1500.0), "1.5 K/s");
        assert_eq!(fmt_rate(42.0), "42 /s");
        assert_eq!(fmt_count(1234567), "1,234,567");
        assert_eq!(fmt_count(12), "12");
    }
}
