//! Transport benchmark — the perf trajectory for the distributed
//! substrate (DESIGN.md §8).
//!
//! Runs the same generated ingest → BFS workload twice — once on the
//! in-process channel substrate, once over TCP-localhost (one transport
//! per node, socket framing and credit flow control fully engaged) —
//! and reports edges/sec for both phases plus the framed byte traffic
//! the TCP run actually put on the wire. The `bench-transport` binary
//! serializes the result as `BENCH_transport.json` so successive
//! commits can be compared mechanically.

use crate::report::Table;
use mssg_net::workload::{run_inproc, run_tcp_localhost, WorkloadConfig};
use mssg_net::FRAME_OVERHEAD;
use mssg_obs::Telemetry;
use mssg_types::Result;

/// One substrate's measurements.
#[derive(Clone, Debug)]
pub struct TransportRow {
    /// Substrate label: `"inproc"` or `"tcp-localhost"`.
    pub mode: String,
    /// Directed edges ingested.
    pub edges: u64,
    /// BFS rounds to fixpoint.
    pub rounds: u32,
    /// Ingestion wall time, seconds.
    pub ingest_secs: f64,
    /// BFS wall time, seconds.
    pub bfs_secs: f64,
    /// Ingestion throughput, edges/sec.
    pub ingest_eps: f64,
    /// BFS traversal throughput, edges/sec.
    pub bfs_eps: f64,
    /// Frames sent on the wire (0 for in-proc).
    pub frames: u64,
    /// Framed bytes on the wire, headers included (0 for in-proc).
    pub frame_bytes: u64,
    /// Sends that stalled waiting for credit (0 for in-proc).
    pub credit_stalls: u64,
}

/// The full benchmark result: config echo plus one row per substrate.
#[derive(Clone, Debug)]
pub struct TransportBench {
    /// The workload that was measured.
    pub config: WorkloadConfig,
    /// BFS level digest — identical across rows by construction.
    pub digest: u64,
    /// Measurements, in-proc first.
    pub rows: Vec<TransportRow>,
}

/// Runs the workload on both substrates and checks they agree
/// byte-for-byte before reporting any numbers.
pub fn run_transport_bench(cfg: &WorkloadConfig) -> Result<TransportBench> {
    let inproc = run_inproc(cfg, Telemetry::disabled())?;

    let telemetry = Telemetry::enabled();
    let tcp = run_tcp_localhost(cfg, telemetry.clone())?;
    if tcp.digest != inproc.digest || tcp.levels != inproc.levels {
        return Err(mssg_types::GraphStorageError::Corrupt(format!(
            "TCP run diverged from in-proc run: digest {:016x} vs {:016x}",
            tcp.digest, inproc.digest
        )));
    }

    let counters = telemetry.metrics.snapshot().counters;
    let net = |name: &str| counters.get(name).copied().unwrap_or(0);
    let frames = net("net.frames");
    let frame_bytes = net("net.bytes");
    debug_assert!(frame_bytes >= frames * FRAME_OVERHEAD as u64);

    let row = |mode: &str, r: &mssg_net::WorkloadReport, f, b, stalls| TransportRow {
        mode: mode.to_string(),
        edges: r.edges,
        rounds: r.rounds,
        ingest_secs: r.ingest_secs,
        bfs_secs: r.bfs_secs,
        ingest_eps: r.ingest_edges_per_sec(),
        bfs_eps: r.bfs_edges_per_sec(),
        frames: f,
        frame_bytes: b,
        credit_stalls: stalls,
    };
    Ok(TransportBench {
        config: cfg.clone(),
        digest: inproc.digest,
        rows: vec![
            row("inproc", &inproc, 0, 0, 0),
            row(
                "tcp-localhost",
                &tcp,
                frames,
                frame_bytes,
                net("net.credit_stalls"),
            ),
        ],
    })
}

impl TransportBench {
    /// Machine-readable form, written to `BENCH_transport.json`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"bench\": \"transport\",\n  \"nodes\": {},\n  \"vertices\": {},\n  \
             \"extra_edges\": {},\n  \"seed\": {},\n  \"digest\": \"{:016x}\",\n  \"runs\": [\n",
            self.config.nodes,
            self.config.vertices,
            self.config.extra_edges,
            self.config.seed,
            self.digest
        ));
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"mode\": {}, \"edges\": {}, \"rounds\": {}, \
                 \"ingest_secs\": {:.6}, \"bfs_secs\": {:.6}, \
                 \"ingest_edges_per_sec\": {:.0}, \"bfs_edges_per_sec\": {:.0}, \
                 \"frames\": {}, \"frame_bytes\": {}, \"credit_stalls\": {}}}{}\n",
                mssg_obs::json::escape(&r.mode),
                r.edges,
                r.rounds,
                r.ingest_secs,
                r.bfs_secs,
                r.ingest_eps,
                r.bfs_eps,
                r.frames,
                r.frame_bytes,
                r.credit_stalls,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable form for the console.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Transport — {} nodes, {} vertices, {} extra edges (digest {:016x})",
                self.config.nodes, self.config.vertices, self.config.extra_edges, self.digest
            ),
            &[
                "Mode",
                "Edges",
                "Rounds",
                "Ingest e/s",
                "BFS e/s",
                "Frames",
                "Frame bytes",
                "Credit stalls",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.mode.clone(),
                r.edges.to_string(),
                r.rounds.to_string(),
                format!("{:.0}", r.ingest_eps),
                format!("{:.0}", r.bfs_eps),
                r.frames.to_string(),
                r.frame_bytes.to_string(),
                r.credit_stalls.to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn bench_rows_agree_and_tcp_counts_wire_traffic() {
        let cfg = WorkloadConfig {
            nodes: 2,
            vertices: 200,
            extra_edges: 300,
            stream_timeout: Duration::from_secs(30),
            ..WorkloadConfig::default()
        };
        let b = run_transport_bench(&cfg).unwrap();
        assert_eq!(b.rows.len(), 2);
        assert_eq!(b.rows[0].mode, "inproc");
        assert_eq!(b.rows[1].mode, "tcp-localhost");
        assert_eq!(b.rows[0].edges, b.rows[1].edges);
        assert!(b.rows[1].frames > 0);
        assert!(b.rows[1].frame_bytes >= b.rows[1].frames * FRAME_OVERHEAD as u64);

        let json = b.to_json();
        let doc = mssg_obs::json::parse(&json).expect("bench JSON parses");
        let runs = doc.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(
            runs[1].get("mode").unwrap().as_str().unwrap(),
            "tcp-localhost"
        );
        assert!(runs[1].get("frame_bytes").unwrap().as_f64().unwrap() > 0.0);
    }
}
