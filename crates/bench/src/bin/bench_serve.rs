//! Writes `BENCH_serve.json`: cold (all-miss) vs warm (all-hit) query
//! throughput through the mssg-serve frontend at each concurrency tier,
//! with log2-bucketed p50/p99 latencies. Exits non-zero when the
//! warm/cold throughput ratio at the top tier falls below the gate
//! (`--min-warm-ratio`, default 2.0).
//!
//! ```text
//! bench-serve                              # BENCH_serve.json in cwd
//! bench-serve --out path.json --vertices 4000 --requests 32
//! bench-serve --tiers 1,8,64 --slots 16 --hop 900
//! ```

use mssg_bench::serve::{run_serve_bench, ServeBenchConfig};

fn usage() -> ! {
    eprintln!(
        "usage: bench-serve [--out FILE] [--vertices N] [--requests N] [--span N] \
         [--tiers A,B,C] [--slots N] [--cache N] [--hop N] [--min-warm-ratio F]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeBenchConfig::default();
    let mut out = "BENCH_serve.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let val = |i: usize| -> &str {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--out" => out = val(i).to_string(),
            "--vertices" => cfg.vertices = val(i).parse().unwrap_or_else(|_| usage()),
            "--requests" => cfg.requests = val(i).parse().unwrap_or_else(|_| usage()),
            "--span" => cfg.span = val(i).parse().unwrap_or_else(|_| usage()),
            "--tiers" => {
                cfg.tiers = val(i)
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if cfg.tiers.is_empty() {
                    usage();
                }
            }
            "--slots" => cfg.slots = val(i).parse().unwrap_or_else(|_| usage()),
            "--cache" => cfg.cache_capacity = val(i).parse().unwrap_or_else(|_| usage()),
            "--hop" => cfg.hop = val(i).parse().unwrap_or_else(|_| usage()),
            "--min-warm-ratio" => cfg.min_warm_ratio = val(i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 2;
    }

    let bench = match run_serve_bench(&cfg) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench-serve: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", bench.to_table().to_markdown());
    if let Err(e) = std::fs::write(&out, bench.to_json()) {
        eprintln!("bench-serve: write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
    if let Err(e) = bench.check() {
        eprintln!("bench-serve: {e}");
        std::process::exit(1);
    }
}
