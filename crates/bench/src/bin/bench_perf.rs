//! Writes `BENCH_perf.json`: baseline vs tuned hot-path throughput
//! (pooled buffers, parallel ordered ingestion, batched grDB flushes, 2Q
//! cache + readahead) on the in-process cluster and over TCP-localhost.
//! Exits non-zero when the tuned/baseline ingest ratio falls below the
//! gate (`--min-ratio`, default 1.3).
//!
//! ```text
//! bench-perf                               # BENCH_perf.json in cwd
//! bench-perf --out path.json --scale 128 --nodes 4 --queries 20
//! bench-perf --pool-blocks 64 --ingest-par 4 --cache-policy 2q
//! ```

use mssg_bench::perf::{run_perf_bench, PerfConfig};
use simio::CachePolicy;

fn usage() -> ! {
    eprintln!(
        "usage: bench-perf [--out FILE] [--scale N] [--queries N] [--nodes N] [--seed N] \
         [--pool-blocks N] [--ingest-par N] [--cache-policy lru|clock|2q] [--min-ratio F] \
         [--tcp-vertices N] [--tcp-extra-edges N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = PerfConfig::default();
    let mut out = "BENCH_perf.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let val = |i: usize| -> &str {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--out" => out = val(i).to_string(),
            "--scale" => cfg.scale = val(i).parse().unwrap_or_else(|_| usage()),
            "--queries" => cfg.queries = val(i).parse().unwrap_or_else(|_| usage()),
            "--nodes" => cfg.nodes = val(i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = val(i).parse().unwrap_or_else(|_| usage()),
            "--pool-blocks" => cfg.pool_blocks = val(i).parse().unwrap_or_else(|_| usage()),
            "--ingest-par" => cfg.ingest_par = val(i).parse().unwrap_or_else(|_| usage()),
            "--cache-policy" => {
                cfg.cache_policy = match val(i) {
                    "lru" => CachePolicy::Lru,
                    "clock" => CachePolicy::Clock,
                    "2q" | "twoq" => CachePolicy::TwoQ,
                    _ => usage(),
                }
            }
            "--min-ratio" => cfg.min_ratio = val(i).parse().unwrap_or_else(|_| usage()),
            "--tcp-vertices" => cfg.tcp_vertices = val(i).parse().unwrap_or_else(|_| usage()),
            "--tcp-extra-edges" => cfg.tcp_extra_edges = val(i).parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 2;
    }

    let bench = match run_perf_bench(&cfg) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench-perf: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", bench.to_table().to_markdown());
    for w in bench.warnings() {
        eprintln!("bench-perf: {w}");
    }
    if let Err(e) = std::fs::write(&out, bench.to_json()) {
        eprintln!("bench-perf: write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
    if let Err(e) = bench.check() {
        eprintln!("bench-perf: {e}");
        std::process::exit(1);
    }
}
