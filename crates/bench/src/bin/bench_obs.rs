//! Writes `BENCH_obs.json`: ingest throughput with telemetry enabled vs
//! `Telemetry::disabled()`, asserting the enabled run costs less than
//! the overhead bound (5% by default). Exits non-zero when the bound is
//! blown, so a regression in the hot instrumentation paths fails loudly.
//!
//! ```text
//! bench-obs                                # BENCH_obs.json in cwd
//! bench-obs --out path.json --vertices 30000 --iterations 5
//! ```

use mssg_bench::obs::run_obs_bench;
use mssg_net::WorkloadConfig;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: bench-obs [--out FILE] [--nodes N] [--vertices N] [--extra-edges N] \
         [--seed N] [--iterations N] [--max-overhead-pct F] [--timeout-secs N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = WorkloadConfig {
        vertices: 30_000,
        extra_edges: 90_000,
        stream_timeout: Duration::from_secs(60),
        ..WorkloadConfig::default()
    };
    let mut out = "BENCH_obs.json".to_string();
    let mut iterations = 5usize;
    let mut max_overhead_pct = 5.0f64;
    let mut i = 0;
    while i < args.len() {
        let val = |i: usize| -> &str {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--out" => out = val(i).to_string(),
            "--nodes" => cfg.nodes = val(i).parse().unwrap_or_else(|_| usage()),
            "--vertices" => cfg.vertices = val(i).parse().unwrap_or_else(|_| usage()),
            "--extra-edges" => cfg.extra_edges = val(i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = val(i).parse().unwrap_or_else(|_| usage()),
            "--iterations" => iterations = val(i).parse().unwrap_or_else(|_| usage()),
            "--max-overhead-pct" => max_overhead_pct = val(i).parse().unwrap_or_else(|_| usage()),
            "--timeout-secs" => {
                cfg.stream_timeout = Duration::from_secs(val(i).parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
        i += 2;
    }

    let bench = match run_obs_bench(&cfg, iterations, max_overhead_pct) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench-obs: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", bench.to_table().to_markdown());
    if let Err(e) = std::fs::write(&out, bench.to_json()) {
        eprintln!("bench-obs: write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
    if !bench.within_bound() {
        eprintln!(
            "bench-obs: telemetry ingest overhead {:.2}% exceeds the {:.1}% bound",
            bench.overhead_pct, bench.max_overhead_pct
        );
        std::process::exit(1);
    }
}
