//! Writes `BENCH_transport.json`: ingest + BFS edges/sec on the
//! in-process substrate vs TCP-localhost, plus the framed byte traffic
//! of the TCP run.
//!
//! ```text
//! bench-transport                          # BENCH_transport.json in cwd
//! bench-transport --out path.json --nodes 3 --vertices 20000 --extra-edges 60000
//! ```

use mssg_bench::transport::run_transport_bench;
use mssg_net::WorkloadConfig;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: bench-transport [--out FILE] [--nodes N] [--vertices N] \
         [--extra-edges N] [--seed N] [--timeout-secs N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = WorkloadConfig {
        vertices: 20_000,
        extra_edges: 60_000,
        stream_timeout: Duration::from_secs(60),
        ..WorkloadConfig::default()
    };
    let mut out = "BENCH_transport.json".to_string();
    let mut i = 0;
    while i < args.len() {
        let val = |i: usize| -> &str {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--out" => out = val(i).to_string(),
            "--nodes" => cfg.nodes = val(i).parse().unwrap_or_else(|_| usage()),
            "--vertices" => cfg.vertices = val(i).parse().unwrap_or_else(|_| usage()),
            "--extra-edges" => cfg.extra_edges = val(i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = val(i).parse().unwrap_or_else(|_| usage()),
            "--timeout-secs" => {
                cfg.stream_timeout = Duration::from_secs(val(i).parse().unwrap_or_else(|_| usage()))
            }
            _ => usage(),
        }
        i += 2;
    }

    let bench = match run_transport_bench(&cfg) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench-transport: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", bench.to_table().to_markdown());
    if let Err(e) = std::fs::write(&out, bench.to_json()) {
        eprintln!("bench-transport: write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
}
