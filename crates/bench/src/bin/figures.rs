//! Regenerates the thesis' tables and figures.
//!
//! ```text
//! figures all                      # every experiment at default scale
//! figures fig5_4                   # one experiment
//! figures fig5_4 --scale 512 --queries 10 --nodes 8 --seed 1
//! figures list                     # available experiment ids
//! figures all --markdown out.md    # also write Markdown (for EXPERIMENTS.md)
//! figures fig5_4 --trace-out t.json  # Chrome trace (chrome://tracing, Perfetto)
//! ```

use mssg_bench::experiments::{self, ExpConfig};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: figures <experiment|all|list> [--scale N] [--queries N] \
         [--nodes N] [--seed N] [--markdown FILE] [--trace-out FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let which = args[0].clone();
    let mut cfg = ExpConfig::default();
    let mut markdown: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        let need_val = |i: usize| -> &str {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--scale" => cfg.scale = need_val(i).parse().unwrap_or_else(|_| usage()),
            "--queries" => cfg.queries = need_val(i).parse().unwrap_or_else(|_| usage()),
            "--nodes" => cfg.nodes = need_val(i).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = need_val(i).parse().unwrap_or_else(|_| usage()),
            "--markdown" => markdown = Some(need_val(i).to_string()),
            "--trace-out" => trace_out = Some(need_val(i).to_string()),
            _ => usage(),
        }
        i += 2;
    }
    if trace_out.is_some() {
        cfg.telemetry = mssg_obs::Telemetry::enabled();
    }

    let experiments = experiments::all_experiments();
    if which == "list" {
        for (name, _) in &experiments {
            println!("{name}");
        }
        return;
    }

    let selected: Vec<_> = if which == "all" {
        experiments
    } else {
        let found: Vec<_> = experiments
            .into_iter()
            .filter(|(n, _)| *n == which)
            .collect();
        if found.is_empty() {
            eprintln!("unknown experiment {which:?}; try `figures list`");
            std::process::exit(2);
        }
        found
    };

    let mut md = String::new();
    for (name, f) in selected {
        eprintln!(
            ">> running {name} (scale 1/{}, {} queries)...",
            cfg.scale, cfg.queries
        );
        let started = std::time::Instant::now();
        match f(&cfg) {
            Ok(table) => {
                println!("{table}");
                eprintln!("   {name} finished in {:.1?}\n", started.elapsed());
                md.push_str(&table.to_markdown());
                md.push('\n');
            }
            Err(e) => {
                eprintln!("experiment {name} failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = markdown {
        let mut f = std::fs::File::create(&path).expect("create markdown file");
        f.write_all(md.as_bytes()).expect("write markdown");
        eprintln!("markdown written to {path}");
    }
    if let Some(path) = trace_out {
        let json = cfg.telemetry.tracer.chrome_trace_json();
        std::fs::write(&path, &json).expect("write Chrome trace");
        eprintln!(
            "Chrome trace ({} spans) written to {path} — open in chrome://tracing \
             or https://ui.perfetto.dev",
            cfg.telemetry.tracer.span_count()
        );
    }
}
