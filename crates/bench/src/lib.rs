#![warn(missing_docs)]
//! Benchmark harness regenerating every table and figure of the thesis'
//! evaluation (chapter 5).
//!
//! The paper ran on a 64-node Opteron cluster against graphs up to a
//! billion edges; this harness runs the same experiments on one machine
//! against *scaled* workloads (DESIGN.md §2). Absolute numbers therefore
//! differ; what must (and does) reproduce is the **shape**: which backend
//! wins, by roughly what factor, and where the crossovers fall. Every
//! experiment reports deterministic block-I/O counts and modeled 2006-disk
//! time alongside wall time, so the shapes can be checked on the paper's
//! own terms.
//!
//! Run everything:
//! ```text
//! cargo run -p mssg-bench --release --bin figures -- all
//! cargo run -p mssg-bench --release --bin figures -- fig5_4 --scale 256 --queries 20
//! ```
//!
//! Criterion benches (`cargo bench`) wrap the same experiment functions at
//! smaller scales.
//!
//! Besides the figures, four perf-trajectory binaries write committed
//! JSON baselines: `bench-transport` (in-proc vs TCP), `bench-obs`
//! (telemetry overhead bound), `bench-perf` (the DESIGN.md §10
//! hot-path knob set — `--pool-blocks`, `--ingest-par`,
//! `--cache-policy` — gated at ≥1.3× baseline ingest, exiting non-zero
//! on regression), and `bench-serve` (cold vs warm query throughput
//! through the mssg-serve frontend, gated on the warm/cold ratio at the
//! top concurrency tier). Every experiment reports through
//! [`report::Table`]:
//!
//! ```
//! use mssg_bench::Table;
//!
//! let mut t = Table::new("demo".to_string(), &["knob", "value"]);
//! t.row(vec!["pool_blocks".into(), "64".into()]);
//! assert!(t.to_markdown().contains("| pool_blocks | 64 |"));
//! ```

pub mod experiments;
pub mod obs;
pub mod perf;
pub mod report;
pub mod serve;
pub mod transport;
pub mod workloads;

pub use experiments::ExpConfig;
pub use report::Table;
