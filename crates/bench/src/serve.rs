//! Serving-path benchmark — cold (all-miss) vs warm (all-hit) query
//! throughput through the full `mssg-serve` stack: TCP clients, wire
//! protocol, admission control, epoch pins, and the result cache.
//!
//! Each concurrency tier runs two phases against one live [`Server`]:
//!
//! * **cold** — every client asks BFS queries nobody has asked before
//!   (globally distinct sources), so every request executes against the
//!   cluster snapshot;
//! * **warm** — every client cycles a small primed working set, so every
//!   request is answered from the `(query, epoch)` result cache.
//!
//! Both phases pay the same per-request TCP round trip; the spread
//! between them is what the cache actually buys. The `bench-serve`
//! binary serializes the result as `BENCH_serve.json` and exits non-zero
//! when the warm/cold throughput ratio at the top tier falls below
//! [`ServeBenchConfig::min_warm_ratio`].

use crate::report::Table;
use crate::workloads::fresh_dir;
use mssg_core::ingest::{ingest, IngestOptions};
use mssg_core::{BackendKind, BackendOptions, MssgCluster};
use mssg_obs::metrics::Histogram;
use mssg_serve::{Client, Query, ServeConfig, Server};
use mssg_types::{Edge, Gid, GraphStorageError, Result};
use std::path::PathBuf;
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Scaling knobs for one serving benchmark run.
#[derive(Clone, Debug)]
pub struct ServeBenchConfig {
    /// Chain length of the served graph (vertices `0..=vertices`).
    pub vertices: u64,
    /// Requests per client per phase.
    pub requests: usize,
    /// Warm working-set size: distinct queries primed once and then
    /// re-asked by every client.
    pub span: u64,
    /// Concurrency tiers, each measured cold then warm.
    pub tiers: Vec<usize>,
    /// Server execution slots.
    pub slots: usize,
    /// Result-cache capacity (entries).
    pub cache_capacity: usize,
    /// BFS distance of each query — the work a cache miss performs.
    pub hop: u64,
    /// Minimum warm/cold throughput ratio at the top tier;
    /// [`ServeBench::check`] fails below it.
    pub min_warm_ratio: f64,
    /// Directory the cluster is built under.
    pub root: PathBuf,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            vertices: 4000,
            requests: 32,
            span: 16,
            tiers: vec![1, 8, 64],
            slots: 16,
            cache_capacity: 4096,
            hop: 900,
            min_warm_ratio: 2.0,
            root: std::env::temp_dir().join("mssg-bench-serve"),
        }
    }
}

impl ServeBenchConfig {
    /// A configuration small enough for CI unit tests. The ratio gate is
    /// disabled — tiny runs measure shape, not throughput.
    pub fn tiny() -> ServeBenchConfig {
        ServeBenchConfig {
            vertices: 400,
            requests: 4,
            span: 4,
            tiers: vec![1, 2],
            slots: 4,
            hop: 50,
            min_warm_ratio: 0.0,
            root: std::env::temp_dir()
                .join(format!("mssg-bench-serve-tiny-{}", std::process::id())),
            ..ServeBenchConfig::default()
        }
    }

    /// First source outside the cold range — warm queries live in the
    /// chain's tail so a cold request can never accidentally hit a warm
    /// cache entry.
    fn warm_base(&self) -> u64 {
        (self.vertices - self.hop).saturating_sub(self.span)
    }
}

/// One (tier, phase) measurement.
#[derive(Clone, Debug)]
pub struct ServeRow {
    /// Concurrent clients.
    pub clients: usize,
    /// `"cold"` (all cache misses) or `"warm"` (all cache hits).
    pub phase: String,
    /// Total requests answered in the phase.
    pub requests: u64,
    /// Wall time, seconds.
    pub secs: f64,
    /// Throughput, queries/sec.
    pub qps: f64,
    /// Median request latency upper bound, microseconds (log2 buckets).
    pub p50_us: u64,
    /// 99th-percentile request latency upper bound, microseconds.
    pub p99_us: u64,
}

/// The full serving benchmark result.
#[derive(Clone, Debug)]
pub struct ServeBench {
    /// The configuration that was measured.
    pub config: ServeBenchConfig,
    /// Measurements: for each tier, a cold row then a warm row.
    pub rows: Vec<ServeRow>,
    /// Warm / cold throughput at the top (last) concurrency tier.
    pub warm_cold_ratio: f64,
    /// Result-cache hits accumulated over the whole run.
    pub cache_hits: u64,
    /// Result-cache misses accumulated over the whole run.
    pub cache_misses: u64,
}

/// Runs one phase: `clients` threads, each connecting and issuing
/// `requests` queries produced by `query_for(client, request)`.
fn run_phase(
    addr: std::net::SocketAddr,
    clients: usize,
    requests: usize,
    phase: &str,
    query_for: impl Fn(usize, usize) -> Query + Send + Sync + 'static,
) -> Result<ServeRow> {
    let hist = Histogram::default();
    let barrier = Arc::new(Barrier::new(clients + 1));
    let query_for = Arc::new(query_for);
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let hist = hist.clone();
        let barrier = Arc::clone(&barrier);
        let query_for = Arc::clone(&query_for);
        handles.push(std::thread::spawn(move || -> Result<()> {
            let mut client = Client::connect(addr)?;
            barrier.wait();
            for r in 0..requests {
                let q = query_for(c, r);
                let t0 = Instant::now();
                client.request_with_retry(&q, 100)?;
                hist.record(t0.elapsed().as_micros() as u64);
            }
            Ok(())
        }));
    }
    barrier.wait();
    let started = Instant::now();
    for h in handles {
        h.join()
            .map_err(|_| GraphStorageError::Net("bench client panicked".into()))??;
    }
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    let total = (clients * requests) as u64;
    let snap = hist.snapshot();
    Ok(ServeRow {
        clients,
        phase: phase.into(),
        requests: total,
        secs,
        qps: total as f64 / secs,
        p50_us: snap.quantile_bound(0.5),
        p99_us: snap.quantile_bound(0.99),
    })
}

/// Builds the chain cluster, starts a server, and measures every tier
/// cold then warm.
pub fn run_serve_bench(cfg: &ServeBenchConfig) -> Result<ServeBench> {
    let total_cold: u64 = cfg.tiers.iter().map(|&c| (c * cfg.requests) as u64).sum();
    let cold_limit = cfg.warm_base();
    if total_cold > cold_limit {
        return Err(GraphStorageError::Corrupt(format!(
            "cold phases need {total_cold} distinct sources but only {cold_limit} exist; \
             raise --vertices or lower --requests"
        )));
    }

    let dir = fresh_dir(&cfg.root, "serve");
    let mut cluster = MssgCluster::new(&dir, 2, BackendKind::HashMap, &BackendOptions::default())?;
    ingest(
        &mut cluster,
        (0..cfg.vertices).map(|i| Edge::of(i, i + 1)),
        &IngestOptions::default(),
    )?;
    let server = Server::start(
        cluster,
        &ServeConfig {
            slots: cfg.slots,
            queue_depth: 64,
            cache_capacity: cfg.cache_capacity,
            retry_after_ms: 5,
            exec_floor_ms: 0,
            ..ServeConfig::default()
        },
    )?;
    let addr = server.addr();
    let hop = cfg.hop;

    // Prime the warm working set once; every later warm request hits.
    let warm_base = cfg.warm_base();
    let span = cfg.span;
    let warm_query = move |k: u64| Query::Bfs {
        source: Gid::new(warm_base + (k % span)),
        dest: Gid::new(warm_base + (k % span) + hop),
    };
    let mut primer = Client::connect(addr)?;
    for k in 0..span {
        primer.request_with_retry(&warm_query(k), 100)?;
    }

    let mut rows = Vec::with_capacity(cfg.tiers.len() * 2);
    let mut next_cold = 0u64;
    for &clients in &cfg.tiers {
        let requests = cfg.requests;
        let base = next_cold;
        next_cold += (clients * requests) as u64;
        rows.push(run_phase(addr, clients, requests, "cold", move |c, r| {
            let source = base + (c * requests + r) as u64;
            Query::Bfs {
                source: Gid::new(source),
                dest: Gid::new(source + hop),
            }
        })?);
        rows.push(run_phase(addr, clients, requests, "warm", move |c, r| {
            warm_query((c * requests + r) as u64)
        })?);
    }

    let stats = server.cache_stats();
    let top = &rows[rows.len() - 2..];
    let warm_cold_ratio = if top[0].qps > 0.0 {
        top[1].qps / top[0].qps
    } else {
        0.0
    };
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(ServeBench {
        config: cfg.clone(),
        rows,
        warm_cold_ratio,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
    })
}

impl ServeBench {
    /// The gate: fails when the warm/cold throughput ratio at the top
    /// concurrency tier falls below `min_warm_ratio`. The `bench-serve`
    /// binary turns this into a non-zero exit.
    pub fn check(&self) -> Result<()> {
        if self.warm_cold_ratio < self.config.min_warm_ratio {
            return Err(GraphStorageError::Corrupt(format!(
                "cache regression: warm/cold = {:.2}x at {} clients, gate is {:.2}x",
                self.warm_cold_ratio,
                self.config.tiers.last().copied().unwrap_or(0),
                self.config.min_warm_ratio
            )));
        }
        Ok(())
    }

    /// Machine-readable form, written to `BENCH_serve.json`.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let tiers: Vec<String> = c.tiers.iter().map(|t| t.to_string()).collect();
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"bench\": \"serve\",\n  \"vertices\": {},\n  \"requests\": {},\n  \
             \"span\": {},\n  \"tiers\": [{}],\n  \"slots\": {},\n  \
             \"cache_capacity\": {},\n  \"hop\": {},\n  \"min_warm_ratio\": {:.2},\n  \
             \"warm_cold_ratio\": {:.3},\n  \"cache_hits\": {},\n  \
             \"cache_misses\": {},\n  \"runs\": [\n",
            c.vertices,
            c.requests,
            c.span,
            tiers.join(", "),
            c.slots,
            c.cache_capacity,
            c.hop,
            c.min_warm_ratio,
            self.warm_cold_ratio,
            self.cache_hits,
            self.cache_misses,
        ));
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"clients\": {}, \"phase\": {}, \"requests\": {}, \
                 \"secs\": {:.6}, \"qps\": {:.0}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
                r.clients,
                mssg_obs::json::escape(&r.phase),
                r.requests,
                r.secs,
                r.qps,
                r.p50_us,
                r.p99_us,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable form for the console.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Serving path — chain {} vertices, {}-hop BFS, {} slots: \
                 warm/cold {:.2}x at {} clients",
                self.config.vertices,
                self.config.hop,
                self.config.slots,
                self.warm_cold_ratio,
                self.config.tiers.last().copied().unwrap_or(0),
            ),
            &[
                "Clients", "Phase", "Requests", "Secs", "QPS", "p50 us", "p99 us",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.clients.to_string(),
                r.phase.clone(),
                r.requests.to_string(),
                format!("{:.3}", r.secs),
                format!("{:.0}", r.qps),
                r.p50_us.to_string(),
                r.p99_us.to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_shapes_and_json_parse() {
        let cfg = ServeBenchConfig::tiny();
        let b = run_serve_bench(&cfg).unwrap();
        assert_eq!(b.rows.len(), cfg.tiers.len() * 2);
        for pair in b.rows.chunks(2) {
            assert_eq!(pair[0].phase, "cold");
            assert_eq!(pair[1].phase, "warm");
            assert_eq!(pair[0].clients, pair[1].clients);
            assert!(pair[0].qps > 0.0 && pair[1].qps > 0.0);
            assert!(pair[0].p99_us >= pair[0].p50_us);
        }
        // Cold requests all missed; warm requests (and the priming pass'
        // repeats) all hit.
        let cold_total: u64 = b
            .rows
            .iter()
            .filter(|r| r.phase == "cold")
            .map(|r| r.requests)
            .sum();
        assert_eq!(b.cache_misses, cold_total + cfg.span);
        let warm_total: u64 = b
            .rows
            .iter()
            .filter(|r| r.phase == "warm")
            .map(|r| r.requests)
            .sum();
        assert_eq!(b.cache_hits, warm_total);
        b.check().unwrap();

        let json = b.to_json();
        let doc = mssg_obs::json::parse(&json).expect("bench JSON parses");
        assert_eq!(doc.get("bench").unwrap().as_str().unwrap(), "serve");
        let runs = doc.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), b.rows.len());
        assert_eq!(runs[0].get("phase").unwrap().as_str().unwrap(), "cold");
        assert!(doc.get("warm_cold_ratio").unwrap().as_f64().unwrap() > 0.0);
        assert!(b.to_table().to_markdown().contains("warm"));
    }

    #[test]
    fn check_fails_below_the_warm_gate() {
        let mut b = ServeBench {
            config: ServeBenchConfig {
                min_warm_ratio: 2.0,
                ..ServeBenchConfig::tiny()
            },
            rows: vec![],
            warm_cold_ratio: 1.5,
            cache_hits: 0,
            cache_misses: 0,
        };
        assert!(b.check().is_err());
        b.warm_cold_ratio = 2.1;
        b.check().unwrap();
    }

    #[test]
    fn undersized_graphs_are_refused_up_front() {
        let cfg = ServeBenchConfig {
            vertices: 60,
            hop: 50,
            ..ServeBenchConfig::tiny()
        };
        let err = run_serve_bench(&cfg).unwrap_err();
        assert!(err.to_string().contains("distinct sources"), "{err}");
    }
}
