//! Hot-path performance benchmark — the before/after gate for the
//! pooled-buffer / parallel-decluster / cache-tuning work (DESIGN.md §10).
//!
//! Two comparisons, both on the same seeded workloads:
//!
//! * **In-process cluster** (PubMed-S, grDB backend): a *baseline* run
//!   with every knob at its legacy setting (one front-end, per-window
//!   store flushes, no buffer pool, plain LRU cache, no readahead)
//!   against a *tuned* run with the full knob set (pooled windows,
//!   ordered parallel front-ends, block-sized batched `store_edges`
//!   flushes, 2Q cache, adjacency readahead). The stored graphs must be
//!   byte-identical — the tuned path is a pure optimisation — and the
//!   tuned ingest must beat the baseline by at least
//!   [`PerfConfig::min_ratio`].
//! * **TCP-localhost workload** (mssg-net, real sockets and credit flow
//!   control): the same generated graph with and without `--pooled`
//!   zero-copy buffers, again digest-checked.
//!
//! The `bench-perf` binary serializes the result as `BENCH_perf.json`
//! and exits non-zero when the ingest ratio regresses below the gate, so
//! successive commits can be compared mechanically.

use crate::report::Table;
use crate::workloads::{build_and_ingest, fresh_dir, preset, run_queries, sample_queries};
use graphgen::GraphPreset;
use grdb::GrdbConfig;
use mssg_core::ingest::DeclusterKind;
use mssg_core::{BackendKind, BackendOptions, BfsOptions, IngestOptions, MssgCluster};
use mssg_net::workload::{run_inproc, run_tcp_localhost, WorkloadConfig};
use mssg_obs::Telemetry;
use mssg_types::{GraphStorageError, Result};
use simio::CachePolicy;
use std::path::PathBuf;
use std::time::Duration;

/// Scaling and knob settings for one benchmark run.
#[derive(Clone, Debug)]
pub struct PerfConfig {
    /// PubMed-S scale divisor for the in-process comparison.
    pub scale: u64,
    /// Random BFS queries per variant.
    pub queries: usize,
    /// Back-end node count for the in-process cluster.
    pub nodes: usize,
    /// PRNG seed for graphs and query sampling.
    pub seed: u64,
    /// Directory the clusters are built under.
    pub root: PathBuf,
    /// Tuned run: `DataBuffer` pool capacity in payloads (0 disables).
    pub pool_blocks: usize,
    /// Tuned run: parallel ordered ingestion front-ends.
    pub ingest_par: usize,
    /// Tuned run: grDB block-cache replacement policy.
    pub cache_policy: CachePolicy,
    /// Minimum tuned/baseline in-process ingest throughput ratio;
    /// [`PerfBench::check`] fails below it.
    pub min_ratio: f64,
    /// Vertices of the TCP workload's spine.
    pub tcp_vertices: u64,
    /// Extra random edges of the TCP workload.
    pub tcp_extra_edges: u64,
}

impl Default for PerfConfig {
    fn default() -> Self {
        PerfConfig {
            scale: 256,
            queries: 20,
            nodes: 4,
            seed: 42,
            root: std::env::temp_dir().join("mssg-bench-perf"),
            pool_blocks: 64,
            ingest_par: 4,
            cache_policy: CachePolicy::TwoQ,
            min_ratio: 1.3,
            tcp_vertices: 20_000,
            tcp_extra_edges: 60_000,
        }
    }
}

impl PerfConfig {
    /// A configuration small enough for CI unit tests.
    pub fn tiny() -> PerfConfig {
        PerfConfig {
            scale: 8192,
            queries: 5,
            nodes: 3,
            tcp_vertices: 300,
            tcp_extra_edges: 500,
            // Tiny runs are timing noise; the unit test checks digests
            // and shape, not the throughput gate.
            min_ratio: 0.0,
            root: std::env::temp_dir().join(format!("mssg-bench-perf-tiny-{}", std::process::id())),
            ..PerfConfig::default()
        }
    }

    /// The tuned run's `store_edges` batch threshold: the largest grDB
    /// block's capacity in adjacency words. A batch this size spans many
    /// ingest windows, so edges sharing a source vertex are merged into
    /// one chain walk per flush instead of one per window.
    fn batch_edges(&self) -> usize {
        let cfg = GrdbConfig::thesis_defaults();
        cfg.levels
            .iter()
            .map(|l| l.block_bytes / grdb::config::WORD)
            .max()
            .unwrap_or(512)
    }
}

/// One (phase, mode, variant) measurement.
#[derive(Clone, Debug)]
pub struct PerfRow {
    /// `"ingest"` or `"bfs"`.
    pub phase: String,
    /// `"inproc"` (core cluster) or `"tcp"` (mssg-net localhost sockets).
    pub mode: String,
    /// `"baseline"` or `"tuned"`.
    pub variant: String,
    /// Edges ingested (ingest rows) or adjacency entries scanned (BFS).
    pub edges: u64,
    /// Wall time, seconds.
    pub secs: f64,
    /// Throughput, edges/sec.
    pub eps: f64,
    /// grDB block-cache hits accumulated during the phase (0 where the
    /// backend has no cache counters).
    pub cache_hits: u64,
    /// grDB block-cache misses accumulated during the phase.
    pub cache_misses: u64,
}

/// The full benchmark result: config echo, digests, rows, and the
/// headline ratios.
#[derive(Clone, Debug)]
pub struct PerfBench {
    /// The configuration that was measured.
    pub config: PerfConfig,
    /// In-process stored-graph digest — identical for baseline and tuned
    /// by construction (checked before any number is reported).
    pub digest: u64,
    /// TCP workload BFS digest — identical for plain and pooled runs.
    pub tcp_digest: u64,
    /// Measurements, in-process first.
    pub rows: Vec<PerfRow>,
    /// Tuned / baseline in-process ingest throughput.
    pub ingest_ratio: f64,
    /// Tuned / baseline in-process BFS scan throughput.
    pub bfs_ratio: f64,
    /// Pooled / plain TCP ingest throughput.
    pub tcp_ingest_ratio: f64,
}

/// FNV-1a over every node's sorted vertex set with each adjacency list
/// in *stored* order: equal digests ⇔ byte-identical stored graphs.
fn graph_digest(cluster: &MssgCluster) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: [u8; 8]| {
        for b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for i in 0..cluster.nodes() {
        let lists = cluster.with_backend(i, |db| {
            use graphdb::GraphDbExt;
            let mut vs = db.local_vertices()?;
            vs.sort_unstable();
            vs.into_iter()
                .map(|v| Ok((v, db.neighbors(v)?)))
                .collect::<Result<Vec<_>>>()
        });
        for (v, ns) in lists.unwrap_or_default() {
            eat(v.raw().to_le_bytes());
            for u in ns {
                eat(u.raw().to_le_bytes());
            }
        }
    }
    h
}

/// Sums the block-cache counters over every backend of the cluster.
fn cache_totals(cluster: &MssgCluster) -> (u64, u64) {
    let mut hits = 0;
    let mut misses = 0;
    for i in 0..cluster.nodes() {
        if let Some((h, m, _)) = cluster.with_backend(i, |db| db.cache_counters()) {
            hits += h;
            misses += m;
        }
    }
    (hits, misses)
}

/// One in-process variant: build, ingest, query; returns its two rows
/// plus the stored-graph digest.
fn run_inproc_variant(
    cfg: &PerfConfig,
    variant: &str,
    backend: &BackendOptions,
    ingest_opts: &IngestOptions,
) -> Result<(PerfRow, PerfRow, u64)> {
    let w = preset(GraphPreset::PubMedS, cfg.scale, cfg.seed);
    let dir = fresh_dir(&cfg.root, &format!("inproc-{variant}"));
    let (cluster, report) = build_and_ingest(
        &dir,
        &w,
        BackendKind::Grdb,
        cfg.nodes,
        backend,
        ingest_opts,
        &Telemetry::disabled(),
    )?;
    let (ingest_hits, ingest_misses) = cache_totals(&cluster);
    let ingest_secs = report.telemetry.elapsed.as_secs_f64().max(1e-9);
    let ingest_row = PerfRow {
        phase: "ingest".into(),
        mode: "inproc".into(),
        variant: variant.into(),
        edges: report.edges,
        secs: ingest_secs,
        eps: report.edges as f64 / ingest_secs,
        cache_hits: ingest_hits,
        cache_misses: ingest_misses,
    };

    let queries = sample_queries(&w, cfg.queries, cfg.seed);
    let results = run_queries(&cluster, &queries, &BfsOptions::default())?;
    let scanned: u64 = results.iter().map(|m| m.edges_scanned).sum();
    let bfs_secs: f64 = results
        .iter()
        .map(|m| m.telemetry.elapsed.as_secs_f64())
        .sum::<f64>()
        .max(1e-9);
    let (total_hits, total_misses) = cache_totals(&cluster);
    let bfs_row = PerfRow {
        phase: "bfs".into(),
        mode: "inproc".into(),
        variant: variant.into(),
        edges: scanned,
        secs: bfs_secs,
        eps: scanned as f64 / bfs_secs,
        cache_hits: total_hits - ingest_hits,
        cache_misses: total_misses - ingest_misses,
    };

    let digest = graph_digest(&cluster);
    drop(cluster);
    let _ = std::fs::remove_dir_all(&dir);
    Ok((ingest_row, bfs_row, digest))
}

/// One TCP-localhost variant (real sockets, one transport per node).
fn run_tcp_variant(cfg: &WorkloadConfig, variant: &str) -> Result<(PerfRow, PerfRow, u64)> {
    let r = run_tcp_localhost(cfg, Telemetry::disabled())?;
    let ingest = PerfRow {
        phase: "ingest".into(),
        mode: "tcp".into(),
        variant: variant.into(),
        edges: r.edges,
        secs: r.ingest_secs,
        eps: r.ingest_edges_per_sec(),
        cache_hits: 0,
        cache_misses: 0,
    };
    let bfs = PerfRow {
        phase: "bfs".into(),
        mode: "tcp".into(),
        variant: variant.into(),
        edges: r.edges,
        secs: r.bfs_secs,
        eps: r.bfs_edges_per_sec(),
        cache_hits: 0,
        cache_misses: 0,
    };
    Ok((ingest, bfs, r.digest))
}

/// Runs baseline and tuned variants on both substrates, digest-checking
/// each pair before reporting any numbers.
pub fn run_perf_bench(cfg: &PerfConfig) -> Result<PerfBench> {
    // In-process: legacy knobs vs the full tuned set.
    // Both variants get the thesis cache size — the comparison is about
    // policy and access patterns, not cache budget.
    let cache_blocks = GrdbConfig::thesis_defaults().cache_blocks;
    let baseline_backend = BackendOptions {
        grdb: Some(GrdbConfig::thesis_defaults()),
        cache_capacity: cache_blocks,
        cache_policy: CachePolicy::Lru,
        ..Default::default()
    };
    let baseline_opts = IngestOptions {
        declustering: DeclusterKind::VertexHash,
        ..Default::default()
    };
    let (base_ingest, base_bfs, base_digest) =
        run_inproc_variant(cfg, "baseline", &baseline_backend, &baseline_opts)?;

    let mut tuned_grdb = GrdbConfig::thesis_defaults();
    tuned_grdb.readahead_blocks = 4;
    let tuned_backend = BackendOptions {
        grdb: Some(tuned_grdb),
        cache_capacity: cache_blocks,
        cache_policy: cfg.cache_policy,
        ..Default::default()
    };
    let tuned_opts = IngestOptions {
        declustering: DeclusterKind::VertexHash,
        front_ends: cfg.ingest_par,
        ordered: cfg.ingest_par > 1,
        pool_blocks: cfg.pool_blocks,
        store_batch_edges: cfg.batch_edges(),
        ..Default::default()
    };
    let (tuned_ingest, tuned_bfs, tuned_digest) =
        run_inproc_variant(cfg, "tuned", &tuned_backend, &tuned_opts)?;
    if tuned_digest != base_digest {
        return Err(GraphStorageError::Corrupt(format!(
            "tuned ingest diverged from baseline: digest {tuned_digest:016x} vs {base_digest:016x}"
        )));
    }

    // TCP-localhost: plain vs pooled zero-copy buffers.
    let tcp_cfg = WorkloadConfig {
        nodes: 3,
        vertices: cfg.tcp_vertices,
        extra_edges: cfg.tcp_extra_edges,
        seed: cfg.seed,
        stream_timeout: Duration::from_secs(120),
        ..WorkloadConfig::default()
    };
    let want = run_inproc(&tcp_cfg, Telemetry::disabled())?;
    let (tcp_plain_ingest, tcp_plain_bfs, plain_digest) = run_tcp_variant(&tcp_cfg, "baseline")?;
    let pooled_cfg = WorkloadConfig {
        pooled: true,
        ..tcp_cfg
    };
    let (tcp_pool_ingest, tcp_pool_bfs, pooled_digest) = run_tcp_variant(&pooled_cfg, "tuned")?;
    if plain_digest != want.digest || pooled_digest != want.digest {
        return Err(GraphStorageError::Corrupt(format!(
            "TCP runs diverged from in-proc: {plain_digest:016x}/{pooled_digest:016x} vs {:016x}",
            want.digest
        )));
    }

    let ratio = |tuned: &PerfRow, base: &PerfRow| {
        if base.eps > 0.0 {
            tuned.eps / base.eps
        } else {
            0.0
        }
    };
    let ingest_ratio = ratio(&tuned_ingest, &base_ingest);
    let bfs_ratio = ratio(&tuned_bfs, &base_bfs);
    let tcp_ingest_ratio = ratio(&tcp_pool_ingest, &tcp_plain_ingest);
    Ok(PerfBench {
        config: cfg.clone(),
        digest: base_digest,
        tcp_digest: want.digest,
        rows: vec![
            base_ingest,
            tuned_ingest,
            base_bfs,
            tuned_bfs,
            tcp_plain_ingest,
            tcp_pool_ingest,
            tcp_plain_bfs,
            tcp_pool_bfs,
        ],
        ingest_ratio,
        bfs_ratio,
        tcp_ingest_ratio,
    })
}

impl PerfBench {
    /// The regression gate: fails when the tuned in-process ingest is
    /// slower than `min_ratio` × baseline. The `bench-perf` binary turns
    /// this into a non-zero exit.
    pub fn check(&self) -> Result<()> {
        if self.ingest_ratio < self.config.min_ratio {
            return Err(GraphStorageError::Corrupt(format!(
                "ingest regression: tuned/baseline = {:.2}x, gate is {:.2}x",
                self.ingest_ratio, self.config.min_ratio
            )));
        }
        Ok(())
    }

    /// One visible warning line per reported ratio below parity (1.0):
    /// the "tuned" variant is actively *slower* there, even when the
    /// hard gate ([`PerfBench::check`]) still passes. The `bench-perf`
    /// binary prints these so a sub-parity ratio never ships silently in
    /// `BENCH_perf.json`.
    pub fn warnings(&self) -> Vec<String> {
        let mut w = Vec::new();
        for (name, r) in [
            ("ingest_ratio", self.ingest_ratio),
            ("bfs_ratio", self.bfs_ratio),
            ("tcp_ingest_ratio", self.tcp_ingest_ratio),
        ] {
            if r < 1.0 {
                w.push(format!(
                    "WARNING: {name} = {r:.3} is below 1.0 — tuned is slower than baseline"
                ));
            }
        }
        w
    }

    /// Machine-readable form, written to `BENCH_perf.json`.
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"bench\": \"perf\",\n  \"scale\": {},\n  \"queries\": {},\n  \"nodes\": {},\n  \
             \"seed\": {},\n  \"pool_blocks\": {},\n  \"ingest_par\": {},\n  \
             \"cache_policy\": \"{:?}\",\n  \"min_ratio\": {:.2},\n  \
             \"tcp_vertices\": {},\n  \"tcp_extra_edges\": {},\n  \
             \"digest\": \"{:016x}\",\n  \"tcp_digest\": \"{:016x}\",\n  \
             \"ingest_ratio\": {:.3},\n  \"bfs_ratio\": {:.3},\n  \
             \"tcp_ingest_ratio\": {:.3},\n  \"runs\": [\n",
            c.scale,
            c.queries,
            c.nodes,
            c.seed,
            c.pool_blocks,
            c.ingest_par,
            c.cache_policy,
            c.min_ratio,
            c.tcp_vertices,
            c.tcp_extra_edges,
            self.digest,
            self.tcp_digest,
            self.ingest_ratio,
            self.bfs_ratio,
            self.tcp_ingest_ratio,
        ));
        for (i, r) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"phase\": {}, \"mode\": {}, \"variant\": {}, \"edges\": {}, \
                 \"secs\": {:.6}, \"edges_per_sec\": {:.0}, \
                 \"cache_hits\": {}, \"cache_misses\": {}}}{}\n",
                mssg_obs::json::escape(&r.phase),
                mssg_obs::json::escape(&r.mode),
                mssg_obs::json::escape(&r.variant),
                r.edges,
                r.secs,
                r.eps,
                r.cache_hits,
                r.cache_misses,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable form for the console.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Hot-path perf — PubMed-S (1/{}), {} nodes: ingest {:.2}x, BFS {:.2}x, \
                 TCP ingest {:.2}x",
                self.config.scale,
                self.config.nodes,
                self.ingest_ratio,
                self.bfs_ratio,
                self.tcp_ingest_ratio
            ),
            &[
                "Phase",
                "Mode",
                "Variant",
                "Edges",
                "Secs",
                "Edges/s",
                "Cache hits",
                "Cache misses",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.phase.clone(),
                r.mode.clone(),
                r.variant.clone(),
                r.edges.to_string(),
                format!("{:.3}", r.secs),
                format!("{:.0}", r.eps),
                r.cache_hits.to_string(),
                r.cache_misses.to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_bench_digests_agree_and_json_parses() {
        let cfg = PerfConfig::tiny();
        let b = run_perf_bench(&cfg).unwrap();
        assert_eq!(b.rows.len(), 8);
        // Baseline and tuned ingested the same edge count; throughput
        // ratios are timing noise at this scale, so only their presence
        // is checked (the gate is exercised by the binary at full scale).
        assert_eq!(b.rows[0].edges, b.rows[1].edges);
        assert!(b.ingest_ratio > 0.0);
        b.check().unwrap();

        let json = b.to_json();
        let doc = mssg_obs::json::parse(&json).expect("bench JSON parses");
        assert_eq!(
            doc.get("bench").unwrap().as_str().unwrap(),
            "perf",
            "{json}"
        );
        let runs = doc.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 8);
        assert_eq!(runs[1].get("variant").unwrap().as_str().unwrap(), "tuned");
        assert!(doc.get("ingest_ratio").unwrap().as_f64().unwrap() > 0.0);

        // The tuned variant used the 2Q cache and saw traffic.
        let tuned_bfs = &b.rows[3];
        assert_eq!(tuned_bfs.variant, "tuned");
        assert!(tuned_bfs.cache_hits + tuned_bfs.cache_misses > 0);
    }

    #[test]
    fn check_fails_below_the_gate() {
        let mut b = PerfBench {
            config: PerfConfig {
                min_ratio: 1.3,
                ..PerfConfig::tiny()
            },
            digest: 0,
            tcp_digest: 0,
            rows: vec![],
            ingest_ratio: 1.0,
            bfs_ratio: 1.0,
            tcp_ingest_ratio: 1.0,
        };
        assert!(b.check().is_err());
        b.ingest_ratio = 1.31;
        b.check().unwrap();
    }

    #[test]
    fn sub_parity_ratios_warn_visibly() {
        let mut b = PerfBench {
            config: PerfConfig::tiny(),
            digest: 0,
            tcp_digest: 0,
            rows: vec![],
            ingest_ratio: 1.4,
            bfs_ratio: 1.1,
            tcp_ingest_ratio: 0.901,
        };
        let w = b.warnings();
        assert_eq!(w.len(), 1, "{w:?}");
        assert!(w[0].contains("tcp_ingest_ratio = 0.901"), "{w:?}");
        b.tcp_ingest_ratio = 1.0;
        assert!(b.warnings().is_empty(), "parity and above stay silent");
    }
}
